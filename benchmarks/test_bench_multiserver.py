"""Section VII-B bench: the two-server saturation experiment."""

from repro.experiments.common import Scale
from repro.experiments import tab_multiserver

SCALE = Scale(
    name="bench-msrv",
    num_ads=2_000,
    num_distinct_queries=300,
    total_query_frequency=5_000,
    trace_length=800,
)


def test_bench_multiserver_saturation(benchmark):
    result = benchmark.pedantic(
        tab_multiserver.run, args=(SCALE,), kwargs={"seed": 0},
        rounds=2, iterations=1,
    )
    # Paper shape: higher saturation RPS, lower CPU at the common rate.
    assert result.wordset_saturation_rps > result.inverted_saturation_rps
    assert (
        result.wordset_cpu_at_common_rate < result.inverted_cpu_at_common_rate
    )
