"""Fig 9 bench: the two-server latency-distribution simulation."""

from repro.experiments.common import Scale
from repro.experiments import fig9_latency_dist

SCALE = Scale(
    name="bench-fig9",
    num_ads=2_000,
    num_distinct_queries=300,
    total_query_frequency=5_000,
    trace_length=800,
)


def test_bench_fig9_simulation(benchmark):
    result = benchmark.pedantic(
        fig9_latency_dist.run, args=(SCALE,), kwargs={"seed": 0},
        rounds=2, iterations=1,
    )
    ws10, inv10 = result.within_10ms()
    # The paper's Fig 9 ordering: the word-set index answers far more
    # requests within 10 ms than the inverted index at the same load.
    assert ws10 > inv10
    histogram = result.inverted.latency_histogram()
    assert len(histogram) >= 2  # the inverted curve spreads across buckets
