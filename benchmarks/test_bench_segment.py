"""Benches and acceptance gates for the packed serving segment (PR 4).

Gates (mirrors ``python -m repro.segment.bench``):

* the packed path returns the identical result multiset per query;
* resident bytes at least 4x below the dict ``WordSetIndex``;
* replay latency within 1.25x of the dict fast path.

``test_full_bench_document_persisted`` runs the standalone driver at its
default (50k-ad) configuration and writes ``BENCH_PR4.json`` at the repo
root; ``test_segment_smoke_gates`` is the small-corpus variant the CI
smoke job runs on every push.
"""

import json
import pathlib

import pytest

from repro.core.wordset_index import WordSetIndex
from repro.perf.bench import make_long_queries
from repro.segment import PackedSegmentIndex, SegmentBuilder, SegmentedIndex
from repro.segment.bench import replay_ids, run_segment_bench

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

QUERY_LEN = 12
NUM_QUERIES = 60


@pytest.fixture(scope="module")
def long_queries(generated, workload):
    return make_long_queries(
        generated, workload, NUM_QUERIES, QUERY_LEN, seed=7
    )


@pytest.fixture(scope="module")
def dict_index(corpus):
    return WordSetIndex.from_corpus(corpus)


@pytest.fixture(scope="module")
def packed_index(dict_index, tmp_path_factory):
    path = tmp_path_factory.mktemp("segment") / "bench.seg"
    SegmentBuilder(dict_index).write(path)
    packed = PackedSegmentIndex(path)
    yield packed
    packed.close()


def test_packed_results_identical(dict_index, packed_index, long_queries):
    assert replay_ids(packed_index, long_queries) == replay_ids(
        dict_index, long_queries
    )


def test_bench_packed_replay(benchmark, packed_index, long_queries):
    total = benchmark.pedantic(
        lambda: sum(len(r) for r in replay_ids(packed_index, long_queries)),
        rounds=3,
        iterations=1,
    )
    assert total > 0


def test_bench_overlay_replay(benchmark, packed_index, long_queries):
    """Same workload through the SegmentedIndex facade (empty overlay):
    the mutable wrapper must not meaningfully tax the read path."""
    overlay = SegmentedIndex(packed_index)
    total = benchmark.pedantic(
        lambda: sum(len(r) for r in replay_ids(overlay, long_queries)),
        rounds=3,
        iterations=1,
    )
    assert total > 0


def test_bench_compaction(benchmark, corpus, tmp_path_factory):
    """Time a full compact(): rebuild + pack + atomic swap of a segment
    carrying a dirty overlay."""
    directory = tmp_path_factory.mktemp("compact")
    base = WordSetIndex.from_corpus(corpus)
    seg_path = directory / "base.seg"
    SegmentBuilder(base).write(seg_path)
    ads = list(corpus)

    counter = iter(range(1_000_000))

    def compact_once():
        n = next(counter)
        segmented = SegmentedIndex(PackedSegmentIndex(seg_path))
        try:
            for ad in ads[:50]:
                segmented.delete(ad)
            target = directory / f"gen-{n}.seg"
            segmented.compact(path=target)
            return len(segmented)
        finally:
            segmented.close()

    live = benchmark.pedantic(compact_once, rounds=3, iterations=1)
    assert live == len(ads) - 50


def test_segment_smoke_gates():
    """Small-corpus gate check for CI: >= 4x resident reduction with
    identical results (latency is asserted on the full run only — tiny
    corpora make the ratio too noisy for a hard smoke gate)."""
    results = run_segment_bench(
        num_ads=8_000,
        num_queries=60,
        rounds=2,
        seed=3,
        cache_bytes=1 << 20,
    )
    assert results["identical_results"]
    assert results["resident_reduction"] >= 4.0, (
        f"resident reduction only {results['resident_reduction']:.2f}x"
    )


def test_full_bench_document_persisted():
    """Run the standalone driver at its default configuration, pin all
    three acceptance gates, and persist ``BENCH_PR4.json``."""
    results = run_segment_bench()
    assert results["identical_results"]
    assert results["resident_reduction"] >= 4.0, (
        f"resident reduction only {results['resident_reduction']:.2f}x"
    )
    assert results["latency_ratio"] <= 1.25, (
        f"latency ratio {results['latency_ratio']:.2f}x exceeds 1.25x"
    )
    out = REPO_ROOT / "BENCH_PR4.json"
    out.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
