"""Benches and acceptance gates for tiered continuous ingest (PR 8).

The headline experiment is the churn drill (``repro.segment.churn``): a
100k-op insert/delete/re-insert stream against a
:class:`~repro.segment.TieredSegmentedIndex` with the background merger
running, every probe checked bit-for-bit against a ``WordSetIndex``
oracle.  Gates:

* zero failed or incorrect queries while merges run underneath;
* zero lost acknowledged writes and zero phantom ads after the final
  seal (and after a full reopen from the manifest);
* steady-state read amplification within the configured
  ``read_amp_bound()`` (= ``fan_in * (top_level + 1) + 1``) once the
  merger drains.

``test_full_bench_document_persisted`` runs the drill at the 100k-op
acceptance configuration and writes ``BENCH_PR8.json`` at the repo
root; the CI smoke job runs the standalone driver at a smaller size on
every push.
"""

import json
import pathlib

import pytest

from repro.core.ads import AdInfo, Advertisement
from repro.core.queries import Query
from repro.segment import TieredConfig, TieredSegmentedIndex
from repro.segment.churn import ChurnConfig, run_churn_drill

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

DRILL = ChurnConfig(
    ops=100_000,
    seed=7,
    probe_every=500,
    seal_threshold=256,
    fan_in=4,
)


@pytest.fixture(scope="module")
def drill_result(tmp_path_factory):
    return run_churn_drill(tmp_path_factory.mktemp("drill"), DRILL)


def test_churn_drill_acceptance_gates(drill_result):
    result = drill_result
    assert result.ops_applied == DRILL.ops
    assert result.failed_queries == 0
    assert result.mismatches == [], result.to_json()
    assert result.lost_writes == 0
    assert result.phantom_ads == 0
    assert result.reopen_consistent
    assert not result.merger_errors
    assert result.merges > 0  # the merger actually ran underneath


def test_steady_state_read_amplification_bounded(drill_result):
    """After the merger drains and the final seal commits, the tier
    stack must respect the configured bound (transient L0 buildup
    during the run is allowed; the steady state is not)."""
    stats = drill_result.final_stats
    assert stats["read_amplification"] <= stats["read_amp_bound"], (
        f"read amplification {stats['read_amplification']} exceeds "
        f"bound {stats['read_amp_bound']}"
    )


def test_bench_tiered_ingest_throughput(benchmark, tmp_path_factory):
    """Sustained insert rate through auto-seal and inline merges."""
    counter = iter(range(1_000_000))

    def ingest_run():
        n = next(counter)
        directory = tmp_path_factory.mktemp(f"ingest-{n}")
        config = TieredConfig(seal_threshold=256, fan_in=4)
        with TieredSegmentedIndex(directory, config=config) as index:
            for i in range(4_000):
                index.insert(
                    Advertisement.from_text(
                        f"w{i % 31} k{i % 7} item{i}",
                        AdInfo(listing_id=i, bid_price_micros=100 + i),
                    )
                )
            return len(index)

    total = benchmark.pedantic(ingest_run, rounds=3, iterations=1)
    assert total == 4_000


def test_bench_tiered_query_replay(benchmark, tmp_path_factory):
    """Broad-query replay across a multi-tier stack with tombstones."""
    directory = tmp_path_factory.mktemp("replay")
    config = TieredConfig(seal_threshold=128, fan_in=4)
    with TieredSegmentedIndex(directory, config=config) as index:
        ads = [
            Advertisement.from_text(
                f"w{i % 31} k{i % 7} item{i}",
                AdInfo(listing_id=i, bid_price_micros=100 + i),
            )
            for i in range(4_000)
        ]
        for ad in ads:
            index.insert(ad)
        for ad in ads[::17]:
            index.delete(ad)
        queries = [
            Query((f"w{i % 31}", f"k{i % 7}", f"item{i}", "pad"))
            for i in range(0, 4_000, 41)
        ]

        def replay():
            return sum(len(index.query(q)) for q in queries)

        total = benchmark.pedantic(replay, rounds=3, iterations=1)
        assert total > 0


def test_full_bench_document_persisted(drill_result):
    """Persist the PR 8 acceptance document at the repo root."""
    document = dict(drill_result.to_json())
    document["config"] = {
        "ops": DRILL.ops,
        "seed": DRILL.seed,
        "probe_every": DRILL.probe_every,
        "seal_threshold": DRILL.seal_threshold,
        "fan_in": DRILL.fan_in,
    }
    stats = drill_result.final_stats
    document["gates"] = {
        "zero_failed_queries": drill_result.failed_queries == 0,
        "zero_mismatches": not drill_result.mismatches,
        "zero_lost_writes": drill_result.lost_writes == 0,
        "zero_phantom_ads": drill_result.phantom_ads == 0,
        "reopen_consistent": drill_result.reopen_consistent,
        "read_amp_within_bound": (
            stats["read_amplification"] <= stats["read_amp_bound"]
        ),
    }
    assert all(document["gates"].values()), document["gates"]
    out = REPO_ROOT / "BENCH_PR8.json"
    out.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
