"""Ablation benches for the design choices DESIGN.md calls out.

Each ablation disables one mechanism and measures the cost difference on
the same corpus/workload:

* **early termination** — word-count-ordered nodes stop scanning at the
  first too-long entry; the ablation charges a full-node scan;
* **benefit-ordered candidates** — the optimizer's prefix candidates are
  ordered by workload co-access benefit vs naive smallest-bytes-first;
* **withdrawal steps** — the post-greedy local improvement pass;
* **hash vs trie lookup** — the Section III-B tree-structured alternative.
"""

import pytest

from repro.core.data_node import NODE_HEADER_BYTES
from repro.core.tree_index import TrieWordSetIndex
from repro.cost.accounting import AccessTracker
from repro.cost.workload_cost import cost_node, total_cost
from repro.experiments.common import MODEL
from repro.optimize.mapping import OptimizerConfig, optimize_mapping
from repro.optimize.remap import build_index


@pytest.fixture(scope="module")
def built_index(corpus):
    return build_index(corpus, None)


class TestEarlyTerminationAblation:
    def test_bench_scans_with_early_termination(
        self, benchmark, built_index, trace
    ):
        nodes = list(built_index.nodes.values())

        def ordered_scan():
            scanned = 0
            for query in trace[:100]:
                qlen = len(query.words)
                for node in nodes[:200]:
                    scanned += node.scan_bytes_for_query_len(qlen)
            return scanned

        benchmark(ordered_scan)

    def test_early_termination_saves_bytes(self, built_index, trace):
        nodes = list(built_index.nodes.values())
        with_cutoff = full = 0
        for query in trace[:200]:
            qlen = len(query.words)
            for node in nodes:
                with_cutoff += node.scan_bytes_for_query_len(qlen)
                full += NODE_HEADER_BYTES + sum(
                    e.size_bytes for e in node.entries
                )
        assert with_cutoff < full


class TestCandidateOrderingAblation:
    def test_benefit_ordering_no_worse(self, corpus, workload):
        with_benefit = optimize_mapping(
            corpus, workload, MODEL,
            OptimizerConfig(max_words=10, benefit_ordering=True),
        )
        without = optimize_mapping(
            corpus, workload, MODEL,
            OptimizerConfig(max_words=10, benefit_ordering=False),
        )
        cost_with = cost_node(build_index(corpus, with_benefit), workload, MODEL)
        cost_without = cost_node(build_index(corpus, without), workload, MODEL)
        assert cost_with <= cost_without + 1e-6

    def test_bench_optimizer_without_benefit_ordering(
        self, benchmark, corpus, workload
    ):
        benchmark.pedantic(
            optimize_mapping,
            args=(corpus, workload, MODEL),
            kwargs={"config": OptimizerConfig(max_words=10,
                                              benefit_ordering=False)},
            rounds=2,
            iterations=1,
        )


class TestWithdrawalAblation:
    def test_withdrawal_no_worse(self, corpus, workload):
        with_wd = optimize_mapping(
            corpus, workload, MODEL,
            OptimizerConfig(max_words=10, withdrawal=True),
        )
        without = optimize_mapping(
            corpus, workload, MODEL,
            OptimizerConfig(max_words=10, withdrawal=False),
        )
        cost_with = total_cost(build_index(corpus, with_wd), workload, MODEL)
        cost_without = total_cost(build_index(corpus, without), workload, MODEL)
        assert cost_with <= cost_without + 1e-6

    def test_bench_optimizer_without_withdrawal(self, benchmark, corpus, workload):
        benchmark.pedantic(
            optimize_mapping,
            args=(corpus, workload, MODEL),
            kwargs={"config": OptimizerConfig(max_words=10, withdrawal=False)},
            rounds=2,
            iterations=1,
        )


class TestImpactOrderingAblation:
    def test_bench_top_k_pruned(self, benchmark, corpus, trace):
        from repro.core.impact_index import ImpactOrderedIndex

        index = ImpactOrderedIndex.from_corpus(corpus)

        def replay():
            total = 0
            for query in trace[:300]:
                total += len(index.query_top_k(query, 4))
            return total

        benchmark(replay)

    def test_pruning_saves_little_as_paper_predicts(self, corpus, trace):
        from repro.core.impact_index import ImpactOrderedIndex
        from repro.cost.accounting import AccessTracker

        t_plain, t_pruned = AccessTracker(), AccessTracker()
        plain = ImpactOrderedIndex.from_corpus(corpus, tracker=t_plain)
        pruned = ImpactOrderedIndex.from_corpus(corpus, tracker=t_pruned)
        for query in trace[:400]:
            plain.query(query)
            pruned.query_top_k(query, 4)
        saving = 1 - t_pruned.stats.modeled_ns(MODEL) / max(
            1, t_plain.stats.modeled_ns(MODEL)
        )
        # §I-B: marginal, and never a regression.
        assert -0.02 <= saving < 0.30


class TestHashVsTrieAblation:
    def test_bench_trie_queries(self, benchmark, corpus, trace):
        trie = TrieWordSetIndex.from_corpus(corpus)

        def replay():
            total = 0
            for query in trace[:300]:
                total += len(trie.query(query))
            return total

        benchmark(replay)

    def test_structures_agree_and_costs_comparable(self, corpus, trace):
        hash_tracker, trie_tracker = AccessTracker(), AccessTracker()
        hashed = build_index(corpus, None, tracker=hash_tracker)
        trie = TrieWordSetIndex.from_corpus(corpus, tracker=trie_tracker)
        for query in trace[:200]:
            a = sorted(x.info.listing_id for x in hashed.query(query))
            b = sorted(x.info.listing_id for x in trie.query(query))
            assert a == b
        # Both do real work; the trie never pays more random accesses than
        # the hash structure's subset probes on these short queries.
        assert trie_tracker.stats.random_accesses > 0
        assert hash_tracker.stats.random_accesses > 0
