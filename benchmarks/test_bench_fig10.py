"""Fig 10 bench: mapping optimization and analytic workload-cost kernels."""

from repro.cost.workload_cost import total_cost
from repro.experiments.common import MODEL, Scale
from repro.experiments import fig10_remapping
from repro.optimize.mapping import OptimizerConfig, optimize_mapping
from repro.optimize.remap import build_index

SCALE = Scale(
    name="bench-fig10",
    num_ads=2_000,
    num_distinct_queries=400,
    total_query_frequency=8_000,
    trace_length=800,
)


def test_bench_fig10_experiment(benchmark):
    result = benchmark.pedantic(
        fig10_remapping.run, args=(SCALE,), kwargs={"seed": 0},
        rounds=2, iterations=1,
    )
    relative = result.relative
    assert relative["long phrases only"] < 1.0
    assert relative["full re-mapping"] <= relative["long phrases only"] + 1e-9


def test_bench_fig10_optimizer_kernel(benchmark, corpus, workload):
    mapping = benchmark.pedantic(
        optimize_mapping,
        args=(corpus, workload, MODEL, OptimizerConfig(max_words=10)),
        rounds=2,
        iterations=1,
    )
    index = build_index(corpus, mapping)
    identity = build_index(corpus, None)
    assert total_cost(index, workload, MODEL) <= total_cost(
        identity, workload, MODEL
    ) + 1e-6
