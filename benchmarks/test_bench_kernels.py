"""Benches for the array-at-a-time probe kernels (``repro.kernels``).

The acceptance gates for the kernel rewrite: on the steady-state
long-query batch workload, kernel-backend batch QPS through
:class:`~repro.perf.batch.BatchQueryEngine` must be at least 3x the
``REPRO_KERNELS=off`` scalar baseline on the packed serving path and at
least 2x on the mutable index, with bit-identical result slates.  The
full comparison document is persisted to ``BENCH_PR6.json`` at the repo
root (also produced standalone by ``python -m repro.kernels.bench``).
"""

import json
import pathlib

import pytest

from repro.core.wordset_index import WordSetIndex
from repro.kernels import resolve_backend, set_backend
from repro.kernels.bench import run_kernel_bench
from repro.perf.batch import BatchQueryEngine
from repro.perf.bench import make_long_queries

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

QUERY_LEN = 16
NUM_QUERIES = 48


@pytest.fixture(scope="module")
def long_queries(generated, workload):
    return make_long_queries(
        generated, workload, NUM_QUERIES, QUERY_LEN, seed=7
    )


@pytest.fixture(scope="module")
def index(corpus):
    return WordSetIndex.from_corpus(corpus)


def replay_ids(engine, queries):
    return [
        sorted(ad.info.listing_id for ad in ads)
        for ads in engine.query_broad_batch(queries)
    ]


def test_kernel_batch_identical_to_scalar(index, long_queries):
    engine = BatchQueryEngine(index)
    set_backend("off")
    try:
        scalar = replay_ids(engine, long_queries)
    finally:
        set_backend(None)
    for backend in ("python", resolve_backend(None)):
        set_backend(backend)
        try:
            assert replay_ids(engine, long_queries) == scalar, backend
        finally:
            set_backend(None)


def test_bench_kernel_batch(benchmark, index, long_queries):
    engine = BatchQueryEngine(index)
    engine.query_broad_batch(long_queries)  # warm plan/key caches
    results = benchmark.pedantic(
        lambda: engine.query_broad_batch(long_queries),
        rounds=3,
        iterations=1,
    )
    assert len(results) == len(long_queries)


def test_bench_scalar_baseline(benchmark, index, long_queries):
    engine = BatchQueryEngine(index)
    set_backend("off")
    try:
        results = benchmark.pedantic(
            lambda: engine.query_broad_batch(long_queries),
            rounds=3,
            iterations=1,
        )
    finally:
        set_backend(None)
    assert len(results) == len(long_queries)


def test_full_bench_document_persisted():
    """Run the standalone kernel benchmark on the standard corpus and pin
    the acceptance gates on the persisted ``BENCH_PR6.json`` document.
    ``run_kernel_bench`` raises on a gate violation itself; the asserts
    here pin the persisted numbers a second time."""
    results = run_kernel_bench()
    assert results["wordset_index"]["identical_results"]
    assert results["packed_segment"]["identical_results"]
    assert results["wordset_index"]["speedup"] >= 2.0
    assert results["packed_segment"]["speedup"] >= 3.0
    out = REPO_ROOT / "BENCH_PR6.json"
    out.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
