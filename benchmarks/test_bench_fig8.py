"""Fig 8 bench: bytes processed per structure while replaying the trace.

Wall-clock benches of the replay kernels, plus the paper's shape check:
the counting inverted index reads the most bytes, and the byte ratio
grows with corpus size.
"""

import pytest

from repro.cost.accounting import AccessTracker
from repro.datagen.corpus import CorpusConfig, generate_corpus
from repro.datagen.querygen import QueryConfig, generate_workload
from repro.invindex.counting import CountingInvertedIndex
from repro.invindex.nonredundant import NonRedundantInvertedIndex
from repro.optimize.remap import build_index


def replay_bytes(structure, tracker, queries):
    for query in queries:
        structure.query(query)
    return tracker.reset().bytes_scanned


@pytest.fixture(scope="module")
def structures(corpus):
    ws_tracker, nr_tracker, cnt_tracker = (
        AccessTracker(), AccessTracker(), AccessTracker(),
    )
    return {
        "wordset": (build_index(corpus, None, tracker=ws_tracker), ws_tracker),
        "nonredundant": (
            NonRedundantInvertedIndex.from_corpus(corpus, tracker=nr_tracker),
            nr_tracker,
        ),
        "counting": (
            CountingInvertedIndex.from_corpus(corpus, tracker=cnt_tracker),
            cnt_tracker,
        ),
    }


@pytest.mark.parametrize("name", ["wordset", "nonredundant", "counting"])
def test_bench_fig8_replay(benchmark, structures, trace, name):
    structure, tracker = structures[name]
    benchmark.pedantic(
        replay_bytes, args=(structure, tracker, trace[:300]), rounds=3,
        iterations=1,
    )


def test_fig8_ratio_grows_with_corpus(trace):
    ratios = []
    for size in (1_000, 4_000):
        generated = generate_corpus(CorpusConfig(num_ads=size, seed=0))
        workload = generate_workload(
            generated,
            QueryConfig(num_distinct=300, total_frequency=3_000, seed=100),
        )
        queries = workload.sample_stream(400, seed=9)
        corpus = generated.corpus
        ws_t, cnt_t = AccessTracker(), AccessTracker()
        ws = build_index(corpus, None, tracker=ws_t)
        cnt = CountingInvertedIndex.from_corpus(corpus, tracker=cnt_t)
        ws_bytes = replay_bytes(ws, ws_t, queries)
        cnt_bytes = replay_bytes(cnt, cnt_t, queries)
        ratios.append(cnt_bytes / max(1, ws_bytes))
    assert ratios[1] > ratios[0] > 1.0
