"""Fig 1 bench: regenerating the bid-length histogram."""

import pytest

from repro.datagen.corpus import (
    CorpusConfig,
    generate_corpus,
    length_cumulative_fractions,
)


def test_bench_fig1_histogram(benchmark, corpus):
    histogram = benchmark(corpus.length_histogram)
    assert max(histogram, key=histogram.get) == 3


def test_bench_fig1_generation(benchmark):
    generated = benchmark.pedantic(
        lambda: generate_corpus(CorpusConfig(num_ads=2_000, seed=1)),
        rounds=3,
        iterations=1,
    )
    cumulative = length_cumulative_fractions(generated.corpus)
    assert cumulative[3] == pytest.approx(0.62, abs=0.05)
    assert cumulative[5] == pytest.approx(0.96, abs=0.03)
