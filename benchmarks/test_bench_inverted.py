"""Section VII-A bench: wall-clock query throughput per structure.

The paper's headline comparison.  Absolute CPython times are not the
paper's C++ times, but the *ordering* — word-set index fastest on modeled
memory cost, counting inverted index reading the most data — must hold, and
is asserted here on the access-tracked counts.
"""

import pytest

from repro.core.queries import Query
from repro.cost.accounting import AccessTracker
from repro.experiments.common import MODEL
from repro.invindex.counting import CountingInvertedIndex
from repro.invindex.nonredundant import NonRedundantInvertedIndex
from repro.invindex.redundant import RedundantInvertedIndex
from repro.optimize.remap import build_index


@pytest.fixture(scope="module")
def query_batch(trace):
    return trace[:400]


def run_queries(structure, queries):
    total = 0
    for query in queries:
        total += len(structure.query(query))
    return total


def test_bench_wordset_index(benchmark, corpus, query_batch):
    index = build_index(corpus, None)
    benchmark(run_queries, index, query_batch)


def test_bench_nonredundant_inverted(benchmark, corpus, query_batch):
    index = NonRedundantInvertedIndex.from_corpus(corpus)
    benchmark(run_queries, index, query_batch)


def test_bench_counting_inverted(benchmark, corpus, query_batch):
    index = CountingInvertedIndex.from_corpus(corpus)
    benchmark(run_queries, index, query_batch)


def test_bench_redundant_inverted(benchmark, corpus, query_batch):
    index = RedundantInvertedIndex.from_corpus(corpus)
    benchmark(run_queries, index, query_batch)


def test_modeled_ordering_matches_paper(corpus, query_batch):
    """The VII-A table's ordering on modeled memory time."""
    modeled = {}
    for name, factory in [
        ("wordset", lambda t: build_index(corpus, None, tracker=t)),
        ("nonredundant",
         lambda t: NonRedundantInvertedIndex.from_corpus(corpus, tracker=t)),
        ("counting",
         lambda t: CountingInvertedIndex.from_corpus(corpus, tracker=t)),
    ]:
        tracker = AccessTracker()
        structure = factory(tracker)
        run_queries(structure, query_batch)
        modeled[name] = tracker.reset().modeled_ns(MODEL)
    assert modeled["wordset"] < modeled["nonredundant"]


def test_all_structures_agree(corpus, query_batch):
    structures = [
        build_index(corpus, None),
        NonRedundantInvertedIndex.from_corpus(corpus),
        CountingInvertedIndex.from_corpus(corpus),
        RedundantInvertedIndex.from_corpus(corpus),
    ]
    for query in query_batch[:100]:
        results = [
            sorted(a.info.listing_id for a in s.query(query))
            for s in structures
        ]
        assert all(r == results[0] for r in results)


def test_query_type_sanity(corpus):
    index = build_index(corpus, None)
    assert index.query(Query.from_text("zz_unknown_word")) == []
