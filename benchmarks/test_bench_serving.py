"""Benches for the serving layer: pipeline throughput, cache, persistence,
sharded scatter-gather."""

import pytest

from repro.core.sharded import ShardedWordSetIndex
from repro.optimize.remap import build_index
from repro.persist import load_index, save_index
from repro.serving.result_cache import CachedIndex
from repro.serving.server import AdServer


@pytest.fixture(scope="module")
def plain_index(corpus):
    return build_index(corpus, None)


def test_bench_adserver_pipeline(benchmark, plain_index, trace):
    server = AdServer(plain_index, slots=4, reserve_micros=1_000)

    def serve_batch():
        for query in trace[:300]:
            server.serve(query)
        return server.stats.impressions

    impressions = benchmark(serve_batch)
    assert impressions > 0


def test_bench_cached_index(benchmark, plain_index, trace):
    cached = CachedIndex(plain_index, capacity=256)

    def replay():
        for query in trace[:500]:
            cached.query(query)
        return cached.cache_stats.hit_rate()

    benchmark(replay)
    # The Zipf head must make the cache worthwhile.
    assert cached.cache_stats.hit_rate() > 0.3


def test_bench_sharded_query(benchmark, corpus, trace):
    sharded = ShardedWordSetIndex.from_corpus(corpus, num_shards=4)

    def replay():
        total = 0
        for query in trace[:300]:
            total += len(sharded.query(query))
        return total

    sharded_total = benchmark(replay)
    assert sharded_total >= 0


def test_bench_persist_save(benchmark, corpus, tmp_path_factory):
    directory = tmp_path_factory.mktemp("bench-persist")

    def save():
        save_index(directory / "index.jsonl", corpus)

    benchmark.pedantic(save, rounds=3, iterations=1)


def test_bench_persist_load(benchmark, corpus, tmp_path_factory):
    path = tmp_path_factory.mktemp("bench-persist") / "index.jsonl"
    save_index(path, corpus)
    loaded = benchmark.pedantic(load_index, args=(path,), rounds=3, iterations=1)
    assert len(loaded.corpus) == len(corpus)
