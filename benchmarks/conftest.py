"""Shared fixtures for the benchmark harness.

Each ``test_bench_*`` module regenerates one paper table/figure: it builds
the experiment's inputs once (session-scoped), asserts the paper's shape on
the outputs, and wall-clock-benchmarks the kernel operation that the
experiment's numbers come from.  Run with::

    pytest benchmarks/ --benchmark-only
"""

import pytest

from repro.datagen.corpus import CorpusConfig, generate_corpus
from repro.datagen.querygen import QueryConfig, generate_workload

NUM_ADS = 4_000
NUM_DISTINCT = 500
TOTAL_FREQUENCY = 15_000
TRACE_LENGTH = 1_000


@pytest.fixture(scope="session")
def generated():
    return generate_corpus(CorpusConfig(num_ads=NUM_ADS, seed=0))


@pytest.fixture(scope="session")
def corpus(generated):
    return generated.corpus


@pytest.fixture(scope="session")
def workload(generated):
    return generate_workload(
        generated,
        QueryConfig(
            num_distinct=NUM_DISTINCT,
            total_frequency=TOTAL_FREQUENCY,
            seed=100,
        ),
    )


@pytest.fixture(scope="session")
def trace(workload):
    return workload.sample_stream(TRACE_LENGTH, seed=9)
