"""Fig 7 bench: keyword vs word-set bucket-size series."""

from repro.invindex.counting import CountingInvertedIndex
from repro.optimize.remap import build_index


def test_bench_fig7_bucket_series(benchmark, corpus):
    def series():
        inverted = CountingInvertedIndex.from_corpus(corpus)
        index = build_index(corpus, None)
        keywords = sorted((len(p) for p in inverted.lists.values()), reverse=True)
        wordsets = sorted((len(n) for n in index.nodes.values()), reverse=True)
        return keywords, wordsets

    keywords, wordsets = benchmark.pedantic(series, rounds=3, iterations=1)
    top = max(1, len(keywords) // 100)
    top_sets = max(1, len(wordsets) // 100)
    # The paper's ~3000 -> ~100 popular-bucket reduction, as a ratio.
    assert sum(keywords[:top]) / top > 2 * (sum(wordsets[:top_sets]) / top_sets)
