"""Section VI bench: compressed-lookup build and probe kernels."""

import pytest

from repro.compress.compressed_hash import CompressedWordSetIndex
from repro.compress.sizing import worked_example
from repro.core.queries import Query
from repro.optimize.remap import build_index


@pytest.fixture(scope="module")
def plain_index(corpus):
    return build_index(corpus, None)


def test_bench_compressed_build(benchmark, plain_index):
    compressed = benchmark.pedantic(
        CompressedWordSetIndex.from_index,
        args=(plain_index,),
        kwargs={"suffix_bits": 16},
        rounds=3,
        iterations=1,
    )
    assert compressed.entropy_bits() < compressed.structure_bits()


def test_bench_compressed_query(benchmark, plain_index, trace):
    compressed = CompressedWordSetIndex.from_index(plain_index, suffix_bits=16)

    def replay():
        total = 0
        for query in trace[:300]:
            total += len(compressed.query(query))
        return total

    compressed_total = benchmark(replay)
    plain_total = sum(
        len(plain_index.query(q)) for q in trace[:300]
    )
    assert compressed_total == plain_total


def test_bench_worked_example(benchmark):
    example = benchmark(worked_example)
    assert 6.0 <= example.ratio <= 10.0


def test_bench_lookup_kernel(benchmark, plain_index):
    compressed = CompressedWordSetIndex.from_index(plain_index, suffix_bits=16)
    locators = [n.locator for n in plain_index.nodes.values()][:200]

    def lookups():
        hits = 0
        for locator in locators:
            if compressed.lookup(locator) is not None:
                hits += 1
        return hits

    hits = benchmark(lookups)
    assert hits == len(locators)


def test_compressed_handles_misses(plain_index):
    compressed = CompressedWordSetIndex.from_index(plain_index, suffix_bits=20)
    assert compressed.query(Query.from_text("zz yy xx")) == []
