"""Fig 3 bench: MT rule-length histogram vs bid lengths."""

from repro.datagen.mtgen import drop_off_ratio, mt_length_histogram


def test_bench_fig3_mt_histogram(benchmark, corpus):
    mt = benchmark(mt_length_histogram, 20_000, 3)
    assert max(mt, key=mt.get) == 3
    assert drop_off_ratio(mt) < drop_off_ratio(corpus.length_histogram())
