"""Section VII-C bench: the trace-driven hardware-counter replay."""

from repro.memsim.cache import Cache
from repro.memsim.counters import run_traced_workload
from repro.memsim.layout import IndexLayout
from repro.memsim.tlb import Tlb
from repro.optimize.remap import build_index


def test_bench_traced_replay(benchmark, corpus, trace):
    layout = IndexLayout(build_index(corpus, None))
    counters = benchmark.pedantic(
        run_traced_workload,
        args=(layout, trace[:400]),
        kwargs={"tlb": Tlb(entries=8), "cache": Cache(size_bytes=16 * 1024,
                                                      associativity=4)},
        rounds=2,
        iterations=1,
    )
    assert counters.memory_accesses > 0
    assert counters.dtlb_misses > 0
    assert counters.branch_predictions > counters.branch_mispredictions
