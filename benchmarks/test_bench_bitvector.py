"""Rank/select microbenchmarks for the two bit-array implementations.

``repro.compress.bitvector.BitVector`` is the list-of-ints broadword
structure from PR 2; ``repro.segment.bits.PackedBits`` is the
buffer-backed variant the packed segment maps straight off disk.  Both
must agree bit-for-bit on ``rank1``/``select1``, and the select inner
loop (clear-lowest-set-bit walk) is what these benches keep honest —
it sits on the packed segment's node-lookup path.
"""

import random

import pytest

from repro.compress.bitvector import BitVector
from repro.segment.bits import PackedBits, pack_bits

N_BITS = 1 << 17
DENSITY = 0.04  # sparse, like a B^sig occupancy vector
N_CALLS = 2_000


@pytest.fixture(scope="module")
def positions():
    rng = random.Random(42)
    return sorted(
        rng.sample(range(N_BITS), int(N_BITS * DENSITY))
    )


@pytest.fixture(scope="module")
def bitvector(positions):
    return BitVector.from_positions(N_BITS, positions)


@pytest.fixture(scope="module")
def packedbits(positions):
    return PackedBits.from_buffer(
        memoryview(pack_bits(N_BITS, positions)), N_BITS
    )


@pytest.fixture(scope="module")
def rank_points():
    rng = random.Random(7)
    return [rng.randrange(N_BITS + 1) for _ in range(N_CALLS)]


@pytest.fixture(scope="module")
def select_points(positions):
    rng = random.Random(8)
    return [rng.randrange(1, len(positions) + 1) for _ in range(N_CALLS)]


def test_implementations_agree(bitvector, packedbits, positions, rank_points):
    assert bitvector.ones == packedbits.ones == len(positions)
    for i in rank_points[:500]:
        assert bitvector.rank1(i) == packedbits.rank1(i)
    for j in range(1, len(positions) + 1, 97):
        expected = positions[j - 1]
        assert bitvector.select1(j) == expected
        assert packedbits.select1(j) == expected


def test_select0_matches_linear_oracle(bitvector, positions):
    ones = set(positions)
    zeros = [i for i in range(N_BITS) if i not in ones]
    for j in range(1, len(zeros) + 1, 4_999):
        assert bitvector.select0(j) == zeros[j - 1]


def _replay_rank(bits, points):
    total = 0
    for i in points:
        total += bits.rank1(i)
    return total


def _replay_select(bits, points):
    total = 0
    for j in points:
        total += bits.select1(j)
    return total


def test_bench_bitvector_rank1(benchmark, bitvector, rank_points):
    total = benchmark.pedantic(
        lambda: _replay_rank(bitvector, rank_points), rounds=3, iterations=1
    )
    assert total > 0


def test_bench_packedbits_rank1(benchmark, packedbits, rank_points):
    total = benchmark.pedantic(
        lambda: _replay_rank(packedbits, rank_points), rounds=3, iterations=1
    )
    assert total > 0


def test_bench_bitvector_select1(benchmark, bitvector, select_points):
    total = benchmark.pedantic(
        lambda: _replay_select(bitvector, select_points),
        rounds=3,
        iterations=1,
    )
    assert total > 0


def test_bench_packedbits_select1(benchmark, packedbits, select_points):
    total = benchmark.pedantic(
        lambda: _replay_select(packedbits, select_points),
        rounds=3,
        iterations=1,
    )
    assert total > 0
