"""Fig 2 bench: the Zipf word-set frequency series."""

from repro.datagen.zipf import fit_power_law_slope


def test_bench_fig2_ranked_frequencies(benchmark, corpus):
    ranked = benchmark(corpus.wordset_frequencies_ranked)
    assert ranked == sorted(ranked, reverse=True)
    slope = fit_power_law_slope(ranked[:2000])
    assert -1.8 < slope < -0.3
