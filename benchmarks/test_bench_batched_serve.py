"""Benches and acceptance gates for the batched serving pipeline (PR 9).

The headline experiment is ``repro.netserve.bench --mode batched``: the
same Zipf closed-loop drive measured twice over one shared segment —
once through the unbatched PR 7 relay configuration, once through the
full pipeline (worker micro-batching + frontend singleflight + result
cache).  Gates:

* frontend QPS speedup at concurrency ≥ 32 over the ``speedup_floor``
  (2× where the host has cores to show it; on a CPU-starved host the
  recorded ``cpu_feasible`` flag drops the enforced floor to the
  fallback, exactly like BENCH_PR7);
* pipeline p99 within the request deadline, zero errors either run;
* slates bit-identical to an in-process scalar oracle with batching,
  coalescing, and the cache each enabled in isolation and together.

``test_full_bench_document_persisted`` writes ``BENCH_PR9.json`` at the
repo root; the CI smoke job runs the ``--batched`` smoke drill on every
push.
"""

import json
import pathlib
import socket

import pytest

from repro.netserve.bench import BATCHED_FALLBACK_FLOOR, run_batched_bench

pytestmark = pytest.mark.skipif(
    not hasattr(socket, "AF_UNIX"),
    reason="serving tier needs AF_UNIX sockets",
)

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: The acceptance configuration: concurrency ≥ 32 on Zipf traffic, per
#: the PR 9 issue.  Gates are asserted by the tests below rather than
#: inside the runner so a failure still shows the measured document.
BENCH_KWARGS = dict(
    num_ads=20_000,
    num_queries=96,
    duration_s=3.0,
    concurrency=32,
    deadline_ms=250.0,
    num_workers=2,
    conns_per_worker=16,
    max_batch=16,
    cache_entries=512,
    zipf_s=1.1,
    speedup_floor=2.0,
    seed=0,
    enforce_gates=False,
)


@pytest.fixture(scope="module")
def bench_document():
    return run_batched_bench(**BENCH_KWARGS)


def test_speedup_gate(bench_document):
    gate = bench_document["gates"]["speedup"]
    assert gate["floor"] == 2.0
    assert gate["fallback_floor"] == BATCHED_FALLBACK_FLOOR
    # The enforced floor must honestly reflect the host.
    expected_floor = 2.0 if gate["cpu_feasible"] else BATCHED_FALLBACK_FLOOR
    assert gate["effective_floor"] == expected_floor
    assert gate["passed"], (
        f"pipeline speedup {gate['speedup']:.2f}x below "
        f"effective floor {gate['effective_floor']}x "
        f"(cores={gate['available_cores']})"
    )


def test_latency_gate(bench_document):
    gate = bench_document["gates"]["latency"]
    assert gate["passed"], (
        f"pipeline p99 {gate['p99_ms']['pipeline']:.2f}ms exceeds "
        f"deadline {gate['deadline_ms']}ms"
    )


def test_zero_errors_gate(bench_document):
    gate = bench_document["gates"]["errors"]
    assert gate["passed"], gate["counts"]


def test_equivalence_gate_each_layer_in_isolation(bench_document):
    gate = bench_document["gates"]["equivalence"]
    assert set(gate["runs"]) == {
        "batching_only",
        "coalescing_only",
        "cache_only",
        "all_on",
    }
    for name, run in gate["runs"].items():
        assert run["mismatches"] == 0, (name, run)
        assert run["request_id_mismatches"] == 0, (name, run)
        assert run["errors"] == 0, (name, run)
    assert gate["passed"]


def test_pipeline_actually_engaged(bench_document):
    """The comparison is meaningless if the pipeline run never batched,
    coalesced, or hit the cache."""
    pipeline = bench_document["pipeline"]
    assert pipeline["batched"] is True
    assert bench_document["baseline"]["batched"] is False
    coalescing = pipeline["coalescing"]
    shared = coalescing["coalesced"] + coalescing["cache_hits"]
    assert shared > 0, coalescing
    traffic = pipeline["traffic"]
    assert traffic["mode"] == "zipf"
    assert 0.0 < traffic["unique_query_fraction"] < 1.0


def test_full_bench_document_persisted(bench_document):
    """Persist the PR 9 acceptance document at the repo root."""
    document = dict(bench_document)
    gates = document["gates"]
    flat = {
        "speedup": gates["speedup"]["passed"],
        "latency": gates["latency"]["passed"],
        "errors": gates["errors"]["passed"],
        "equivalence": gates["equivalence"]["passed"],
    }
    assert all(flat.values()), flat
    out = REPO_ROOT / "BENCH_PR9.json"
    out.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
