"""Benches for the probe-pruning fast path and the batch query engine.

The acceptance gate for the fast path: on a long-query broad-match
workload it must cut hash probes by at least 3x versus the paper's
unpruned enumeration while returning bit-identical results.  The full
comparison document is persisted to ``BENCH_PR1.json`` at the repo root
(also produced standalone by ``python -m repro.perf.bench``).
"""

import json
import pathlib

import pytest

from repro.core.wordset_index import WordSetIndex
from repro.cost.accounting import AccessTracker
from repro.perf.batch import BatchQueryEngine
from repro.perf.bench import make_long_queries, run_fastpath_bench

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

QUERY_LEN = 12
NUM_QUERIES = 60


@pytest.fixture(scope="module")
def long_queries(generated, workload):
    return make_long_queries(
        generated, workload, NUM_QUERIES, QUERY_LEN, seed=7
    )


@pytest.fixture(scope="module")
def fast_index(corpus):
    return WordSetIndex.from_corpus(corpus)


@pytest.fixture(scope="module")
def naive_index(corpus):
    return WordSetIndex.from_corpus(corpus, fast_path=False)


def replay_ids(index, queries):
    return [
        sorted(ad.info.listing_id for ad in index.query(q))
        for q in queries
    ]


def test_fastpath_results_identical(fast_index, naive_index, long_queries):
    assert replay_ids(fast_index, long_queries) == replay_ids(
        naive_index, long_queries
    )


def test_fastpath_probe_reduction_at_least_3x(corpus, long_queries):
    fast_tracker = AccessTracker()
    fast = WordSetIndex.from_corpus(corpus, tracker=fast_tracker)
    naive_tracker = AccessTracker()
    naive = WordSetIndex.from_corpus(
        corpus, tracker=naive_tracker, fast_path=False
    )
    assert replay_ids(fast, long_queries) == replay_ids(naive, long_queries)
    fast_probes = fast_tracker.stats.hash_probes
    naive_probes = naive_tracker.stats.hash_probes
    assert fast_probes > 0
    assert naive_probes >= 3 * fast_probes, (
        f"probe reduction only {naive_probes / fast_probes:.2f}x"
    )


def test_bench_fastpath_replay(benchmark, fast_index, long_queries):
    total = benchmark.pedantic(
        lambda: sum(len(r) for r in replay_ids(fast_index, long_queries)),
        rounds=3,
        iterations=1,
    )
    assert total >= 0


def test_bench_naive_replay(benchmark, naive_index, long_queries):
    total = benchmark.pedantic(
        lambda: sum(len(r) for r in replay_ids(naive_index, long_queries)),
        rounds=3,
        iterations=1,
    )
    assert total >= 0


def test_bench_batch_engine(benchmark, corpus, long_queries):
    from repro.core.sharded import ShardedWordSetIndex

    sharded = ShardedWordSetIndex.from_corpus(corpus, num_shards=4)
    engine = BatchQueryEngine(sharded)
    batch = long_queries + long_queries[: NUM_QUERIES // 2]

    results = benchmark.pedantic(
        lambda: engine.query_broad_batch(batch), rounds=3, iterations=1
    )
    assert len(results) == len(batch)
    assert engine.stats.dedup_rate() > 0


def test_noop_instrumentation_overhead_within_5pct(corpus, long_queries):
    """The observability gate: a disabled registry (``obs=NULL_REGISTRY``
    normalises to ``None``) must cost <= 5% on the fast-path replay.

    Min-of-N timing on interleaved passes so cache state and CPU clocking
    hit both variants equally; a small absolute epsilon keeps the gate
    meaningful when a replay pass is only a few milliseconds.
    """
    from time import perf_counter

    from repro.obs import NULL_REGISTRY

    bare = WordSetIndex.from_corpus(corpus)
    noop = WordSetIndex.from_corpus(corpus, obs=NULL_REGISTRY)
    assert noop._obs is None  # disabled registry normalised away

    def replay_seconds(index):
        started = perf_counter()
        for query in long_queries:
            index.query(query)
        return perf_counter() - started

    # Warm both, then interleave timed passes and keep the minimum.
    replay_seconds(bare)
    replay_seconds(noop)
    bare_times, noop_times = [], []
    for _ in range(5):
        bare_times.append(replay_seconds(bare))
        noop_times.append(replay_seconds(noop))
    bare_best = min(bare_times)
    noop_best = min(noop_times)

    epsilon = 1e-4  # 0.1 ms absolute slack for timer noise
    assert noop_best <= bare_best * 1.05 + epsilon, (
        f"no-op instrumentation overhead "
        f"{(noop_best / bare_best - 1) * 100:.1f}% exceeds 5%"
    )


def test_full_bench_document_persisted():
    """Run the standalone benchmark driver and pin the acceptance gates on
    the persisted ``BENCH_PR1.json`` document."""
    results = run_fastpath_bench(
        num_ads=2_000, num_queries=60, query_len=QUERY_LEN, seed=11
    )
    assert results["identical_results"]
    assert results["probe_reduction"] >= 3.0
    out = REPO_ROOT / "BENCH_PR1.json"
    out.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
