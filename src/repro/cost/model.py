"""The paper's cost model for main-memory access (Section IV-A).

A random access costs ``Cost_Random`` (TLB miss, possible page walk, no DRAM
burst); a sequential read of ``m`` bytes after a random positioning costs
``Cost_Scan(m)``.  The paper only requires ``Cost_Scan`` to be positive and
monotonically increasing; we use a linear model ``m / bandwidth`` with
defaults calibrated to commodity-DRAM figures (≈100 ns random latency,
≈10 GB/s effective sequential bandwidth), which reproduces the paper's key
ratio: sequential bytes are orders of magnitude cheaper than random hops,
but far less extreme than on disk — which is what bounds node size ``k``.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class CostModel:
    """Prices memory operations in nanoseconds.

    Parameters
    ----------
    cost_random_ns:
        ``Cost_Random`` — latency of one random main-memory access.
    scan_ns_per_byte:
        Slope of ``Cost_Scan(m) = m * scan_ns_per_byte``; the reciprocal of
        sequential bandwidth.
    mem_hash_bytes:
        Bytes read per hash-table probe (``mem_hash`` in ``Cost_Hash``):
        one bucket entry (stored signature + pointer/offset).
    """

    cost_random_ns: float = 100.0
    scan_ns_per_byte: float = 0.1
    mem_hash_bytes: int = 16

    def __post_init__(self) -> None:
        if self.cost_random_ns <= 0 or self.scan_ns_per_byte <= 0:
            raise ValueError("costs must be positive")
        if self.mem_hash_bytes <= 0:
            raise ValueError("mem_hash_bytes must be positive")

    def cost_random(self) -> float:
        """``Cost_Random`` in ns."""
        return self.cost_random_ns

    def cost_scan(self, nbytes: int) -> float:
        """``Cost_Scan(m)``: monotone increasing, positive for m >= 0."""
        if nbytes < 0:
            raise ValueError("cannot scan a negative number of bytes")
        return nbytes * self.scan_ns_per_byte

    def hash_probe_cost(self) -> float:
        """One probe: a random access plus scanning ``mem_hash`` bytes."""
        return self.cost_random_ns + self.cost_scan(self.mem_hash_bytes)

    def break_even_bytes(self) -> int:
        """Bytes of sequential scanning worth one random access.

        This is the quantity that bounds data-node size in Section V-B: once
        the wasted scan past a random access's worth of bytes, splitting the
        node wins.  With the defaults this is 1000 bytes — a small number of
        ads, exactly the paper's ``k`` argument.
        """
        return int(self.cost_random_ns / self.scan_ns_per_byte)


#: Default model used across experiments; matches DESIGN.md calibration.
DEFAULT_COST_MODEL = CostModel()
