"""Main-memory cost modeling (Section IV of the paper).

``CostModel`` prices random accesses and sequential scans; ``AccessTracker``
counts what a structure actually did; ``workload_cost`` evaluates the
analytic ``Cost(WL, M)`` of Section V-A used by the optimizer.
"""

from repro.cost.accounting import AccessStats, AccessTracker
from repro.cost.model import CostModel
from repro.cost.workload_cost import (
    cost_hash,
    cost_hash_index,
    cost_node,
    cost_node_single,
    total_cost,
)

__all__ = [
    "AccessStats",
    "AccessTracker",
    "CostModel",
    "cost_hash",
    "cost_hash_index",
    "cost_node",
    "cost_node_single",
    "total_cost",
]
