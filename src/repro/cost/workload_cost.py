"""Analytic workload cost ``Cost(WL, M)`` (Section V-A of the paper).

These functions evaluate the closed-form cost the optimizer minimizes,
without executing any query:

* ``cost_hash`` — probing the hash table: every query pays one random access
  plus a ``mem_hash``-byte read per candidate subset, with the number of
  probes ``min(2^|Q| - 1, Σ_{i<=max_words} C(|Q|, i))``;
* ``cost_node`` — visiting data nodes: for every occupied node whose locator
  is a subset of the query, one random access plus sequentially reading
  every entry whose phrase has at most ``|Q|`` words (entries beyond that
  are never touched thanks to the word-count ordering);
* ``total_cost`` — their sum.

``cost_node_single`` is the per-node contribution — exactly the
``weight(S)`` of equation (2) that the set-cover reduction assigns to a
candidate node content ``S``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.subset_enum import lookup_count, lookup_count_bounded
from repro.cost.model import CostModel

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycle
    from repro.core.data_node import DataNode
    from repro.core.queries import Query, Workload
    from repro.core.wordset_index import WordSetIndex


def query_lookup_count(query_len: int, max_words: int | None) -> int:
    """Hash probes required by a query of ``query_len`` words."""
    if max_words is None:
        return lookup_count(query_len)
    return min(lookup_count(query_len), lookup_count_bounded(query_len, max_words))


def cost_hash(
    workload: Workload, model: CostModel, max_words: int | None
) -> float:
    """``Cost_Hash(WL, M)``: probe count priced at random + mem_hash scan.

    Independent of the mapping ``M`` (only ``max_words`` matters), which is
    why the optimizer drops it from the objective.
    """
    total = 0.0
    probe_cost = model.cost_random() + model.cost_scan(model.mem_hash_bytes)
    for query, frequency in workload:
        probes = query_lookup_count(len(query.words), max_words)
        total += frequency * probes * probe_cost
    return total


def cost_hash_index(
    index: WordSetIndex, workload: Workload, model: CostModel
) -> float:
    """Hash-probe cost of the probes ``index`` actually executes.

    The probe-pruning fast path (:mod:`repro.perf`) skips subsets that
    cannot address any node, so the executed probe count depends on the
    index's locator vocabulary and size histogram, not just ``max_words``.
    Pricing the index's own :meth:`~repro.core.wordset_index.WordSetIndex.
    probe_plan` keeps the analytic cost equal to the tracker-measured cost
    on both the pruned and the naive path.
    """
    total = 0.0
    probe_cost = model.cost_random() + model.cost_scan(model.mem_hash_bytes)
    for query, frequency in workload:
        probes = index.probe_plan(query.words).probe_count()
        total += frequency * probes * probe_cost
    return total


def _node_scan_cost(node: DataNode, query_len: int, model: CostModel) -> float:
    """Sequential cost of one probe into ``node`` for a ``query_len`` query."""
    return model.cost_scan(node.scan_bytes_for_query_len(query_len))


def cost_node_single(
    node: DataNode, workload: Workload, model: CostModel
) -> float:
    """``weight(S)`` of equation (2) for the node content ``S``.

    Sums, over every workload query whose word-set contains the node
    locator, one random access plus the sequential read of all entries not
    cut off by early termination.
    """
    locator = node.locator
    total = 0.0
    for query, frequency in workload:
        if locator <= query.words:
            total += frequency * (
                model.cost_random() + _node_scan_cost(node, len(query.words), model)
            )
    return total


def cost_node(
    index: WordSetIndex, workload: Workload, model: CostModel
) -> float:
    """``Cost_Node(WL, M)`` for the mapping realized by ``index``."""
    # Group nodes by locator size first so each query only considers nodes
    # whose locator could fit inside it.
    nodes = list(index.nodes.values())
    total = 0.0
    for query, frequency in workload:
        words = query.words
        query_len = len(words)
        for node in nodes:
            if len(node.locator) <= query_len and node.locator <= words:
                total += frequency * (
                    model.cost_random() + _node_scan_cost(node, query_len, model)
                )
    return total


def total_cost(
    index: WordSetIndex, workload: Workload, model: CostModel
) -> float:
    """``Cost(WL, M) = Cost_Hash + Cost_Node``.

    Uses the index's executed probe plan for the hash term so the analytic
    cost reconciles with an :class:`~repro.cost.accounting.AccessTracker`
    measurement whether or not the fast path is on; for a
    ``fast_path=False`` index this equals the closed-form ``cost_hash``.
    """
    return cost_hash_index(index, workload, model) + cost_node(
        index, workload, model
    )
