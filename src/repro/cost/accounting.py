"""Counting what a structure actually does.

The library never times CPython to compare structures (interpreter overhead
would swamp the memory behaviour the paper measures); instead every index
reports its work to an ``AccessTracker`` — random accesses, bytes scanned,
hash probes, candidates examined — and the ``CostModel`` converts the counts
to modeled nanoseconds.  Wall-clock timing lives in ``benchmarks/`` only.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cost.model import CostModel


@dataclass(slots=True)
class AccessStats:
    """A snapshot of counted work."""

    random_accesses: int = 0
    bytes_scanned: int = 0
    hash_probes: int = 0
    candidates_examined: int = 0
    postings_traversed: int = 0
    queries: int = 0

    def modeled_ns(self, model: CostModel) -> float:
        """Convert counts to modeled time under ``model``."""
        return (
            self.random_accesses * model.cost_random()
            + model.cost_scan(self.bytes_scanned)
        )

    def __add__(self, other: AccessStats) -> AccessStats:
        return AccessStats(
            random_accesses=self.random_accesses + other.random_accesses,
            bytes_scanned=self.bytes_scanned + other.bytes_scanned,
            hash_probes=self.hash_probes + other.hash_probes,
            candidates_examined=self.candidates_examined
            + other.candidates_examined,
            postings_traversed=self.postings_traversed + other.postings_traversed,
            queries=self.queries + other.queries,
        )


@dataclass(slots=True)
class AccessTracker:
    """Mutable accumulator indexes report their memory operations to."""

    stats: AccessStats = field(default_factory=AccessStats)

    def random_access(self, nbytes: int = 0) -> None:
        """One random positioning, optionally followed by reading bytes."""
        self.stats.random_accesses += 1
        self.stats.bytes_scanned += nbytes

    def sequential(self, nbytes: int) -> None:
        """Sequential read continuing from the current position."""
        self.stats.bytes_scanned += nbytes

    def hash_probe(self, nbytes: int) -> None:
        """A hash-table probe: random access reading one bucket entry."""
        self.stats.hash_probes += 1
        self.random_access(nbytes)

    def candidate(self, count: int = 1) -> None:
        self.stats.candidates_examined += count

    def posting(self, count: int = 1) -> None:
        self.stats.postings_traversed += count

    def query_done(self) -> None:
        self.stats.queries += 1

    def reset(self) -> AccessStats:
        """Return current stats and start a fresh accumulation."""
        finished = self.stats
        self.stats = AccessStats()
        return finished

    def modeled_ns(self, model: CostModel) -> float:
        return self.stats.modeled_ns(model)
