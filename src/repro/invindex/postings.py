"""Posting lists shared by the inverted-index baselines.

A posting references one advertisement; depending on the variant it is
either a bare reference (8 bytes, modeling a pointer/ID) or a reference
augmented with the bid's word count (the paper's "modified" index stores
"the total number of keywords in the corresponding bid phrase together with
each posting").
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass, field

from repro.core.ads import Advertisement

#: Modeled size of an ad reference inside a posting list.
POSTING_REF_BYTES = 8

#: Extra byte storing the bid word count in the counting variant.
WORD_COUNT_BYTES = 1


@dataclass(slots=True)
class Posting:
    """One entry of a posting list."""

    ad: Advertisement
    word_count: int = field(init=False)

    def __post_init__(self) -> None:
        self.word_count = len(self.ad.words)


class PostingList:
    """An append-only posting list for one keyword."""

    __slots__ = ("word", "postings", "with_counts")

    def __init__(self, word: str, with_counts: bool = False) -> None:
        self.word = word
        self.postings: list[Posting] = []
        #: Whether the modeled layout stores word counts inline.
        self.with_counts = with_counts

    def append(self, ad: Advertisement) -> None:
        self.postings.append(Posting(ad))

    def __len__(self) -> int:
        return len(self.postings)

    def __iter__(self) -> Iterator[Posting]:
        return iter(self.postings)

    def posting_bytes(self) -> int:
        """Modeled size of one posting."""
        if self.with_counts:
            return POSTING_REF_BYTES + WORD_COUNT_BYTES
        return POSTING_REF_BYTES

    def size_bytes(self) -> int:
        """Modeled size of the whole list."""
        return len(self.postings) * self.posting_bytes()
