"""Baseline (II): "modified" inverted index with per-posting word counts.

Section I-C / VII-A of the paper: every word of every bid is indexed, and
each posting stores the total number of words in its bid.  A query traverses
the posting lists of all its words, counting occurrences per ad; an ad whose
occurrence count equals its stored word count has all its words in the
query and therefore broad-matches — no phrase access needed.

The paper notes the skipping optimization is unavailable: a bid with fewer
words than the query need not appear in every traversed list, so lists must
be read in full.  That is exactly why this structure reads three orders of
magnitude more data than the word-set index on frequent-word queries.
"""

from __future__ import annotations

from collections import Counter

from repro.core.ads import AdCorpus, Advertisement
from repro.core.matching import MatchType, apply_match_type
from repro.core.queries import Query
from repro.invindex.postings import PostingList
from repro.cost.accounting import AccessTracker


class CountingInvertedIndex:
    """Fully redundant index resolved by merge-counting postings."""

    def __init__(self, tracker: AccessTracker | None = None) -> None:
        self.tracker = tracker
        self._lists: dict[str, PostingList] = {}
        self._num_ads = 0

    @classmethod
    def from_corpus(
        cls, corpus: AdCorpus, tracker: AccessTracker | None = None
    ) -> CountingInvertedIndex:
        index = cls(tracker=tracker)
        for ad in corpus:
            index.insert(ad)
        return index

    def insert(self, ad: Advertisement) -> None:
        """Index ``ad`` under every one of its words."""
        for word in ad.words:
            plist = self._lists.get(word)
            if plist is None:
                plist = PostingList(word, with_counts=True)
                self._lists[word] = plist
            plist.append(ad)
        self._num_ads += 1

    def query_broad(self, query: Query) -> list[Advertisement]:
        """Merge-count postings; an ad matches when its count is reached.

        Mirrors the paper's algorithm: traverse all inverted indexes for
        query keywords, keep track of how often each bid occurs, and report
        bids seen exactly ``word_count`` times.
        """
        tracker = self.tracker
        seen: Counter[int] = Counter()
        by_id: dict[int, Advertisement] = {}
        query_words = query.words
        for word in sorted(query_words):
            plist = self._lists.get(word)
            if tracker is not None:
                tracker.hash_probe(8)
            if plist is None:
                continue
            if tracker is not None:
                tracker.random_access(plist.size_bytes())
                tracker.posting(len(plist))
            for posting in plist:
                key = id(posting.ad)
                seen[key] += 1
                by_id[key] = posting.ad
                if tracker is not None:
                    tracker.candidate()
        results = [
            by_id[key]
            for key, count in seen.items()
            if count == len(by_id[key].words)
        ]
        if tracker is not None:
            tracker.query_done()
        return results

    def query(
        self, query: Query, match_type: MatchType = MatchType.BROAD
    ) -> list[Advertisement]:
        """The shared :class:`RetrievalIndex` surface: broad candidates,
        then phrase/exact verification on the stored phrases."""
        return apply_match_type(self.query_broad(query), query, match_type)

    def stats(self) -> dict[str, int]:
        """Structural statistics (the :class:`RetrievalIndex` surface)."""
        return {
            "num_ads": self._num_ads,
            "num_posting_lists": len(self._lists),
            "total_postings": sum(len(p) for p in self._lists.values()),
        }

    def query_broad_no_merge(self, query: Query) -> None:
        """Traverse every required posting once without any merging.

        Reproduces the paper's control experiment (Section VII-A): "we
        never merge any indexes, but only access each required posting
        once, without any further processing" — isolating pure data-volume
        cost from merge-algorithm overhead.  Returns nothing by design.
        """
        tracker = self.tracker
        for word in sorted(query.words):
            plist = self._lists.get(word)
            if tracker is not None:
                tracker.hash_probe(8)
            if plist is None:
                continue
            if tracker is not None:
                tracker.random_access(plist.size_bytes())
                tracker.posting(len(plist))
        if tracker is not None:
            tracker.query_done()

    def __len__(self) -> int:
        return self._num_ads

    @property
    def lists(self) -> dict[str, PostingList]:
        return self._lists

    def index_bytes(self) -> int:
        return sum(plist.size_bytes() for plist in self._lists.values())
