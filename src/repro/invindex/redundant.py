"""The naive union-and-verify inverted index from the paper's introduction.

Every word of every bid is indexed (no counts); a query unions the posting
lists of its words, deduplicates candidates, and verifies each candidate's
phrase against the query.  This is the strawman of Section I ("first
consider the use of inverted indexes containing advertisement IDs as
postings"); it is dominated by the other two baselines but completes the
comparison and serves as another independently-implemented oracle.
"""

from __future__ import annotations

from repro.core.ads import AdCorpus, Advertisement
from repro.core.matching import MatchType, apply_match_type
from repro.core.queries import Query
from repro.invindex.postings import PostingList
from repro.cost.accounting import AccessTracker


class RedundantInvertedIndex:
    """Fully redundant index resolved by union + phrase verification."""

    def __init__(self, tracker: AccessTracker | None = None) -> None:
        self.tracker = tracker
        self._lists: dict[str, PostingList] = {}
        self._num_ads = 0

    @classmethod
    def from_corpus(
        cls, corpus: AdCorpus, tracker: AccessTracker | None = None
    ) -> RedundantInvertedIndex:
        index = cls(tracker=tracker)
        for ad in corpus:
            index.insert(ad)
        return index

    def insert(self, ad: Advertisement) -> None:
        for word in ad.words:
            plist = self._lists.get(word)
            if plist is None:
                plist = PostingList(word)
                self._lists[word] = plist
            plist.append(ad)
        self._num_ads += 1

    def query_broad(self, query: Query) -> list[Advertisement]:
        tracker = self.tracker
        query_words = query.words
        seen: set[int] = set()
        results: list[Advertisement] = []
        for word in sorted(query_words):
            plist = self._lists.get(word)
            if tracker is not None:
                tracker.hash_probe(8)
            if plist is None:
                continue
            if tracker is not None:
                tracker.random_access(plist.size_bytes())
                tracker.posting(len(plist))
            for posting in plist:
                key = id(posting.ad)
                if key in seen:
                    continue
                seen.add(key)
                ad = posting.ad
                if tracker is not None:
                    tracker.random_access(ad.size_bytes())
                    tracker.candidate()
                if ad.words <= query_words:
                    results.append(ad)
        if tracker is not None:
            tracker.query_done()
        return results

    def query(
        self, query: Query, match_type: MatchType = MatchType.BROAD
    ) -> list[Advertisement]:
        """The shared :class:`RetrievalIndex` surface: broad candidates,
        then phrase/exact verification on the stored phrases."""
        return apply_match_type(self.query_broad(query), query, match_type)

    def stats(self) -> dict[str, int]:
        """Structural statistics (the :class:`RetrievalIndex` surface)."""
        return {
            "num_ads": self._num_ads,
            "num_posting_lists": len(self._lists),
            "total_postings": sum(len(p) for p in self._lists.values()),
        }

    def __len__(self) -> int:
        return self._num_ads

    @property
    def lists(self) -> dict[str, PostingList]:
        return self._lists

    def index_bytes(self) -> int:
        return sum(plist.size_bytes() for plist in self._lists.values())
