"""Baseline (I): non-redundant inverted index keyed by the rarest bid word.

Section I-C / VII-A of the paper: because broad match only needs a *subset*
of the query's words, each ad needs to be indexed under a single word — the
one least frequent in the corpus, so posting lists stay short.  Processing a
query iterates the posting lists of every query word and fetches each
candidate's phrase to check it contains no non-query words.

Cost profile (what Figure 8 measures): short posting lists, but one random
access plus a phrase read per candidate, and candidates are plentiful when a
query contains a corpus-frequent word.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.core.ads import AdCorpus, Advertisement
from repro.core.matching import MatchType, apply_match_type
from repro.core.queries import Query
from repro.invindex.postings import PostingList
from repro.cost.accounting import AccessTracker


class NonRedundantInvertedIndex:
    """Rarest-word inverted index with phrase verification."""

    def __init__(self, tracker: AccessTracker | None = None) -> None:
        self.tracker = tracker
        self._lists: dict[str, PostingList] = {}
        self._num_ads = 0

    @classmethod
    def from_corpus(
        cls, corpus: AdCorpus, tracker: AccessTracker | None = None
    ) -> NonRedundantInvertedIndex:
        """Index every ad under its least corpus-frequent word."""
        index = cls(tracker=tracker)
        for ad in corpus:
            index.insert(ad, corpus.rarest_word(ad))
        return index

    def insert(self, ad: Advertisement, key_word: str) -> None:
        """Add ``ad`` under ``key_word`` (must be one of the ad's words)."""
        if key_word not in ad.words:
            raise ValueError(
                f"indexing word {key_word!r} does not occur in the bid"
            )
        plist = self._lists.get(key_word)
        if plist is None:
            plist = PostingList(key_word)
            self._lists[key_word] = plist
        plist.append(ad)
        self._num_ads += 1

    def query_broad(self, query: Query) -> list[Advertisement]:
        """Union the query words' posting lists, verify each phrase."""
        tracker = self.tracker
        results: list[Advertisement] = []
        query_words = query.words
        for word in sorted(query_words):
            plist = self._lists.get(word)
            if tracker is not None:
                # Locating the list itself is one random dictionary probe.
                tracker.hash_probe(8)
            if plist is None:
                continue
            if tracker is not None:
                # Position at the list head, then stream the references.
                tracker.random_access(plist.size_bytes())
                tracker.posting(len(plist))
            for posting in plist:
                ad = posting.ad
                if tracker is not None:
                    # Fetch the phrase to test for non-query words: one
                    # random access reading the stored ad record.
                    tracker.random_access(ad.size_bytes())
                    tracker.candidate()
                if ad.words <= query_words:
                    results.append(ad)
        if tracker is not None:
            tracker.query_done()
        return results

    def query(
        self, query: Query, match_type: MatchType = MatchType.BROAD
    ) -> list[Advertisement]:
        """The shared :class:`RetrievalIndex` surface: broad candidates,
        then phrase/exact verification on the stored phrases."""
        return apply_match_type(self.query_broad(query), query, match_type)

    def stats(self) -> dict[str, int]:
        """Structural statistics (the :class:`RetrievalIndex` surface)."""
        return {
            "num_ads": self._num_ads,
            "num_posting_lists": len(self._lists),
            "total_postings": sum(len(p) for p in self._lists.values()),
        }

    def __len__(self) -> int:
        return self._num_ads

    @property
    def lists(self) -> dict[str, PostingList]:
        return self._lists

    def index_bytes(self) -> int:
        """Modeled size of all posting lists (excluding the ad store)."""
        return sum(plist.size_bytes() for plist in self._lists.values())

    def list_lengths_ranked(self) -> list[int]:
        """Posting-list lengths, descending — the 'bucket sizes' of Fig 7."""
        return sorted((len(p) for p in self._lists.values()), reverse=True)


def build_from_ads(
    ads: Iterable[Advertisement], tracker: AccessTracker | None = None
) -> NonRedundantInvertedIndex:
    """Convenience: build from a plain iterable by materializing a corpus."""
    return NonRedundantInvertedIndex.from_corpus(AdCorpus(ads), tracker=tracker)
