"""Inverted-index baselines the paper compares against (Sections I-C, VII-A).

* :class:`NonRedundantInvertedIndex` — strategy (I): each ad is indexed
  under its *rarest* corpus word only; candidates' phrases are fetched and
  verified.
* :class:`CountingInvertedIndex` — strategy (II): every word of every ad is
  indexed; postings carry the bid's word count and matches are found by
  merge-counting, with no phrase access.
* :class:`RedundantInvertedIndex` — the naive union-and-verify structure
  sketched in the introduction (every word indexed, phrases verified).

All three implement the shared :class:`repro.core.RetrievalIndex`
protocol (``query``/``stats``/``__len__``) like
:class:`repro.core.WordSetIndex` — keeping ``query_broad`` as their
primary, non-deprecated entry point — and report their work to an
:class:`~repro.cost.accounting.AccessTracker`.
"""

from repro.invindex.counting import CountingInvertedIndex
from repro.invindex.nonredundant import NonRedundantInvertedIndex
from repro.invindex.postings import POSTING_REF_BYTES, PostingList
from repro.invindex.redundant import RedundantInvertedIndex

__all__ = [
    "CountingInvertedIndex",
    "NonRedundantInvertedIndex",
    "POSTING_REF_BYTES",
    "PostingList",
    "RedundantInvertedIndex",
]
