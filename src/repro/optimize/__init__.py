"""Re-mapping and workload-driven mapping optimization (Sections IV-V).

* :func:`long_phrase_mapping` — re-map only phrases longer than
  ``max_words`` (Fig 10 variant (b));
* :func:`optimize_mapping` — full re-mapping via weighted set cover
  (Fig 10 variant (c));
* :mod:`repro.optimize.setcover` — the generic greedy / exact / withdrawal
  solvers;
* :class:`MaintainedIndex` — online insert/delete maintenance with periodic
  re-optimization (Section VI).
"""

from repro.optimize.mapping import (
    Group,
    Mapping,
    OptimizerConfig,
    corpus_groups,
    locator_access_profile,
    node_size_bound,
    node_weight,
    optimize_mapping,
)
from repro.optimize.online import MaintainedIndex
from repro.optimize.remap import build_index, long_phrase_mapping
from repro.optimize.setcover import (
    CandidateSet,
    ChosenSet,
    exact_weighted_set_cover,
    fixed_weight,
    greedy_weighted_set_cover,
    harmonic,
    withdrawal_improve,
)

__all__ = [
    "CandidateSet",
    "ChosenSet",
    "Group",
    "MaintainedIndex",
    "Mapping",
    "OptimizerConfig",
    "build_index",
    "corpus_groups",
    "exact_weighted_set_cover",
    "fixed_weight",
    "greedy_weighted_set_cover",
    "harmonic",
    "locator_access_profile",
    "long_phrase_mapping",
    "node_size_bound",
    "node_weight",
    "optimize_mapping",
    "withdrawal_improve",
]
