"""Casting index-mapping optimization to weighted set cover (Section V).

The *elements* of the cover are the distinct word-set **groups** of the
corpus (condition IV forces ads with identical word-sets to move together,
so a group is atomic — this is also what tightens the approximation bound
from ``H_k`` to ``H_k'`` over distinct word-sets).  The *candidate sets*
are, for each feasible node locator ``N``, bounded-size collections of
groups whose word-sets contain ``N``; their weight is equation (2): for
every workload query ``Q ⊇ N``, one random access plus the sequential scan
of all entries not cut off by early termination.

The optimizer:

1. collects locator candidates (every distinct word-set of ``<= max_words``
   words, plus synthesized locators for long groups with no short subset);
2. aggregates, per locator, the workload frequency of accessing it **by
   query length** (early termination makes cost depend on ``|Q|``);
3. builds nested (prefix) candidate sets per locator, capped at the node
   size bound ``k`` derived from the cost model's random/sequential
   break-even;
4. runs the greedy weighted set cover, optionally followed by withdrawal
   steps, and emits a validated :class:`Mapping`.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterable, Mapping as MappingABC
from dataclasses import dataclass, field

from repro.core.ads import AdCorpus, Advertisement
from repro.core.data_node import ENTRY_HEADER_BYTES, NODE_HEADER_BYTES
from repro.core.queries import Workload
from repro.core.subset_enum import bounded_subsets
from repro.cost.model import CostModel
from repro.optimize.setcover import (
    CandidateSet,
    greedy_weighted_set_cover,
    withdrawal_improve,
)

WordSet = frozenset[str]


@dataclass(frozen=True, slots=True)
class Group:
    """All ads sharing one word-set: the atomic unit of re-mapping."""

    words: WordSet
    ads: tuple[Advertisement, ...]
    entry_bytes: int = field(init=False)

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "entry_bytes",
            sum(ENTRY_HEADER_BYTES + ad.size_bytes() for ad in self.ads),
        )

    @property
    def word_count(self) -> int:
        return len(self.words)


def corpus_groups(corpus: AdCorpus | Iterable[Advertisement]) -> list[Group]:
    """Partition a corpus into word-set groups (condition IV)."""
    by_words: dict[WordSet, list[Advertisement]] = defaultdict(list)
    for ad in corpus:
        by_words[ad.words].append(ad)
    return [Group(words=w, ads=tuple(ads)) for w, ads in by_words.items()]


class Mapping:
    """A validated assignment of word-set groups to node locators.

    Enforces the paper's conditions: every group mapped (I) to exactly one
    locator (II) that is a non-empty subset of its words (III); groups are
    atomic, so condition IV holds by construction.  ``max_words`` bounds
    locator length when given.
    """

    def __init__(
        self,
        assignment: MappingABC[WordSet, WordSet],
        max_words: int | None = None,
    ) -> None:
        for words, locator in assignment.items():
            if not locator:
                raise ValueError("empty locator")
            if not locator <= words:
                raise ValueError(
                    f"locator {set(locator)!r} not a subset of {set(words)!r}"
                )
            if max_words is not None and len(locator) > max_words:
                raise ValueError("locator exceeds max_words")
        self._assignment = dict(assignment)
        self.max_words = max_words

    @classmethod
    def identity(cls, corpus: AdCorpus) -> Mapping:
        """The no-re-mapping baseline: every group at its own word-set."""
        return cls({w: w for w in corpus.distinct_wordsets()})

    def locator_for(self, words: WordSet) -> WordSet:
        """Locator for a group (identity if unmapped)."""
        return self._assignment.get(words, words)

    def as_dict(self) -> dict[WordSet, WordSet]:
        return dict(self._assignment)

    def __len__(self) -> int:
        return len(self._assignment)

    def remapped_count(self) -> int:
        """Number of groups moved away from their own word-set."""
        return sum(1 for w, n in self._assignment.items() if w != n)

    def num_locators(self) -> int:
        return len(set(self._assignment.values()))


# --------------------------------------------------------------------- #
# Workload access statistics per locator.


def locator_access_profile(
    locators: set[WordSet],
    workload: Workload,
    max_words: int | None,
) -> dict[WordSet, dict[int, int]]:
    """For each locator ``N``, the total workload frequency of queries
    ``Q ⊇ N``, broken down by query length.

    Query length matters because early termination stops a node scan at
    entries with more words than ``|Q|``.  Computed by enumerating each
    query's bounded subsets and intersecting with the locator set — the
    same work pattern as query processing itself.
    """
    profile: dict[WordSet, dict[int, int]] = defaultdict(lambda: defaultdict(int))
    for query, frequency in workload:
        words = query.words
        bound = len(words) if max_words is None else min(len(words), max_words)
        for subset in bounded_subsets(words, bound):
            if subset in locators:
                profile[subset][len(words)] += frequency
    return {loc: dict(by_len) for loc, by_len in profile.items()}


def node_weight(
    locator: WordSet,
    groups: list[Group],
    access_by_qlen: dict[int, int],
    model: CostModel,
) -> float:
    """Equation (2): the workload cost of a node at ``locator`` holding
    ``groups``.

    For each accessing query length ``q``: one random access plus scanning
    the node header and every group whose word count is ``<= q``.
    """
    if not access_by_qlen:
        return 0.0
    ordered = sorted(groups, key=lambda g: g.word_count)
    total = 0.0
    for qlen, frequency in access_by_qlen.items():
        scanned = NODE_HEADER_BYTES
        for group in ordered:
            if group.word_count > qlen:
                break
            scanned += group.entry_bytes
        total += frequency * (model.cost_random() + model.cost_scan(scanned))
    return total


# --------------------------------------------------------------------- #
# The optimizer.


def node_size_bound(model: CostModel, avg_group_bytes: float) -> int:
    """The ``k`` of Section V-B: max groups per node worth co-locating.

    Once scanning one more group's bytes costs more than a random access
    for every accessing query, splitting wins, so nodes larger than
    ``break_even / avg_group_bytes`` cannot be optimal (up to workload
    skew).  Clamped to at least 2 so merging is ever considered.
    """
    if avg_group_bytes <= 0:
        return 2
    return max(2, int(model.break_even_bytes() / avg_group_bytes))


@dataclass(frozen=True, slots=True)
class OptimizerConfig:
    """Tuning for :func:`optimize_mapping`."""

    max_words: int | None = 10
    #: Hard cap on groups per candidate node (``None`` = derive from model).
    node_size_cap: int | None = None
    #: Run withdrawal-step local improvement after the greedy.
    withdrawal: bool = True
    #: Order per-locator candidate prefixes by workload co-access benefit
    #: (False falls back to smallest-bytes-first; ablation knob).
    benefit_ordering: bool = True
    #: Cap on locator candidates considered per group (subset explosion
    #: guard for very long bids).
    max_subsets_per_group: int = 256


def _synthesize_locator(
    group: Group, corpus: AdCorpus, max_words: int
) -> WordSet:
    """A short locator for a long group with no existing short subset:
    its ``max_words`` rarest words (selective, so the new node attracts
    few co-accessing queries)."""
    rare = sorted(group.words, key=lambda w: (corpus.word_frequency(w), w))
    return frozenset(rare[:max_words])


def optimize_mapping(
    corpus: AdCorpus,
    workload: Workload,
    model: CostModel,
    config: OptimizerConfig = OptimizerConfig(),
) -> Mapping:
    """Compute a full re-mapping minimizing ``Cost_Node(WL, M)``.

    Returns a validated :class:`Mapping`; see the module docstring for the
    pipeline.  ``Cost_Hash`` is mapping-independent and therefore ignored,
    exactly as in the paper's reduction.
    """
    groups = corpus_groups(corpus)
    if not groups:
        return Mapping({}, max_words=config.max_words)
    max_words = config.max_words

    # 1. Locator candidates: existing short word-sets + synthesized ones.
    locators: set[WordSet] = set()
    for group in groups:
        if max_words is None or group.word_count <= max_words:
            locators.add(group.words)
    for group in groups:
        if max_words is not None and group.word_count > max_words:
            if not any(loc <= group.words for loc in locators):
                locators.add(_synthesize_locator(group, corpus, max_words))

    # 2. Eligible groups per locator.
    eligible: dict[WordSet, list[Group]] = defaultdict(list)
    for group in groups:
        bound = group.word_count if max_words is None else min(
            group.word_count, max_words
        )
        count = 0
        for subset in bounded_subsets(group.words, bound):
            if subset in locators:
                eligible[subset].append(group)
                count += 1
                if count >= config.max_subsets_per_group:
                    break
        if count == 0:
            # Should not happen: every short group has its own locator and
            # long groups got a synthesized subset locator above.
            raise AssertionError("group with no eligible locator")

    # 3. Access profile and candidate sets.
    profile = locator_access_profile(locators, workload, max_words)
    avg_group_bytes = sum(g.entry_bytes for g in groups) / len(groups)
    cap = config.node_size_cap or node_size_bound(model, avg_group_bytes)

    group_by_words = {g.words: g for g in groups}

    def weight_fn_for(locator: WordSet):
        access = profile.get(locator, {})

        def weight_fn(element_words: frozenset) -> float:
            members = [group_by_words[w] for w in element_words]
            weight = node_weight(locator, members, access, model)
            if weight == 0.0 and element_words:
                # Unaccessed nodes are free under the workload model, but
                # ties must prefer identity/specific placement; charge a
                # vanishing build cost per byte to break ties stably.
                weight = 1e-9 * sum(g.entry_bytes for g in members)
            return weight

        return weight_fn

    def access_mass(words: WordSet, min_qlen: int = 0) -> int:
        """Total workload frequency of queries containing ``words`` (with
        at least ``min_qlen`` words)."""
        return sum(
            frequency
            for qlen, frequency in profile.get(words, {}).items()
            if qlen >= min_qlen
        )

    candidates: list[CandidateSet] = []
    for locator, members in eligible.items():
        weight_fn = weight_fn_for(locator)

        def merge_benefit(group: Group, loc: WordSet = locator) -> float:
            """Net ns saved by co-locating ``group`` at ``loc``: every query
            reaching the group's own node via ``loc`` saves a random access;
            every other query scanning past the group pays its bytes."""
            saved = access_mass(group.words) * model.cost_random()
            extra_scans = access_mass(loc, group.word_count) - access_mass(
                group.words
            )
            return saved - max(0, extra_scans) * model.cost_scan(
                group.entry_bytes
            )

        # Nested prefixes: the locator's own group always leads (so the
        # identity singleton is a candidate — this is what guarantees the
        # greedy never beats identity cost, see tests), then groups in
        # decreasing order of merge benefit (strongly co-accessed supersets
        # first, scan-burden-heavy strangers last).
        if config.benefit_ordering:
            ordered = sorted(
                members,
                key=lambda g: (
                    g.words != locator,
                    -merge_benefit(g),
                    g.entry_bytes,
                    sorted(g.words),
                ),
            )
        else:
            ordered = sorted(
                members,
                key=lambda g: (
                    g.words != locator,
                    g.entry_bytes,
                    sorted(g.words),
                ),
            )
        prefix: list[Group] = []
        for group in ordered[: max(cap, 1)]:
            prefix.append(group)
            candidates.append(
                CandidateSet(
                    name=(locator, len(prefix)),
                    elements=frozenset(g.words for g in prefix),
                    weight_fn=weight_fn,
                )
            )

    universe = [g.words for g in groups]
    solution = greedy_weighted_set_cover(universe, candidates)
    if config.withdrawal:
        solution = withdrawal_improve(universe, candidates, solution)

    # 4. Emit the mapping.  A group covered by candidate (locator, _) is
    # placed at that locator.
    assignment: dict[WordSet, WordSet] = {}
    for chosen in solution:
        locator, _ = chosen.candidate.name
        for words in chosen.covered:
            assignment[words] = locator
    return Mapping(assignment, max_words=max_words)
