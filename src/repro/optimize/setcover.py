"""Weighted set cover: greedy, exact (small instances), and withdrawal steps.

Section V of the paper reduces optimal index-mapping to weighted set cover.
This module provides the *generic* machinery:

* :func:`greedy_weighted_set_cover` — Chvátal's greedy: repeatedly pick the
  set minimizing weight / newly-covered elements.  When every candidate set
  has at most ``k`` elements this is an ``H_k``-approximation [Chvátal'79],
  the bound the paper invokes.
* :func:`exact_weighted_set_cover` — brute force over candidate subsets, for
  validating the greedy's approximation ratio on small instances.
* :func:`withdrawal_improve` — the local-improvement flavour of Hassin &
  Levin's "withdrawal steps": try removing a chosen set and re-covering its
  exclusive elements more cheaply with other candidates.

Weights may be *residual-aware*: a candidate passed as a
:class:`CandidateSet` with a ``weight_fn`` is re-priced for the subset of
its elements that is still uncovered, which is exactly the behaviour of the
paper's ``weight(S)`` (equation 2) where dropping an ad from a node removes
its scan cost.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable, Collection, Hashable, Sequence
from dataclasses import dataclass
from itertools import combinations
from math import inf


@dataclass(frozen=True)
class CandidateSet:
    """A set available to the cover, with a residual-aware weight.

    ``weight_fn`` prices any sub-collection of ``elements``; for classical
    (fixed-weight) set cover pass ``lambda elems: w`` — the greedy then
    reduces to the textbook algorithm.
    """

    name: Hashable
    elements: frozenset
    weight_fn: Callable[[frozenset], float]

    def weight(self, elements: frozenset | None = None) -> float:
        chosen = self.elements if elements is None else elements
        return self.weight_fn(chosen)


@dataclass(frozen=True)
class ChosenSet:
    """One set in a cover solution: the candidate and what it covers."""

    candidate: CandidateSet
    covered: frozenset

    @property
    def weight(self) -> float:
        return self.candidate.weight(self.covered)


def fixed_weight(weight: float) -> Callable[[frozenset], float]:
    """Weight function for classical set cover (ignores the residual)."""

    def fn(_elements: frozenset) -> float:
        return weight

    return fn


def _solution_cost(solution: Sequence[ChosenSet]) -> float:
    return sum(chosen.weight for chosen in solution)


def greedy_weighted_set_cover(
    universe: Collection[Hashable],
    candidates: Sequence[CandidateSet],
) -> list[ChosenSet]:
    """Chvátal's greedy with a lazy priority queue.

    Each candidate is priced on its *uncovered* elements; stale heap entries
    are re-evaluated on pop (lazy evaluation), which keeps the loop
    near-linear for the non-increasing ratios that occur in practice.

    Raises ``ValueError`` if the candidates cannot cover the universe.
    """
    uncovered = set(universe)
    if not uncovered:
        return []

    def ratio(candidate: CandidateSet) -> tuple[float, frozenset]:
        covered = frozenset(candidate.elements & uncovered)
        if not covered:
            return inf, covered
        return candidate.weight(covered) / len(covered), covered

    heap: list[tuple[float, int]] = []
    for i, candidate in enumerate(candidates):
        r, _ = ratio(candidate)
        if r < inf:
            heapq.heappush(heap, (r, i))

    solution: list[ChosenSet] = []
    while uncovered:
        while heap:
            stale_ratio, i = heapq.heappop(heap)
            current_ratio, covered = ratio(candidates[i])
            if current_ratio == inf:
                continue
            if heap and current_ratio > heap[0][0] + 1e-12:
                heapq.heappush(heap, (current_ratio, i))
                continue
            solution.append(
                ChosenSet(candidate=candidates[i], covered=covered)
            )
            uncovered -= covered
            break
        else:
            raise ValueError(
                f"candidates cannot cover {len(uncovered)} remaining elements"
            )
    return solution


def exact_weighted_set_cover(
    universe: Collection[Hashable],
    candidates: Sequence[CandidateSet],
    max_sets: int | None = None,
) -> list[ChosenSet]:
    """Minimum-weight cover by exhaustive search.  Exponential; tests only.

    ``max_sets`` optionally caps the solution cardinality to prune search.
    """
    universe_set = frozenset(universe)
    if not universe_set:
        return []
    limit = max_sets if max_sets is not None else len(candidates)
    best_cost = inf
    best: list[ChosenSet] | None = None
    for size in range(1, limit + 1):
        for combo in combinations(range(len(candidates)), size):
            covered_total: set = set()
            ok = True
            for i in combo:
                covered_total |= candidates[i].elements
            if not universe_set <= covered_total:
                continue
            # Assign each element to the first set that covers it so
            # residual weights are priced on disjoint coverage.
            remaining = set(universe_set)
            chosen_list = []
            cost = 0.0
            for i in combo:
                covered = frozenset(candidates[i].elements & remaining)
                if not covered:
                    ok = False
                    break
                remaining -= covered
                chosen = ChosenSet(candidate=candidates[i], covered=covered)
                chosen_list.append(chosen)
                cost += chosen.weight
                if cost >= best_cost:
                    ok = False
                    break
            if ok and not remaining and cost < best_cost:
                best_cost = cost
                best = chosen_list
        if best is not None:
            # A cover with fewer sets exists; larger combos can still be
            # cheaper with weighted sets, so keep searching all sizes
            # unless capped — but prune via best_cost above.
            continue
    if best is None:
        raise ValueError("candidates cannot cover the universe")
    return best


def withdrawal_improve(
    universe: Collection[Hashable],
    candidates: Sequence[CandidateSet],
    solution: list[ChosenSet],
    max_rounds: int = 3,
) -> list[ChosenSet]:
    """Local improvement by withdrawal steps.

    Repeatedly attempt to *withdraw* one chosen set and re-cover its
    elements with a single cheaper alternative candidate (pricing residual
    weights), keeping the change only when total cost drops.  This is the
    practical core of the better-than-greedy guarantee of Hassin & Levin.
    """
    current = list(solution)
    for _ in range(max_rounds):
        improved = False
        for idx, victim in enumerate(current):
            others_covered: set = set()
            for j, chosen in enumerate(current):
                if j != idx:
                    others_covered |= chosen.covered
            orphaned = frozenset(set(victim.covered) - others_covered)
            if not orphaned:
                # Fully redundant set: dropping it is always an improvement.
                current.pop(idx)
                improved = True
                break
            best_replacement: ChosenSet | None = None
            for candidate in candidates:
                if candidate is victim.candidate:
                    continue
                if orphaned <= candidate.elements:
                    replacement = ChosenSet(
                        candidate=candidate, covered=orphaned
                    )
                    if (
                        best_replacement is None
                        or replacement.weight < best_replacement.weight
                    ):
                        best_replacement = replacement
            if (
                best_replacement is not None
                and best_replacement.weight < victim.weight
            ):
                current[idx] = best_replacement
                improved = True
                break
        if not improved:
            break
    _assert_cover(universe, current)
    return current


def _assert_cover(universe: Collection[Hashable], solution: list[ChosenSet]) -> None:
    covered: set = set()
    for chosen in solution:
        covered |= chosen.covered
    missing = set(universe) - covered
    if missing:
        raise AssertionError(f"solution leaves {len(missing)} elements uncovered")


def harmonic(k: int) -> float:
    """``H_k`` — the greedy approximation factor for set size ``<= k``."""
    return sum(1.0 / i for i in range(1, k + 1))
