"""Long-phrase-only re-mapping (Section IV-B) and mapping application.

Re-mapping *all* phrases longer than ``max_words`` to node locators of at
most ``max_words`` words bounds the hash probes per query by
``Σ_{i<=max_words} C(|Q|, i)`` — the paper's variant (b) in Fig 10 —
without any workload information.  The destination heuristic prefers an
existing locator that is a subset of the long phrase (no new hash entries);
among those, the longest (most specific, so the merged node attracts the
fewest co-accessing queries); when none exists, a locator is synthesized
from the phrase's rarest words.
"""

from __future__ import annotations

from repro.core.ads import AdCorpus
from repro.core.wordset_index import WordSetIndex
from repro.cost.accounting import AccessTracker
from repro.optimize.mapping import Mapping, WordSet, corpus_groups


def _best_existing_locator(
    words: WordSet, locators: set[WordSet], max_words: int
) -> WordSet | None:
    """The longest existing locator that is a strict subset of ``words``."""
    best: WordSet | None = None
    for locator in locators:
        if len(locator) <= max_words and locator <= words:
            if best is None or (len(locator), sorted(locator)) > (
                len(best), sorted(best)
            ):
                best = locator
    return best


def _rarest_words_locator(
    words: WordSet, corpus: AdCorpus, max_words: int
) -> WordSet:
    rare = sorted(words, key=lambda w: (corpus.word_frequency(w), w))
    return frozenset(rare[:max_words])


def long_phrase_mapping(corpus: AdCorpus, max_words: int) -> Mapping:
    """Map every group longer than ``max_words`` to a short locator;
    short groups stay at their own word-sets."""
    if max_words < 1:
        raise ValueError("max_words must be >= 1")
    groups = corpus_groups(corpus)
    short_locators = {
        g.words for g in groups if g.word_count <= max_words
    }
    assignment: dict[WordSet, WordSet] = {w: w for w in short_locators}
    for group in groups:
        if group.word_count <= max_words:
            continue
        existing = _best_existing_locator(group.words, short_locators, max_words)
        if existing is None:
            existing = _rarest_words_locator(group.words, corpus, max_words)
            short_locators.add(existing)
        assignment[group.words] = existing
    return Mapping(assignment, max_words=max_words)


def build_index(
    corpus: AdCorpus,
    mapping: Mapping | None = None,
    tracker: AccessTracker | None = None,
    max_query_words: int = 16,
) -> WordSetIndex:
    """Materialize a :class:`WordSetIndex` under ``mapping``.

    With ``mapping=None`` the identity placement is used (Fig 10 variant
    (a): every query must probe all subsets).
    """
    if mapping is None:
        return WordSetIndex.from_corpus(
            corpus, tracker=tracker, max_query_words=max_query_words
        )
    return WordSetIndex.from_corpus(
        corpus,
        mapping=mapping.as_dict(),
        max_words=mapping.max_words,
        tracker=tracker,
        max_query_words=max_query_words,
    )
