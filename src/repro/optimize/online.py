"""Online maintenance under insertions and deletions (Section VI).

Online set cover has much weaker guarantees than the offline problem, so —
following the paper — insertions are placed by a **fast local heuristic**
and the full optimization is re-run only **periodically**:

* a new ad whose word-set is already placed simply follows its group
  (condition IV);
* a new short word-set is placed at itself (always feasible);
* a new long word-set (``> max_words`` words) is placed at the best
  existing short locator that is a subset of its words, else at a
  synthesized rarest-words locator — the same heuristic as offline
  long-phrase re-mapping, but evaluated against the *live* index;
* deletions go through :meth:`WordSetIndex.delete` (which, as the paper
  notes, is the expensive direction: locating the node is equivalent to a
  broad-match probe).

``MaintainedIndex`` counts mutations and re-optimizes from scratch via
:func:`repro.optimize.mapping.optimize_mapping` once a configurable churn
threshold is crossed (modeling the paper's "periodically, potentially on a
separate machine").
"""

from __future__ import annotations

from repro.core.ads import AdCorpus, Advertisement
from repro.core.matching import MatchType
from repro.core.queries import Query, Workload
from repro.core.wordset_index import WordSetIndex
from repro.cost.model import CostModel
from repro.optimize.mapping import (
    Mapping,
    OptimizerConfig,
    optimize_mapping,
)
from repro.optimize.remap import _best_existing_locator, _rarest_words_locator


class MaintainedIndex:
    """A WordSetIndex kept correct under churn and periodically re-optimized.

    Parameters
    ----------
    corpus:
        Live corpus; mutated by :meth:`insert` / :meth:`delete`.
    workload:
        Workload used when re-optimizing.
    model:
        Cost model for the optimizer.
    reopt_threshold:
        Re-optimize after this many mutations (0 disables periodic reopt).
    """

    def __init__(
        self,
        corpus: AdCorpus,
        workload: Workload,
        model: CostModel,
        config: OptimizerConfig = OptimizerConfig(),
        reopt_threshold: int = 1000,
    ) -> None:
        self._corpus = corpus
        self._workload = workload
        self._model = model
        self._config = config
        self.reopt_threshold = reopt_threshold
        self.mutations_since_reopt = 0
        self.reopt_count = 0
        self._mapping = optimize_mapping(corpus, workload, model, config)
        self._index = self._build()

    def _build(self) -> WordSetIndex:
        return WordSetIndex.from_corpus(
            self._corpus,
            mapping=self._mapping.as_dict(),
            max_words=self._mapping.max_words,
        )

    @property
    def index(self) -> WordSetIndex:
        return self._index

    @property
    def mapping(self) -> Mapping:
        return self._mapping

    def query(
        self, query: Query, match_type: MatchType = MatchType.BROAD
    ) -> list[Advertisement]:
        return self._index.query(query, match_type)

    def stats(self):
        return self._index.stats()

    def insert(self, ad: Advertisement) -> None:
        """Place ``ad`` with the local heuristic; maybe trigger reopt."""
        self._corpus.add(ad)
        locator = self._local_locator(ad)
        self._index.insert(ad, locator=locator)
        self._note_mutation()

    def _local_locator(self, ad: Advertisement) -> frozenset[str] | None:
        placement = self._index.placement()
        if ad.words in placement:
            return placement[ad.words]  # follow the group (condition IV)
        max_words = self._mapping.max_words
        if max_words is None or len(ad.words) <= max_words:
            return ad.words
        existing = _best_existing_locator(
            ad.words, set(placement.values()), max_words
        )
        if existing is not None:
            return existing
        return _rarest_words_locator(ad.words, self._corpus, max_words)

    def delete(self, ad: Advertisement) -> bool:
        """Remove ``ad`` from both corpus and index."""
        removed = self._index.delete(ad)
        if removed:
            # AdCorpus is append-only by design; rebuild it with exactly
            # one occurrence of ``ad`` removed.
            remaining = list(self._corpus)
            for i, a in enumerate(remaining):
                if a == ad:
                    del remaining[i]
                    break
            self._corpus = AdCorpus(remaining)
            self._note_mutation()
        return removed

    def _note_mutation(self) -> None:
        self.mutations_since_reopt += 1
        if (
            self.reopt_threshold
            and self.mutations_since_reopt >= self.reopt_threshold
        ):
            self.reoptimize()

    def reoptimize(self, workload: Workload | None = None) -> None:
        """Recompute the optimal mapping and rebuild the index."""
        if workload is not None:
            self._workload = workload
        self._mapping = optimize_mapping(
            self._corpus, self._workload, self._model, self._config
        )
        self._index = self._build()
        self.mutations_since_reopt = 0
        self.reopt_count += 1
