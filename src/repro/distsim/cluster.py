"""The two-tier cluster of Section VII-B as a discrete-event simulation.

Setup per the paper: the index and the advertisement data reside on two
different servers, so **every** query traverses both consecutively:

    client --net--> index server (CPU) --net--> data server (CPU) --net--> client

Queries arrive open-loop (Poisson) at a configurable rate; per-query CPU
demand comes from a service-time function — in the experiments this is the
cost-model time of executing that query on the structure under test, scaled
to CPU milliseconds.  ``find_saturation_rate`` mirrors the paper's
methodology ("we set the inter-arrival time between queries as high as
possible until one of the structures did not increase in throughput").
"""

from __future__ import annotations

import random
from collections.abc import Callable, Sequence
from dataclasses import dataclass

from repro.core.queries import Query
from repro.distsim.events import EventQueue
from repro.distsim.metrics import RunMetrics
from repro.distsim.network import NetworkModel


@dataclass(frozen=True, slots=True)
class ClusterConfig:
    """Parameters of a simulated run."""

    cores_per_server: int = 4
    duration_ms: float = 10_000.0
    network_base_ms: float = 0.5
    network_jitter_ms: float = 0.3
    seed: int = 0


class TwoTierCluster:
    """Index server + ad-data server, each FCFS multi-core."""

    def __init__(
        self,
        index_service_ms: Callable[[Query], float],
        data_service_ms: Callable[[Query], float],
        config: ClusterConfig = ClusterConfig(),
    ) -> None:
        self.index_service_ms = index_service_ms
        self.data_service_ms = data_service_ms
        self.config = config

    def run(self, queries: Sequence[Query], arrival_rate_qps: float) -> RunMetrics:
        """Simulate open-loop Poisson arrivals at ``arrival_rate_qps``.

        ``queries`` is cycled as the arrival stream.  Returns latency,
        utilization (of the index server — the paper's reported CPU), and
        throughput metrics.
        """
        from repro.distsim.server import Server

        if arrival_rate_qps <= 0:
            raise ValueError("arrival rate must be positive")
        if not queries:
            raise ValueError("need at least one query")
        events = EventQueue()
        network = NetworkModel(
            self.config.network_base_ms,
            self.config.network_jitter_ms,
            seed=self.config.seed,
        )
        rng = random.Random(self.config.seed + 1)
        index_server = Server(
            events, cores=self.config.cores_per_server, name="index"
        )
        data_server = Server(
            events, cores=self.config.cores_per_server, name="data"
        )
        latencies: list[float] = []
        finish_times: list[float] = []
        duration = self.config.duration_ms
        mean_gap_ms = 1000.0 / arrival_rate_qps

        def arrival(query_index: int, arrival_time: float) -> None:
            query = queries[query_index % len(queries)]
            start = events.now

            def at_index_server() -> None:
                index_server.submit(
                    self.index_service_ms(query), after_index
                )

            def after_index() -> None:
                events.schedule(network.delay_ms(), at_data_server)

            def at_data_server() -> None:
                data_server.submit(self.data_service_ms(query), after_data)

            def after_data() -> None:
                events.schedule(network.delay_ms(), complete)

            def complete() -> None:
                latencies.append(events.now - start)
                finish_times.append(events.now)

            events.schedule(network.delay_ms(), at_index_server)
            next_time = arrival_time + rng.expovariate(1.0 / mean_gap_ms)
            if next_time < duration:
                events.schedule_at(
                    next_time, lambda: arrival(query_index + 1, next_time)
                )

        events.schedule_at(0.0, lambda: arrival(0, 0.0))
        # Let in-flight queries drain past the arrival window.
        events.run(until=duration * 2)
        return RunMetrics(
            latencies_ms=tuple(latencies),
            duration_ms=duration,
            cpu_utilization=index_server.utilization(duration),
            offered_rps=arrival_rate_qps,
            completed_in_window=sum(1 for t in finish_times if t <= duration),
        )


def find_saturation_rate(
    cluster: TwoTierCluster,
    queries: Sequence[Query],
    start_qps: float = 100.0,
    growth: float = 1.5,
    max_steps: int = 12,
    efficiency_floor: float = 0.9,
) -> tuple[float, RunMetrics]:
    """Increase the arrival rate until throughput stops keeping up.

    Returns the last rate whose achieved throughput is at least
    ``efficiency_floor`` of the offered rate, with its metrics — the
    saturation point the paper's RPS numbers are read at.
    """
    rate = start_qps
    best: tuple[float, RunMetrics] | None = None
    for _ in range(max_steps):
        metrics = cluster.run(queries, rate)
        if metrics.achieved_rps >= efficiency_floor * rate:
            best = (rate, metrics)
            rate *= growth
        else:
            break
    if best is None:
        # Even the starting rate saturates; report it anyway.
        return start_qps, cluster.run(queries, start_qps)
    return best
