"""Discrete-event simulation of the two-server deployment (Section VII-B)."""

from repro.distsim.cluster import (
    ClusterConfig,
    TwoTierCluster,
    find_saturation_rate,
)
from repro.distsim.events import EventQueue
from repro.distsim.metrics import RunMetrics, smooth_histogram
from repro.distsim.network import NetworkModel
from repro.distsim.replication import (
    ReplicatedCluster,
    ReplicatedRunResult,
    ReplicationConfig,
)
from repro.distsim.scatter import (
    ScatterConfig,
    ScatterGatherCluster,
    measured_shard_service,
    uniform_shard_service,
)
from repro.distsim.server import Server

__all__ = [
    "ClusterConfig",
    "EventQueue",
    "NetworkModel",
    "ReplicatedCluster",
    "ReplicatedRunResult",
    "ReplicationConfig",
    "RunMetrics",
    "ScatterConfig",
    "ScatterGatherCluster",
    "Server",
    "TwoTierCluster",
    "find_saturation_rate",
    "measured_shard_service",
    "smooth_histogram",
    "uniform_shard_service",
]
