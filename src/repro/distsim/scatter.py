"""Scatter-gather simulation for sharded deployments (Section VII-B's
"split the data across servers" scenario).

Each shard runs on its own multi-core server.  A query is broadcast to all
shards (paying network latency per leg), each shard does its share of the
retrieval work, and the response completes when the **slowest** shard has
answered — the straggler effect that makes wide fan-outs latency-fragile
even as they divide CPU work.

Wide fan-outs are also *failure*-fragile: one dropped RPC stalls the whole
query.  The cluster therefore supports the standard production defences,
off by default so the base simulation is unchanged:

* **bounded retry with exponential backoff** (``max_retries``,
  ``retry_backoff_ms``) against transient per-shard failures (injected
  through the ``server.<shard>`` fault point of
  :class:`~repro.distsim.server.Server`);
* a **per-shard timeout** (``shard_timeout_ms``) measured from dispatch,
  covering network, queueing, service, and every retry of that leg;
* **graceful partial results** (``allow_partial``/``min_shards``): when
  some shards fail outright, the gather completes with the shards that
  answered instead of failing the query — the degradation every serving
  stack prefers over an empty ad slate.

Overload resilience (see :mod:`repro.resilience`), likewise off by
default with the base simulation bit-identical when unused:

* a **per-query deadline** (``deadline_ms``): per-shard timeouts derive
  from the remaining budget, retries the budget cannot cover are
  suppressed instead of dispatched, and at expiry the query completes
  with whatever shards answered (a flagged partial) rather than waiting
  out the straggler;
* **per-shard circuit breakers** (``breaker``): repeated leg failures
  open the shard's breaker and subsequent legs short-circuit locally —
  the retry-storm damper;
* **request hedging** (``hedge_ms``): when one straggler shard is the
  only leg outstanding after ``hedge_ms``, a duplicate leg races it;
* **admission control** (``admission``): arrivals shed against the
  cluster's total outstanding load before any leg dispatches.

Outcomes are reported through :mod:`repro.obs` counters:
``partial_results``, ``scatter.retries``, ``scatter.shard_timeouts``,
``scatter.shard_failures``, ``scatter.failed_queries``,
``scatter.shed_queries``, ``scatter.deadline_completions``,
``resilience.retries_suppressed``, ``resilience.hedges``, and the
breaker's ``resilience.breaker_*`` family.

Per-shard service times come from the same cost-model tables as the
two-tier cluster, scaled by each shard's share of the work.
"""

from __future__ import annotations

import random
import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass

from repro.core.queries import Query
from repro.distsim.events import EventQueue
from repro.distsim.metrics import RunMetrics
from repro.distsim.network import NetworkModel
from repro.distsim.server import Server
from repro.faults.injector import FaultInjector, active_injector
from repro.obs.registry import MetricsRegistry, active_or_none
from repro.resilience.admission import AdmissionController, Priority
from repro.resilience.breaker import BreakerConfig, CircuitBreaker


@dataclass(frozen=True, slots=True)
class ScatterConfig:
    num_shards: int = 4
    cores_per_server: int = 4
    duration_ms: float = 5_000.0
    network_base_ms: float = 0.5
    network_jitter_ms: float = 0.3
    seed: int = 0
    #: Per-shard deadline from dispatch (covers retries); None = no timeout.
    shard_timeout_ms: float | None = None
    #: Re-dispatches after a failed leg before the leg is given up.
    max_retries: int = 0
    #: First backoff delay; doubles per retry (bounded exponential).
    retry_backoff_ms: float = 1.0
    #: Complete queries with the shards that answered instead of failing.
    allow_partial: bool = False
    #: Minimum successful shards for a usable partial result (default 1).
    min_shards: int | None = None
    #: End-to-end per-query budget; None = no deadline.
    deadline_ms: float | None = None
    #: Per-shard circuit-breaker tuning; None = no breakers.
    breaker: BreakerConfig | None = None
    #: Hedge the last outstanding shard after this delay; None = never.
    hedge_ms: float | None = None

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if self.cores_per_server < 1:
            raise ValueError("cores_per_server must be >= 1")
        if self.duration_ms <= 0:
            raise ValueError("duration_ms must be positive")
        if self.network_base_ms < 0:
            raise ValueError("network_base_ms must be >= 0")
        if self.network_jitter_ms < 0:
            raise ValueError("network_jitter_ms must be >= 0")
        if self.shard_timeout_ms is not None and self.shard_timeout_ms <= 0:
            raise ValueError("shard_timeout_ms must be positive")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.retry_backoff_ms < 0:
            raise ValueError("retry_backoff_ms must be >= 0")
        if self.min_shards is not None and not (
            1 <= self.min_shards <= self.num_shards
        ):
            raise ValueError("min_shards must be in [1, num_shards]")
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise ValueError("deadline_ms must be positive")
        if self.hedge_ms is not None and self.hedge_ms <= 0:
            raise ValueError("hedge_ms must be positive")


class ScatterGatherCluster:
    """N shard servers answering every query in parallel."""

    def __init__(
        self,
        shard_service_ms: Callable[[int, Query], float],
        config: ScatterConfig = ScatterConfig(),
        obs: MetricsRegistry | None = None,
        faults: FaultInjector | None = None,
        admission: AdmissionController | None = None,
    ) -> None:
        self.shard_service_ms = shard_service_ms
        self.config = config
        self._faults = active_injector(faults)
        self._obs = active_or_none(obs)
        self.admission = admission
        #: Shard legs actually submitted to a server (dispatches plus
        #: retries plus hedges; breaker short-circuits excluded) — the
        #: quantity a retry storm amplifies.
        self.legs_attempted = [0] * config.num_shards
        #: Per-shard breakers from the most recent :meth:`run` (``None``
        #: until a run with ``config.breaker`` set).
        self.breakers: list[CircuitBreaker] | None = None
        #: The live event queue of the current :meth:`run` — the
        #: simulated-time clock source for an injected admission
        #: controller (``lambda: cluster.events.now``).
        self.events: EventQueue | None = None
        #: Queries shed by admission control before any leg dispatched.
        self.shed_queries = 0
        #: Queries force-completed at the deadline with a partial gather.
        self.deadline_completions = 0
        if self._obs is not None:
            self._obs.counter(
                "partial_results",
                help="Queries answered by fewer than all shards",
            )
            self._obs.counter(
                "scatter.retries", help="Shard legs re-dispatched"
            )
            self._obs.counter(
                "scatter.shard_timeouts", help="Shard legs that timed out"
            )
            self._obs.counter(
                "scatter.shard_failures",
                help="Shard legs given up after retries/timeout",
            )
            self._obs.counter(
                "scatter.failed_queries",
                help="Queries with too few shard answers to complete",
            )
            self._obs.counter(
                "scatter.shed_queries",
                help="Arrivals shed by admission control",
            )
            self._obs.counter(
                "scatter.deadline_completions",
                help="Queries force-completed partial at the deadline",
            )
            self._obs.counter(
                "resilience.retries_suppressed",
                help="Retries skipped because the budget could not cover them",
            )
            self._obs.counter(
                "resilience.hedges", help="Hedge legs dispatched"
            )

    def _count(self, name: str, amount: int = 1) -> None:
        if self._obs is not None:
            self._obs.counter(name).inc(amount)

    def run(self, queries: Sequence[Query], arrival_rate_qps: float) -> RunMetrics:
        if arrival_rate_qps <= 0:
            raise ValueError("arrival rate must be positive")
        if not queries:
            raise ValueError("need at least one query")
        config = self.config
        events = EventQueue()
        self.events = events
        network = NetworkModel(
            config.network_base_ms, config.network_jitter_ms, seed=config.seed
        )
        rng = random.Random(config.seed + 1)
        servers = [
            Server(
                events,
                cores=config.cores_per_server,
                name=f"shard{i}",
                faults=self._faults,
            )
            for i in range(config.num_shards)
        ]
        latencies: list[float] = []
        finish_times: list[float] = []
        duration = config.duration_ms
        mean_gap_ms = 1000.0 / arrival_rate_qps
        min_required = (
            config.min_shards if config.min_shards is not None else 1
        )
        breakers: list[CircuitBreaker] | None = None
        if config.breaker is not None:
            # Simulated-time breakers: reset windows advance with the
            # event clock, so runs are deterministic for a given seed.
            breakers = [
                CircuitBreaker(
                    config=config.breaker,
                    clock=lambda: events.now,
                    obs=self._obs,
                    name=f"shard{i}",
                )
                for i in range(config.num_shards)
            ]
        self.breakers = breakers

        def arrival(query_index: int, arrival_time: float) -> None:
            query = queries[query_index % len(queries)]
            start = events.now
            state = {"ok": 0, "failed": 0, "done": 0}
            settled = [False] * config.num_shards
            query_deadline = (
                start + config.deadline_ms
                if config.deadline_ms is not None
                else None
            )

            def schedule_next_arrival() -> None:
                next_time = arrival_time + rng.expovariate(1.0 / mean_gap_ms)
                if next_time < duration:
                    events.schedule_at(
                        next_time, lambda: arrival(query_index + 1, next_time)
                    )

            if self.admission is not None:
                depth = sum(server.load for server in servers)
                decision = self.admission.try_admit(
                    Priority.NORMAL, queue_depth=depth
                )
                if not decision.admitted:
                    self.shed_queries += 1
                    self._count("scatter.shed_queries")
                    schedule_next_arrival()
                    return

            def complete() -> None:
                if state["done"]:
                    return
                state["done"] = 1
                latencies.append(events.now - start)
                finish_times.append(events.now)

            def gather() -> None:
                if state["done"]:
                    return
                if state["failed"] == 0:
                    events.schedule(network.delay_ms(), complete)
                elif config.allow_partial and state["ok"] >= min_required:
                    self._count("partial_results")
                    events.schedule(network.delay_ms(), complete)
                else:
                    state["done"] = 1
                    self._count("scatter.failed_queries")

            def settle(shard: int, success: bool) -> None:
                if settled[shard]:
                    return
                settled[shard] = True
                state["ok" if success else "failed"] += 1
                if not success:
                    self._count("scatter.shard_failures")
                if state["ok"] + state["failed"] == config.num_shards:
                    gather()

            def dispatch(shard: int, attempt: int) -> None:
                if breakers is not None and not breakers[shard].allow():
                    # Short-circuit locally: the shard is known bad, the
                    # leg is never dispatched (no network, no queueing) —
                    # this is what bounds a retry storm.
                    settle(shard, False)
                    return

                def submit() -> None:
                    if settled[shard] or state["done"]:
                        return  # the leg's deadline already expired
                    service = self.shard_service_ms(shard, query)
                    self.legs_attempted[shard] += 1
                    servers[shard].submit(
                        service,
                        on_done=lambda: on_leg_done(shard),
                        on_fail=lambda: leg_failed(shard, attempt),
                    )

                events.schedule(network.delay_ms(), submit)

            def on_leg_done(shard: int) -> None:
                if breakers is not None:
                    breakers[shard].record_success()
                settle(shard, True)

            def leg_failed(shard: int, attempt: int) -> None:
                if breakers is not None:
                    breakers[shard].record_failure()
                if settled[shard] or state["done"]:
                    return
                if attempt < config.max_retries:
                    backoff = config.retry_backoff_ms * (2**attempt)
                    if (
                        query_deadline is not None
                        and events.now + backoff >= query_deadline
                    ):
                        # The budget cannot cover the retry: give the leg
                        # up instead of dispatching work whose answer
                        # would arrive after the query is over.
                        self._count("resilience.retries_suppressed")
                        settle(shard, False)
                        return
                    self._count("scatter.retries")
                    events.schedule(
                        backoff, lambda: dispatch(shard, attempt + 1)
                    )
                else:
                    settle(shard, False)

            def expire(shard: int) -> None:
                if not settled[shard] and not state["done"]:
                    if breakers is not None:
                        breakers[shard].record_failure()
                    self._count("scatter.shard_timeouts")
                    settle(shard, False)

            def force_complete() -> None:
                # The query's budget is spent: answer with the shards
                # gathered so far — a counted partial — or fail if even
                # the partial-result floor is unmet.
                if state["done"]:
                    return
                if config.allow_partial and state["ok"] >= min_required:
                    self.deadline_completions += 1
                    self._count("scatter.deadline_completions")
                    self._count("partial_results")
                    complete()
                else:
                    state["done"] = 1
                    self._count("scatter.failed_queries")

            def hedge() -> None:
                if state["done"]:
                    return
                unsettled = [
                    i for i in range(config.num_shards) if not settled[i]
                ]
                if len(unsettled) != 1:
                    return
                straggler = unsettled[0]
                if breakers is not None and not breakers[straggler].allow():
                    return
                self._count("resilience.hedges")

                def submit_hedge() -> None:
                    if settled[straggler] or state["done"]:
                        return
                    service = self.shard_service_ms(straggler, query)
                    self.legs_attempted[straggler] += 1
                    # A failed hedge is simply ignored: it exists to race
                    # the straggler, never to settle the leg as failed
                    # while the original is still in flight.
                    servers[straggler].submit(
                        service,
                        on_done=lambda: on_leg_done(straggler),
                        on_fail=None,
                    )

                events.schedule(network.delay_ms(), submit_hedge)

            shard_budget = config.shard_timeout_ms
            if query_deadline is not None and shard_budget is not None:
                # Per-shard timeouts never exceed the remaining budget.
                shard_budget = min(shard_budget, config.deadline_ms or 0.0)
            for i in range(config.num_shards):
                dispatch(i, attempt=0)
                if shard_budget is not None:
                    events.schedule(
                        shard_budget,
                        lambda shard=i: expire(shard),
                    )
            if config.deadline_ms is not None:
                events.schedule(config.deadline_ms, force_complete)
            if config.hedge_ms is not None:
                events.schedule(config.hedge_ms, hedge)

            schedule_next_arrival()

        events.schedule_at(0.0, lambda: arrival(0, 0.0))
        events.run(until=duration * 2)
        utilization = sum(
            server.utilization(duration) for server in servers
        ) / len(servers)
        return RunMetrics(
            latencies_ms=tuple(latencies),
            duration_ms=duration,
            cpu_utilization=utilization,
            offered_rps=arrival_rate_qps,
            completed_in_window=sum(1 for t in finish_times if t <= duration),
        )


def uniform_shard_service(
    total_service_ms: Callable[[Query], float], num_shards: int
) -> Callable[[int, Query], float]:
    """Each shard does 1/N of the query's total retrieval work (hash-
    partitioned corpora split candidate volume roughly evenly)."""

    def service(_shard: int, query: Query) -> float:
        return max(0.001, total_service_ms(query) / num_shards)

    return service


def measured_shard_service(
    shards: Sequence[object],
) -> Callable[[int, Query], float]:
    """Service-time callable backed by *live* shard indexes.

    Instead of an analytic cost model, time each shard's actual
    ``query()`` call (e.g. a :class:`~repro.segment.SegmentedIndex` per
    shard) and feed the measured milliseconds into the simulator, so
    scatter-gather tail behaviour reflects the real packed serving path.
    """

    def service(shard: int, query: Query) -> float:
        start = time.perf_counter()
        shards[shard].query(query)  # type: ignore[attr-defined]
        return max(0.001, (time.perf_counter() - start) * 1000.0)

    return service
