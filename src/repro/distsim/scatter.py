"""Scatter-gather simulation for sharded deployments (Section VII-B's
"split the data across servers" scenario).

Each shard runs on its own multi-core server.  A query is broadcast to all
shards (paying network latency per leg), each shard does its share of the
retrieval work, and the response completes when the **slowest** shard has
answered — the straggler effect that makes wide fan-outs latency-fragile
even as they divide CPU work.

Per-shard service times come from the same cost-model tables as the
two-tier cluster, scaled by each shard's share of the work.
"""

from __future__ import annotations

import random
from collections.abc import Callable, Sequence
from dataclasses import dataclass

from repro.core.queries import Query
from repro.distsim.events import EventQueue
from repro.distsim.metrics import RunMetrics
from repro.distsim.network import NetworkModel
from repro.distsim.server import Server


@dataclass(frozen=True, slots=True)
class ScatterConfig:
    num_shards: int = 4
    cores_per_server: int = 4
    duration_ms: float = 5_000.0
    network_base_ms: float = 0.5
    network_jitter_ms: float = 0.3
    seed: int = 0


class ScatterGatherCluster:
    """N shard servers answering every query in parallel."""

    def __init__(
        self,
        shard_service_ms: Callable[[int, Query], float],
        config: ScatterConfig = ScatterConfig(),
    ) -> None:
        if config.num_shards < 1:
            raise ValueError("need at least one shard")
        self.shard_service_ms = shard_service_ms
        self.config = config

    def run(self, queries: Sequence[Query], arrival_rate_qps: float) -> RunMetrics:
        if arrival_rate_qps <= 0:
            raise ValueError("arrival rate must be positive")
        if not queries:
            raise ValueError("need at least one query")
        config = self.config
        events = EventQueue()
        network = NetworkModel(
            config.network_base_ms, config.network_jitter_ms, seed=config.seed
        )
        rng = random.Random(config.seed + 1)
        servers = [
            Server(events, cores=config.cores_per_server, name=f"shard{i}")
            for i in range(config.num_shards)
        ]
        latencies: list[float] = []
        finish_times: list[float] = []
        duration = config.duration_ms
        mean_gap_ms = 1000.0 / arrival_rate_qps

        def arrival(query_index: int, arrival_time: float) -> None:
            query = queries[query_index % len(queries)]
            start = events.now
            pending = {"count": config.num_shards}

            def shard_done() -> None:
                pending["count"] -= 1
                if pending["count"] == 0:
                    events.schedule(network.delay_ms(), complete)

            def complete() -> None:
                latencies.append(events.now - start)
                finish_times.append(events.now)

            for i, server in enumerate(servers):
                service = self.shard_service_ms(i, query)

                def submit(s=server, svc=service) -> None:
                    s.submit(svc, shard_done)

                events.schedule(network.delay_ms(), submit)

            next_time = arrival_time + rng.expovariate(1.0 / mean_gap_ms)
            if next_time < duration:
                events.schedule_at(
                    next_time, lambda: arrival(query_index + 1, next_time)
                )

        events.schedule_at(0.0, lambda: arrival(0, 0.0))
        events.run(until=duration * 2)
        utilization = sum(
            server.utilization(duration) for server in servers
        ) / len(servers)
        return RunMetrics(
            latencies_ms=tuple(latencies),
            duration_ms=duration,
            cpu_utilization=utilization,
            offered_rps=arrival_rate_qps,
            completed_in_window=sum(1 for t in finish_times if t <= duration),
        )


def uniform_shard_service(
    total_service_ms: Callable[[Query], float], num_shards: int
) -> Callable[[int, Query], float]:
    """Each shard does 1/N of the query's total retrieval work (hash-
    partitioned corpora split candidate volume roughly evenly)."""

    def service(_shard: int, query: Query) -> float:
        return max(0.001, total_service_ms(query) / num_shards)

    return service
