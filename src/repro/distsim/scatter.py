"""Scatter-gather simulation for sharded deployments (Section VII-B's
"split the data across servers" scenario).

Each shard runs on its own multi-core server.  A query is broadcast to all
shards (paying network latency per leg), each shard does its share of the
retrieval work, and the response completes when the **slowest** shard has
answered — the straggler effect that makes wide fan-outs latency-fragile
even as they divide CPU work.

Wide fan-outs are also *failure*-fragile: one dropped RPC stalls the whole
query.  The cluster therefore supports the standard production defences,
off by default so the base simulation is unchanged:

* **bounded retry with exponential backoff** (``max_retries``,
  ``retry_backoff_ms``) against transient per-shard failures (injected
  through the ``server.<shard>`` fault point of
  :class:`~repro.distsim.server.Server`);
* a **per-shard timeout** (``shard_timeout_ms``) measured from dispatch,
  covering network, queueing, service, and every retry of that leg;
* **graceful partial results** (``allow_partial``/``min_shards``): when
  some shards fail outright, the gather completes with the shards that
  answered instead of failing the query — the degradation every serving
  stack prefers over an empty ad slate.

Outcomes are reported through :mod:`repro.obs` counters:
``partial_results``, ``scatter.retries``, ``scatter.shard_timeouts``,
``scatter.shard_failures``, ``scatter.failed_queries``.

Per-shard service times come from the same cost-model tables as the
two-tier cluster, scaled by each shard's share of the work.
"""

from __future__ import annotations

import random
import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass

from repro.core.queries import Query
from repro.distsim.events import EventQueue
from repro.distsim.metrics import RunMetrics
from repro.distsim.network import NetworkModel
from repro.distsim.server import Server
from repro.faults.injector import FaultInjector, active_injector
from repro.obs.registry import MetricsRegistry, active_or_none


@dataclass(frozen=True, slots=True)
class ScatterConfig:
    num_shards: int = 4
    cores_per_server: int = 4
    duration_ms: float = 5_000.0
    network_base_ms: float = 0.5
    network_jitter_ms: float = 0.3
    seed: int = 0
    #: Per-shard deadline from dispatch (covers retries); None = no timeout.
    shard_timeout_ms: float | None = None
    #: Re-dispatches after a failed leg before the leg is given up.
    max_retries: int = 0
    #: First backoff delay; doubles per retry (bounded exponential).
    retry_backoff_ms: float = 1.0
    #: Complete queries with the shards that answered instead of failing.
    allow_partial: bool = False
    #: Minimum successful shards for a usable partial result (default 1).
    min_shards: int | None = None


class ScatterGatherCluster:
    """N shard servers answering every query in parallel."""

    def __init__(
        self,
        shard_service_ms: Callable[[int, Query], float],
        config: ScatterConfig = ScatterConfig(),
        obs: MetricsRegistry | None = None,
        faults: FaultInjector | None = None,
    ) -> None:
        if config.num_shards < 1:
            raise ValueError("need at least one shard")
        if config.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if config.retry_backoff_ms < 0:
            raise ValueError("retry_backoff_ms must be >= 0")
        if config.min_shards is not None and not (
            1 <= config.min_shards <= config.num_shards
        ):
            raise ValueError("min_shards must be in [1, num_shards]")
        self.shard_service_ms = shard_service_ms
        self.config = config
        self._faults = active_injector(faults)
        self._obs = active_or_none(obs)
        if self._obs is not None:
            self._obs.counter(
                "partial_results",
                help="Queries answered by fewer than all shards",
            )
            self._obs.counter(
                "scatter.retries", help="Shard legs re-dispatched"
            )
            self._obs.counter(
                "scatter.shard_timeouts", help="Shard legs that timed out"
            )
            self._obs.counter(
                "scatter.shard_failures",
                help="Shard legs given up after retries/timeout",
            )
            self._obs.counter(
                "scatter.failed_queries",
                help="Queries with too few shard answers to complete",
            )

    def _count(self, name: str, amount: int = 1) -> None:
        if self._obs is not None:
            self._obs.counter(name).inc(amount)

    def run(self, queries: Sequence[Query], arrival_rate_qps: float) -> RunMetrics:
        if arrival_rate_qps <= 0:
            raise ValueError("arrival rate must be positive")
        if not queries:
            raise ValueError("need at least one query")
        config = self.config
        events = EventQueue()
        network = NetworkModel(
            config.network_base_ms, config.network_jitter_ms, seed=config.seed
        )
        rng = random.Random(config.seed + 1)
        servers = [
            Server(
                events,
                cores=config.cores_per_server,
                name=f"shard{i}",
                faults=self._faults,
            )
            for i in range(config.num_shards)
        ]
        latencies: list[float] = []
        finish_times: list[float] = []
        duration = config.duration_ms
        mean_gap_ms = 1000.0 / arrival_rate_qps
        min_required = (
            config.min_shards if config.min_shards is not None else 1
        )

        def arrival(query_index: int, arrival_time: float) -> None:
            query = queries[query_index % len(queries)]
            start = events.now
            state = {"ok": 0, "failed": 0}
            settled = [False] * config.num_shards

            def complete() -> None:
                latencies.append(events.now - start)
                finish_times.append(events.now)

            def gather() -> None:
                if state["failed"] == 0:
                    events.schedule(network.delay_ms(), complete)
                elif config.allow_partial and state["ok"] >= min_required:
                    self._count("partial_results")
                    events.schedule(network.delay_ms(), complete)
                else:
                    self._count("scatter.failed_queries")

            def settle(shard: int, success: bool) -> None:
                if settled[shard]:
                    return
                settled[shard] = True
                state["ok" if success else "failed"] += 1
                if not success:
                    self._count("scatter.shard_failures")
                if state["ok"] + state["failed"] == config.num_shards:
                    gather()

            def dispatch(shard: int, attempt: int) -> None:
                def submit() -> None:
                    if settled[shard]:
                        return  # the leg's deadline already expired
                    service = self.shard_service_ms(shard, query)
                    servers[shard].submit(
                        service,
                        on_done=lambda: settle(shard, True),
                        on_fail=lambda: leg_failed(shard, attempt),
                    )

                events.schedule(network.delay_ms(), submit)

            def leg_failed(shard: int, attempt: int) -> None:
                if settled[shard]:
                    return
                if attempt < config.max_retries:
                    self._count("scatter.retries")
                    backoff = config.retry_backoff_ms * (2**attempt)
                    events.schedule(
                        backoff, lambda: dispatch(shard, attempt + 1)
                    )
                else:
                    settle(shard, False)

            def expire(shard: int) -> None:
                if not settled[shard]:
                    self._count("scatter.shard_timeouts")
                    settle(shard, False)

            for i in range(config.num_shards):
                dispatch(i, attempt=0)
                if config.shard_timeout_ms is not None:
                    events.schedule(
                        config.shard_timeout_ms,
                        lambda shard=i: expire(shard),
                    )

            next_time = arrival_time + rng.expovariate(1.0 / mean_gap_ms)
            if next_time < duration:
                events.schedule_at(
                    next_time, lambda: arrival(query_index + 1, next_time)
                )

        events.schedule_at(0.0, lambda: arrival(0, 0.0))
        events.run(until=duration * 2)
        utilization = sum(
            server.utilization(duration) for server in servers
        ) / len(servers)
        return RunMetrics(
            latencies_ms=tuple(latencies),
            duration_ms=duration,
            cpu_utilization=utilization,
            offered_rps=arrival_rate_qps,
            completed_in_window=sum(1 for t in finish_times if t <= duration),
        )


def uniform_shard_service(
    total_service_ms: Callable[[Query], float], num_shards: int
) -> Callable[[int, Query], float]:
    """Each shard does 1/N of the query's total retrieval work (hash-
    partitioned corpora split candidate volume roughly evenly)."""

    def service(_shard: int, query: Query) -> float:
        return max(0.001, total_service_ms(query) / num_shards)

    return service


def measured_shard_service(
    shards: Sequence[object],
) -> Callable[[int, Query], float]:
    """Service-time callable backed by *live* shard indexes.

    Instead of an analytic cost model, time each shard's actual
    ``query()`` call (e.g. a :class:`~repro.segment.SegmentedIndex` per
    shard) and feed the measured milliseconds into the simulator, so
    scatter-gather tail behaviour reflects the real packed serving path.
    """

    def service(shard: int, query: Query) -> float:
        start = time.perf_counter()
        shards[shard].query(query)  # type: ignore[attr-defined]
        return max(0.001, (time.perf_counter() - start) * 1000.0)

    return service
