"""A multi-core FCFS server for the discrete-event simulation.

Models one machine of the paper's testbed (the experiments ran on a 4-CPU
Xeon): ``cores`` parallel executors fed from a single FCFS queue.  Tracks
cumulative busy time so CPU utilization — one of the headline metrics of
Section VII-B (98% → 42%) — can be reported.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable

from repro.distsim.events import EventQueue


class Server:
    """FCFS multi-core server attached to an :class:`EventQueue`."""

    def __init__(self, events: EventQueue, cores: int = 4, name: str = "") -> None:
        if cores < 1:
            raise ValueError("cores must be >= 1")
        self.events = events
        self.cores = cores
        self.name = name
        self._queue: deque[tuple[float, Callable[[], None]]] = deque()
        self._busy_cores = 0
        self.busy_core_time_ms = 0.0
        self._last_change = 0.0
        self.jobs_done = 0

    def submit(self, service_ms: float, on_done: Callable[[], None]) -> None:
        """Enqueue a job needing ``service_ms`` of CPU; ``on_done`` fires
        when it completes."""
        if service_ms < 0:
            raise ValueError("service time must be non-negative")
        self._queue.append((service_ms, on_done))
        self._try_start()

    def _try_start(self) -> None:
        while self._queue and self._busy_cores < self.cores:
            service_ms, on_done = self._queue.popleft()
            self._account()
            self._busy_cores += 1

            def finish(done: Callable[[], None] = on_done) -> None:
                self._account()
                self._busy_cores -= 1
                self.jobs_done += 1
                done()
                self._try_start()

            self.events.schedule(service_ms, finish)

    def _account(self) -> None:
        now = self.events.now
        self.busy_core_time_ms += self._busy_cores * (now - self._last_change)
        self._last_change = now

    def utilization(self, total_time_ms: float) -> float:
        """Mean fraction of cores busy over ``total_time_ms``."""
        if total_time_ms <= 0:
            return 0.0
        self._account()
        return min(1.0, self.busy_core_time_ms / (self.cores * total_time_ms))

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    @property
    def load(self) -> int:
        """Jobs in the system: queued plus in service (what a
        join-shortest-queue router must compare, not queue length alone)."""
        return len(self._queue) + self._busy_cores
