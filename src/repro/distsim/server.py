"""A multi-core FCFS server for the discrete-event simulation.

Models one machine of the paper's testbed (the experiments ran on a 4-CPU
Xeon): ``cores`` parallel executors fed from a single FCFS queue.  Tracks
cumulative busy time so CPU utilization — one of the headline metrics of
Section VII-B (98% → 42%) — can be reported.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable

from repro.distsim.events import EventQueue
from repro.faults.injector import FaultInjector, active_injector


class Server:
    """FCFS multi-core server attached to an :class:`EventQueue`.

    With a :class:`~repro.faults.FaultInjector` attached, each submitted
    job visits the ``server.<name>`` fault point: an armed fault drops
    the job (the write/RPC never reaches the machine — a crashed or
    partitioned server), firing ``on_fail`` if the caller supplied one
    so retry/timeout layers above can react.
    """

    def __init__(
        self,
        events: EventQueue,
        cores: int = 4,
        name: str = "",
        faults: FaultInjector | None = None,
    ) -> None:
        if cores < 1:
            raise ValueError("cores must be >= 1")
        self.events = events
        self.cores = cores
        self.name = name
        self._faults = active_injector(faults)
        self._queue: deque[tuple[float, Callable[[], None]]] = deque()
        self._busy_cores = 0
        self.busy_core_time_ms = 0.0
        self._last_change = 0.0
        self.jobs_done = 0
        self.jobs_failed = 0

    def submit(
        self,
        service_ms: float,
        on_done: Callable[[], None],
        on_fail: Callable[[], None] | None = None,
    ) -> None:
        """Enqueue a job needing ``service_ms`` of CPU; ``on_done`` fires
        when it completes.  An injected fault drops the job instead,
        firing ``on_fail`` (when given) on the next event tick."""
        if service_ms < 0:
            raise ValueError("service time must be non-negative")
        if self._faults.should_fail(f"server.{self.name}"):
            self.jobs_failed += 1
            if on_fail is not None:
                self.events.schedule(0.0, on_fail)
            return
        self._queue.append((service_ms, on_done))
        self._try_start()

    def _try_start(self) -> None:
        while self._queue and self._busy_cores < self.cores:
            service_ms, on_done = self._queue.popleft()
            self._account()
            self._busy_cores += 1

            def finish(done: Callable[[], None] = on_done) -> None:
                self._account()
                self._busy_cores -= 1
                self.jobs_done += 1
                done()
                self._try_start()

            self.events.schedule(service_ms, finish)

    def _account(self) -> None:
        now = self.events.now
        self.busy_core_time_ms += self._busy_cores * (now - self._last_change)
        self._last_change = now

    def utilization(self, total_time_ms: float) -> float:
        """Mean fraction of cores busy over ``total_time_ms``."""
        if total_time_ms <= 0:
            return 0.0
        self._account()
        return min(1.0, self.busy_core_time_ms / (self.cores * total_time_ms))

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    @property
    def load(self) -> int:
        """Jobs in the system: queued plus in service (what a
        join-shortest-queue router must compare, not queue length alone)."""
        return len(self._queue) + self._busy_cores
