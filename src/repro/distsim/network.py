"""Network latency model for the multi-server experiment (Section VII-B).

When the index and the ad data live on different servers, every query pays
network latency on each hop; the paper notes this latency — not main
memory — becomes the bottleneck, yet its approach still more than doubled
throughput because per-query CPU work dropped.  We model one-way latency
as a base propagation delay plus exponential jitter (a standard LAN model),
seeded for reproducibility.
"""

from __future__ import annotations

import random


class NetworkModel:
    """One-way network delay: ``base_ms + Exp(jitter_ms)``."""

    def __init__(
        self, base_ms: float = 0.5, jitter_ms: float = 0.3, seed: int = 0
    ) -> None:
        if base_ms < 0 or jitter_ms < 0:
            raise ValueError("latencies must be non-negative")
        self.base_ms = base_ms
        self.jitter_ms = jitter_ms
        self._rng = random.Random(seed)

    def delay_ms(self) -> float:
        if self.jitter_ms == 0:
            return self.base_ms
        return self.base_ms + self._rng.expovariate(1.0 / self.jitter_ms)
