"""Replicated shards: load balancing and failure tolerance.

Production serving never runs one copy of a shard: each shard has R
replicas behind a router.  This module extends the scatter-gather
simulation with per-shard replica groups, two routing policies, and
failure injection:

* ``random`` routing — pick a replica uniformly;
* ``least_loaded`` routing — pick the replica with the shortest queue
  (power-of-all-choices; with R small this is the standard approximation
  of join-shortest-queue);
* failed replicas are skipped by the router; a query only fails when every
  replica of some shard is down, making availability measurable.

Failures can be declared statically (``failed_replicas``) or injected
dynamically through a :class:`~repro.faults.FaultInjector`: the
``replica.s<shard>r<replica>.boot`` point downs a replica at bring-up,
and the per-server ``server.s<shard>r<replica>`` point (see
:class:`~repro.distsim.server.Server`) drops an in-flight shard write,
failing that query.  With a :mod:`repro.obs` registry attached the run
reports ``replication.queries`` and ``replication.failed_queries``.
"""

from __future__ import annotations

import random
from collections.abc import Callable, Sequence
from dataclasses import dataclass

from repro.core.queries import Query
from repro.distsim.events import EventQueue
from repro.distsim.metrics import RunMetrics
from repro.distsim.network import NetworkModel
from repro.distsim.server import Server
from repro.faults.injector import FaultInjector, active_injector
from repro.obs.registry import MetricsRegistry, active_or_none


@dataclass(frozen=True, slots=True)
class ReplicationConfig:
    num_shards: int = 4
    replicas_per_shard: int = 2
    cores_per_server: int = 4
    duration_ms: float = 5_000.0
    network_base_ms: float = 0.5
    network_jitter_ms: float = 0.3
    routing: str = "least_loaded"  # or "random"
    seed: int = 0


@dataclass(frozen=True, slots=True)
class ReplicatedRunResult:
    metrics: RunMetrics
    failed_queries: int

    @property
    def availability(self) -> float:
        total = self.metrics.completed + self.failed_queries
        if total == 0:
            return 1.0
        return self.metrics.completed / total


class ReplicatedCluster:
    """Scatter-gather over shard replica groups."""

    def __init__(
        self,
        shard_service_ms: Callable[[int, Query], float],
        config: ReplicationConfig = ReplicationConfig(),
        failed_replicas: set[tuple[int, int]] | None = None,
        obs: MetricsRegistry | None = None,
        faults: FaultInjector | None = None,
    ) -> None:
        if config.num_shards < 1 or config.replicas_per_shard < 1:
            raise ValueError("need at least one shard and one replica")
        if config.routing not in ("random", "least_loaded"):
            raise ValueError("routing must be 'random' or 'least_loaded'")
        self.shard_service_ms = shard_service_ms
        self.config = config
        #: (shard, replica) pairs that are down.
        self.failed_replicas = failed_replicas or set()
        self._faults = active_injector(faults)
        self._obs = active_or_none(obs)
        if self._obs is not None:
            self._obs.counter(
                "replication.queries", help="Queries offered to the cluster"
            )
            self._obs.counter(
                "replication.failed_queries",
                help="Queries lost to replica failures",
            )

    def run(
        self, queries: Sequence[Query], arrival_rate_qps: float
    ) -> ReplicatedRunResult:
        if arrival_rate_qps <= 0:
            raise ValueError("arrival rate must be positive")
        if not queries:
            raise ValueError("need at least one query")
        config = self.config
        events = EventQueue()
        network = NetworkModel(
            config.network_base_ms, config.network_jitter_ms, seed=config.seed
        )
        rng = random.Random(config.seed + 1)
        replicas: list[list[Server | None]] = []
        for shard in range(config.num_shards):
            group: list[Server | None] = []
            for replica in range(config.replicas_per_shard):
                down = (shard, replica) in self.failed_replicas
                if not down:
                    down = self._faults.should_fail(
                        f"replica.s{shard}r{replica}.boot"
                    )
                if down:
                    group.append(None)
                else:
                    group.append(
                        Server(
                            events,
                            cores=config.cores_per_server,
                            name=f"s{shard}r{replica}",
                            faults=self._faults,
                        )
                    )
            replicas.append(group)

        latencies: list[float] = []
        finish_times: list[float] = []
        failed = 0
        duration = config.duration_ms
        mean_gap_ms = 1000.0 / arrival_rate_qps

        def route(shard: int) -> Server | None:
            alive = [s for s in replicas[shard] if s is not None]
            if not alive:
                return None
            if config.routing == "random":
                return rng.choice(alive)
            # Join-shortest-queue over jobs in system; random tie-break so
            # idle replicas share bursts instead of piling on the first.
            least = min(s.load for s in alive)
            return rng.choice([s for s in alive if s.load == least])

        def record_failure() -> None:
            nonlocal failed
            failed += 1
            if self._obs is not None:
                self._obs.counter("replication.failed_queries").inc()

        def arrival(query_index: int, arrival_time: float) -> None:
            query = queries[query_index % len(queries)]
            start = events.now
            if self._obs is not None:
                self._obs.counter("replication.queries").inc()
            targets = [route(shard) for shard in range(config.num_shards)]
            next_time = arrival_time + rng.expovariate(1.0 / mean_gap_ms)
            if next_time < duration:
                events.schedule_at(
                    next_time, lambda: arrival(query_index + 1, next_time)
                )
            if any(target is None for target in targets):
                record_failure()  # some shard entirely down: unanswerable
                return
            pending = {"count": config.num_shards, "lost": False}

            def shard_done() -> None:
                pending["count"] -= 1
                if pending["count"] == 0 and not pending["lost"]:
                    events.schedule(network.delay_ms(), complete)

            def shard_lost() -> None:
                # An injected in-flight drop: the query can never gather
                # every shard answer, so it fails exactly once.
                if not pending["lost"]:
                    pending["lost"] = True
                    record_failure()

            def complete() -> None:
                latencies.append(events.now - start)
                finish_times.append(events.now)

            for shard, server in enumerate(targets):
                service = self.shard_service_ms(shard, query)

                def submit(s=server, svc=service) -> None:
                    s.submit(svc, shard_done, on_fail=shard_lost)

                events.schedule(network.delay_ms(), submit)

        events.schedule_at(0.0, lambda: arrival(0, 0.0))
        events.run(until=duration * 2)
        alive_servers = [
            server for group in replicas for server in group if server is not None
        ]
        utilization = (
            sum(s.utilization(duration) for s in alive_servers)
            / len(alive_servers)
            if alive_servers
            else 0.0
        )
        metrics = RunMetrics(
            latencies_ms=tuple(latencies),
            duration_ms=duration,
            cpu_utilization=utilization,
            offered_rps=arrival_rate_qps,
            completed_in_window=sum(1 for t in finish_times if t <= duration),
        )
        return ReplicatedRunResult(metrics=metrics, failed_queries=failed)
