"""Latency / throughput metrics for the multi-server experiment.

Fig 9 of the paper plots the distribution of query response latency in
5 ms buckets; the accompanying text reports the fraction of requests
answered within 10 ms (75% vs 32%) and requests per second (5775 vs 2274).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.obs.registry import Histogram, uniform_histogram

BUCKET_MS = 5.0


@dataclass(frozen=True, slots=True)
class RunMetrics:
    """Outcome of one simulated run."""

    latencies_ms: tuple[float, ...]
    duration_ms: float
    cpu_utilization: float
    offered_rps: float
    #: Queries that *finished* within the arrival window.  Completions from
    #: the post-arrival drain window do not count toward throughput — a
    #: saturated server would otherwise appear to keep up with any offered
    #: load.
    completed_in_window: int = 0

    @property
    def completed(self) -> int:
        return len(self.latencies_ms)

    @property
    def achieved_rps(self) -> float:
        if self.duration_ms <= 0:
            return 0.0
        return self.completed_in_window / (self.duration_ms / 1000.0)

    def to_histogram(self, bucket_ms: float = BUCKET_MS) -> Histogram:
        """The latencies as a shared :class:`repro.obs.registry.Histogram`
        with uniform left-closed ``bucket_ms`` buckets — the same
        instrument every other layer of the stack records into, so the
        simulated-cluster latency distribution and, e.g., the ad server's
        span timings expose identical percentile semantics."""
        return uniform_histogram(
            self.latencies_ms, bucket_ms, name="distsim.latency_ms"
        )

    def latency_histogram(self, bucket_ms: float = BUCKET_MS) -> dict[float, float]:
        """Fraction of queries per latency bucket (bucket start -> frac)."""
        if not self.latencies_ms:
            return {}
        return self.to_histogram(bucket_ms).bucket_fractions()

    def fraction_within(self, threshold_ms: float) -> float:
        """Fraction of requests completed within ``threshold_ms``."""
        if not self.latencies_ms:
            return 0.0
        within = sum(1 for latency in self.latencies_ms if latency <= threshold_ms)
        return within / len(self.latencies_ms)

    def mean_latency_ms(self) -> float:
        if not self.latencies_ms:
            return 0.0
        return sum(self.latencies_ms) / len(self.latencies_ms)

    def percentile_ms(self, p: float) -> float:
        if not 0 < p <= 100:
            raise ValueError("percentile in (0, 100]")
        if not self.latencies_ms:
            return 0.0
        ordered = sorted(self.latencies_ms)
        index = min(len(ordered) - 1, int(len(ordered) * p / 100))
        return ordered[index]


def smooth_histogram(
    histogram: dict[float, float], window: int = 3
) -> dict[float, float]:
    """Moving-average smoothing, as the paper applies to Fig 9's curves."""
    if not histogram:
        return {}
    buckets: Sequence[float] = sorted(histogram)
    values = [histogram[b] for b in buckets]
    half = window // 2
    smoothed = {}
    for i, bucket in enumerate(buckets):
        lo = max(0, i - half)
        hi = min(len(values), i + half + 1)
        smoothed[bucket] = sum(values[lo:hi]) / (hi - lo)
    return smoothed
