"""Minimal discrete-event simulation core (heap-ordered event queue)."""

from __future__ import annotations

import heapq
from collections.abc import Callable
from dataclasses import dataclass, field


@dataclass(order=True)
class _Event:
    time: float
    seq: int
    action: Callable[[], None] = field(compare=False)


class EventQueue:
    """Time-ordered callbacks with deterministic tie-breaking."""

    def __init__(self) -> None:
        self._heap: list[_Event] = []
        self._seq = 0
        self.now = 0.0

    def schedule(self, delay: float, action: Callable[[], None]) -> None:
        """Run ``action`` ``delay`` time units from the current time."""
        if delay < 0:
            raise ValueError("cannot schedule in the past")
        heapq.heappush(self._heap, _Event(self.now + delay, self._seq, action))
        self._seq += 1

    def schedule_at(self, time: float, action: Callable[[], None]) -> None:
        if time < self.now:
            raise ValueError("cannot schedule in the past")
        heapq.heappush(self._heap, _Event(time, self._seq, action))
        self._seq += 1

    def run(self, until: float | None = None) -> None:
        """Process events in time order, optionally stopping at ``until``."""
        while self._heap:
            if until is not None and self._heap[0].time > until:
                self.now = until
                return
            event = heapq.heappop(self._heap)
            self.now = event.time
            event.action()
        if until is not None:
            self.now = until

    def __len__(self) -> int:
        return len(self._heap)
