"""repro — reproduction of "A Data Structure for Sponsored Search" (ICDE 2009).

Public API highlights:

* :class:`repro.core.WordSetIndex` — the paper's hash-of-word-sets broad-match
  index, with data nodes, early termination, and re-mapping support.
* :mod:`repro.invindex` — the inverted-index baselines the paper compares
  against (non-redundant rarest-word, counting, fully redundant).
* :mod:`repro.optimize` — long-phrase re-mapping and the workload-driven
  weighted-set-cover mapping optimizer.
* :mod:`repro.compress` — front-coding, delta coding, and the rank/select
  compressed hash replacement of Section VI.
* :mod:`repro.cost` — the main-memory cost model and access accounting.
* :mod:`repro.obs` — zero-dependency metrics registry and trace spans wired
  through every :class:`repro.core.RetrievalIndex` implementation and the
  serving stack (off-by-default, Prometheus/JSON exposition).
* :mod:`repro.oplog` / :mod:`repro.faults` — crash-safe snapshot + op-log
  durability (WAL discipline, generation-stamped compaction) and the
  deterministic fault-injection harness that proves the recovery protocol.
* :mod:`repro.datagen` — synthetic corpus/workload generators calibrated to
  the paper's published distributions.
* :mod:`repro.experiments` — one module per paper table/figure.
"""

from repro.core import (
    AdCorpus,
    AdInfo,
    Advertisement,
    MatchType,
    Query,
    RetrievalIndex,
    ShardedWordSetIndex,
    TrieWordSetIndex,
    Workload,
    WordSetIndex,
    explain_broad_match,
)
from repro.cost import AccessTracker, CostModel
from repro.faults import FaultInjector, InjectedCrash
from repro.obs import MetricsRegistry, NullRegistry
from repro.oplog import DurableIndex
from repro.persist import load_index, save_index

__version__ = "1.0.0"

__all__ = [
    "AdCorpus",
    "AdInfo",
    "Advertisement",
    "AccessTracker",
    "CostModel",
    "DurableIndex",
    "FaultInjector",
    "InjectedCrash",
    "MatchType",
    "MetricsRegistry",
    "NullRegistry",
    "Query",
    "RetrievalIndex",
    "ShardedWordSetIndex",
    "TrieWordSetIndex",
    "Workload",
    "WordSetIndex",
    "__version__",
    "explain_broad_match",
    "load_index",
    "save_index",
]
