"""Trace-driven machine models: the library's substitute for VTune
hardware counters (Section VII-C of the paper).

* :class:`Tlb`, :class:`Cache`, :class:`BranchPredictor` — the machine;
* :class:`IndexLayout` — simulated addresses for a WordSetIndex;
* :func:`run_traced_workload` — replay queries, collect
  :class:`HardwareCounters`.
"""

from repro.memsim.branch import BranchPredictor
from repro.memsim.cache import Cache, CacheHierarchy
from repro.memsim.counters import HardwareCounters, run_traced_workload
from repro.memsim.inverted_layout import (
    InvertedLayout,
    run_traced_inverted_workload,
)
from repro.memsim.layout import IndexLayout, NodePlacement
from repro.memsim.tlb import Tlb

__all__ = [
    "BranchPredictor",
    "Cache",
    "CacheHierarchy",
    "HardwareCounters",
    "IndexLayout",
    "InvertedLayout",
    "NodePlacement",
    "Tlb",
    "run_traced_inverted_workload",
    "run_traced_workload",
]
