"""Simulated address-space layout and traced execution for the inverted
baseline.

Completes the Section VII-A comparison at the hardware level: the same
TLB/cache/branch models that replay the word-set index (``layout.py`` /
``counters.py``) replay the rarest-word inverted index here, so the
"inverted indexes process more data" claim can be observed as page walks
and cache misses rather than just byte counts.

Layout: a word-dictionary of open-addressed 16-byte buckets (hash of the
word -> posting-list pointer), posting lists packed back-to-back (8-byte ad
references, streamed sequentially), and an ad-record heap reached by one
random access per candidate (the phrase verification the non-redundant
strategy requires).
"""

from __future__ import annotations

from repro.core.queries import Query
from repro.core.wordhash import fnv1a
from repro.invindex.nonredundant import NonRedundantInvertedIndex
from repro.invindex.postings import POSTING_REF_BYTES
from repro.memsim.branch import BranchPredictor
from repro.memsim.cache import Cache, CacheHierarchy
from repro.memsim.counters import HardwareCounters, _Machine
from repro.memsim.layout import BUCKET_BYTES, MAX_LOAD_FACTOR, TABLE_BASE, _next_power_of_two
from repro.memsim.tlb import Tlb


class InvertedLayout:
    """Addresses for a NonRedundantInvertedIndex."""

    def __init__(self, index: NonRedundantInvertedIndex) -> None:
        self.index = index
        num_words = max(1, len(index.lists))
        self.num_slots = _next_power_of_two(
            max(2, int(num_words / MAX_LOAD_FACTOR) + 1)
        )
        self.table_base = TABLE_BASE
        self.table_bytes = self.num_slots * BUCKET_BYTES

        self.slot_of_word: dict[str, int] = {}
        self._slot_used = [False] * self.num_slots
        lists_base = (self.table_base + self.table_bytes + 4095) // 4096 * 4096
        position = lists_base
        self.list_address: dict[str, int] = {}
        self.list_bytes: dict[str, int] = {}
        #: ad id() -> record address in the ad heap.
        self.record_address: dict[int, int] = {}
        for word, plist in index.lists.items():
            slot = fnv1a(word) % self.num_slots
            while self._slot_used[slot]:
                slot = (slot + 1) % self.num_slots
            self._slot_used[slot] = True
            self.slot_of_word[word] = slot
            self.list_address[word] = position
            size = len(plist) * POSTING_REF_BYTES
            self.list_bytes[word] = size
            position += size
        heap_base = (position + 4095) // 4096 * 4096
        cursor = heap_base
        for plist in index.lists.values():
            for posting in plist:
                self.record_address[id(posting.ad)] = cursor
                cursor += posting.ad.size_bytes()
        self.total_bytes = cursor - self.table_base

    def bucket_address(self, slot: int) -> int:
        return self.table_base + slot * BUCKET_BYTES

    def probe_sequence(self, word: str) -> list[tuple[int, bool]]:
        home = fnv1a(word) % self.num_slots
        target = self.slot_of_word.get(word)
        probes: list[tuple[int, bool]] = []
        slot = home
        for _ in range(self.num_slots):
            if target is not None and slot == target:
                probes.append((slot, True))
                return probes
            if not self._slot_used[slot]:
                probes.append((slot, False))
                return probes
            probes.append((slot, False))
            slot = (slot + 1) % self.num_slots
        return probes


def run_traced_inverted_workload(
    layout: InvertedLayout,
    queries: list[Query],
    tlb: Tlb | None = None,
    cache: "Cache | CacheHierarchy | None" = None,
) -> HardwareCounters:
    """Replay broad-match queries against the inverted layout."""
    machine = _Machine(
        tlb=tlb if tlb is not None else Tlb(),
        cache=cache if cache is not None else Cache(),
        predictor=BranchPredictor(),
    )
    for query in queries:
        _trace_query(layout, query, machine)
    return HardwareCounters(
        memory_accesses=machine.memory_accesses,
        dtlb_misses=machine.tlb.misses,
        page_walk_cycles=machine.tlb.walk_cycles,
        l2_misses=machine.cache.misses,
        branch_predictions=machine.predictor.predictions,
        branch_mispredictions=machine.predictor.mispredictions,
        scan_branch_mispredictions=machine.scan_branch_mispredictions,
        l1_misses=getattr(machine.cache, "l1_misses", 0),
    )


def _trace_query(layout: InvertedLayout, query: Query, machine: _Machine) -> None:
    words = query.words
    for word in sorted(words):
        probes = layout.probe_sequence(word)
        last = len(probes) - 1
        for i, (slot, _target) in enumerate(probes):
            machine.read(layout.bucket_address(slot), BUCKET_BYTES)
            machine.predictor.branch(("inv_probe_end", i), i == last)
        if not probes[-1][1]:
            continue
        plist = layout.index.lists[word]
        address = layout.list_address[word]
        # Stream the posting list sequentially.
        machine.read(address, layout.list_bytes[word])
        for posting in plist:
            ad = posting.ad
            # Candidate fetch: random access into the ad-record heap,
            # then a per-word verification loop.
            machine.read(layout.record_address[id(ad)], ad.size_bytes())
            for token in sorted(ad.words):
                in_query = token in words
                machine.scan_branch(("inv_word_check", word), in_query)
                if not in_query:
                    break
            machine.scan_branch(("inv_match", word), ad.words <= words)
