"""Simulated address-space layout of a WordSetIndex.

To feed the TLB/cache/branch models we need concrete addresses.  The layout
mirrors what the paper's C implementation would do:

* the hash table is an open-addressed array of 16-byte buckets (8-byte
  stored signature + 8-byte node pointer), sized to a power of two at
  ~0.75 max load, placed at a fixed base;
* data nodes are allocated contiguously in a node heap following the
  table, each node = 4-byte header + its entries back to back.

Bucket placement uses the same ``wordhash`` as the index, so the probe
sequence (and hence which pages/lines are touched) is faithful to the
structure being modeled: a smaller table (fewer nodes after re-mapping)
concentrates probes on fewer pages — the locality effect Section VII-C
attributes the DTLB/L2 differences to.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.data_node import NODE_HEADER_BYTES, DataNode
from repro.core.wordset_index import WordSetIndex

BUCKET_BYTES = 16
TABLE_BASE = 1 << 20  # leave page 0 unused, like a real process image
#: Latency-critical serving tables run sparse so linear-probe runs stay
#: short (the paper's hash sizing example likewise charges a blow-up
#: factor for slack space).
MAX_LOAD_FACTOR = 0.25


def _next_power_of_two(n: int) -> int:
    power = 1
    while power < n:
        power <<= 1
    return power


@dataclass(frozen=True, slots=True)
class NodePlacement:
    """Where one data node lives in the simulated address space."""

    node: DataNode
    address: int
    #: Address of each entry, parallel to ``node.entries``.
    entry_addresses: tuple[int, ...]
    size: int


class IndexLayout:
    """Assign simulated addresses to a built WordSetIndex."""

    def __init__(self, index: WordSetIndex) -> None:
        self.index = index
        num_nodes = max(1, len(index.nodes))
        self.num_slots = _next_power_of_two(
            max(2, int(num_nodes / MAX_LOAD_FACTOR) + 1)
        )
        self.table_base = TABLE_BASE
        self.table_bytes = self.num_slots * BUCKET_BYTES
        heap_base = self.table_base + self.table_bytes
        # Align the node heap to a page boundary, as an allocator would.
        heap_base = (heap_base + 4095) // 4096 * 4096
        self.heap_base = heap_base

        # Open addressing: place each node's bucket by linear probing on
        # its locator hash.  Occupied slots recorded so traced queries
        # replay the same probe sequences.
        self.slot_of_key: dict[int, int] = {}
        self._slot_used = [False] * self.num_slots
        position = heap_base
        placements: dict[int, NodePlacement] = {}
        for key, node in index.nodes.items():
            slot = key % self.num_slots
            while self._slot_used[slot]:
                slot = (slot + 1) % self.num_slots
            self._slot_used[slot] = True
            self.slot_of_key[key] = slot
            entry_addresses = []
            cursor = position + NODE_HEADER_BYTES
            for entry in node.entries:
                entry_addresses.append(cursor)
                cursor += entry.size_bytes
            placements[key] = NodePlacement(
                node=node,
                address=position,
                entry_addresses=tuple(entry_addresses),
                size=cursor - position,
            )
            position = cursor
        self.placements = placements
        self.heap_bytes = position - heap_base

    def bucket_address(self, slot: int) -> int:
        return self.table_base + slot * BUCKET_BYTES

    def probe_sequence(self, key: int) -> list[tuple[int, bool]]:
        """Bucket probes (slot, hit) a lookup of ``key`` performs.

        Linear probing: scan from the home slot until the key's slot or an
        empty slot is found.  For absent keys this touches every occupied
        slot in the run — the open-addressing cost a real table pays.
        """
        home = key % self.num_slots
        target = self.slot_of_key.get(key)
        probes: list[tuple[int, bool]] = []
        slot = home
        for _ in range(self.num_slots):
            if target is not None and slot == target:
                probes.append((slot, True))
                return probes
            if not self._slot_used[slot]:
                probes.append((slot, False))
                return probes
            probes.append((slot, False))
            slot = (slot + 1) % self.num_slots
        return probes

    def total_bytes(self) -> int:
        return self.table_bytes + self.heap_bytes
