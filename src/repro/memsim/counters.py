"""Hardware-counter collection: the library's VTune substitute.

``run_traced_workload`` replays broad-match queries against an
:class:`~repro.memsim.layout.IndexLayout`, emitting every simulated memory
access and branch into the TLB, cache, and branch-predictor models, and
returns the counter set Section VII-C reports: DTLB misses, page-walk
cycles, L2 misses, branch mispredictions.

To mirror the paper's controlled comparison ("we ensure that in both cases
all subsets of the words in each query are looked up"), the replay always
enumerates **all bounded subsets** of each query regardless of how the
index was re-mapped — only the layout (table size, node placement, node
contents) differs between the compared structures.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.queries import Query
from repro.core.subset_enum import bounded_subsets
from repro.core.wordhash import wordhash
from repro.memsim.branch import BranchPredictor
from repro.memsim.cache import Cache, CacheHierarchy
from repro.memsim.layout import BUCKET_BYTES, IndexLayout
from repro.memsim.tlb import Tlb


@dataclass(frozen=True, slots=True)
class HardwareCounters:
    """The Section VII-C counter set."""

    memory_accesses: int
    dtlb_misses: int
    page_walk_cycles: int
    l2_misses: int
    branch_predictions: int
    branch_mispredictions: int
    #: L1 misses when a :class:`~repro.memsim.cache.CacheHierarchy` is
    #: used; 0 for a single-level cache.
    l1_misses: int = 0
    #: Mispredictions of the data-node scan-loop branches only (continue /
    #: word-check / match) — the branches whose behaviour re-mapping
    #: changes.  The total also contains hash-probe loop branches, whose
    #: mispredicts are an artifact of table occupancy.
    scan_branch_mispredictions: int = 0

    def ratio_to(self, other: HardwareCounters) -> dict[str, float]:
        """Per-counter this/other ratios (guarding zero denominators)."""

        def ratio(a: int, b: int) -> float:
            return a / b if b else float("inf")

        return {
            "memory_accesses": ratio(self.memory_accesses, other.memory_accesses),
            "dtlb_misses": ratio(self.dtlb_misses, other.dtlb_misses),
            "page_walk_cycles": ratio(
                self.page_walk_cycles, other.page_walk_cycles
            ),
            "l2_misses": ratio(self.l2_misses, other.l2_misses),
            "branch_mispredictions": ratio(
                self.branch_mispredictions, other.branch_mispredictions
            ),
        }


@dataclass(slots=True)
class _Machine:
    tlb: Tlb
    cache: Cache | CacheHierarchy
    predictor: BranchPredictor
    memory_accesses: int = 0
    scan_branch_mispredictions: int = 0

    def read(self, address: int, size: int) -> None:
        self.memory_accesses += 1
        self.tlb.access(address, size)
        self.cache.access(address, size)

    def scan_branch(self, site: object, taken: bool) -> None:
        if not self.predictor.branch(site, taken):
            self.scan_branch_mispredictions += 1


def run_traced_workload(
    layout: IndexLayout,
    queries: list[Query],
    max_query_words: int = 12,
    tlb: Tlb | None = None,
    cache: "Cache | CacheHierarchy | None" = None,
) -> HardwareCounters:
    """Replay ``queries`` against ``layout`` through the machine models.

    ``tlb`` / ``cache`` default to commodity-sized models; experiments on
    scaled-down corpora pass proportionally scaled-down hardware so the
    structure-to-capacity ratios match the paper's setting (a 180M-ad index
    dwarfs a real TLB/L2 exactly as a 10K-ad index dwarfs the small ones).
    """
    machine = _Machine(
        tlb=tlb if tlb is not None else Tlb(),
        cache=cache if cache is not None else Cache(),
        predictor=BranchPredictor(),
    )
    for query in queries:
        _trace_query(layout, query, machine, max_query_words)
    return HardwareCounters(
        memory_accesses=machine.memory_accesses,
        dtlb_misses=machine.tlb.misses,
        page_walk_cycles=machine.tlb.walk_cycles,
        l2_misses=machine.cache.misses,
        branch_predictions=machine.predictor.predictions,
        branch_mispredictions=machine.predictor.mispredictions,
        scan_branch_mispredictions=machine.scan_branch_mispredictions,
        l1_misses=getattr(machine.cache, "l1_misses", 0),
    )


def _trace_query(
    layout: IndexLayout,
    query: Query,
    machine: _Machine,
    max_query_words: int,
) -> None:
    words = query.words
    if len(words) > max_query_words:
        words = frozenset(sorted(words)[:max_query_words])
    query_len = len(words)
    for subset in bounded_subsets(words, query_len):
        key = wordhash(subset)
        probes = layout.probe_sequence(key)
        last = len(probes) - 1
        for i, (slot, _is_target) in enumerate(probes):
            machine.read(layout.bucket_address(slot), BUCKET_BYTES)
            # Branch: "does this bucket terminate the probe?"  Keyed by the
            # probe-run position: at any fixed position the outcome is
            # strongly biased (nearly every lookup ends on its first
            # bucket), which history predictors exploit.
            machine.predictor.branch(("probe_end", i), i == last)
        hit = probes[-1][1]
        if not hit:
            continue
        placement = layout.placements[key]
        node = placement.node
        machine.read(placement.address, 4)  # node header
        for index, (entry, address) in enumerate(
            zip(node.entries, placement.entry_addresses)
        ):
            within = entry.word_count <= query_len
            # The scan-loop branches are keyed per node and position,
            # modeling a history predictor: a homogeneous (identity) node
            # scans to the same position for every accessing query, so its
            # exit is learnable; a merged node's early-termination point
            # moves with query length — the mechanism behind the paper's
            # observation that re-mapping *increased* mispredictions.
            machine.scan_branch(("scan_continue", key, index), within)
            if not within:
                break
            machine.read(address, entry.size_bytes)
            # Phrase verification compares the entry word by word; in a
            # homogeneous node the same phrase repeats and the per-word
            # outcomes are learnable, in a merged node phrases of different
            # word-sets interleave at the same branch site.
            for word in sorted(entry.ad.words):
                in_query = word in words
                machine.scan_branch(("word_check", key), in_query)
                if not in_query:
                    break
            machine.scan_branch(
                ("entry_match", key), entry.ad.words <= words
            )
