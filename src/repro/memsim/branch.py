"""A 2-bit saturating-counter branch predictor (Section VII-C counters).

The paper observed that re-mapping *increased* branch mispredictions by
23%: merged data nodes mean longer data-dependent scan loops whose
match/no-match branches are hard to predict, whereas the no-remap layout
mostly branches on "bucket empty?" which is strongly biased.  A per-site
2-bit counter table reproduces exactly that asymmetry.
"""

from __future__ import annotations


class BranchPredictor:
    """Per-site 2-bit saturating counters (no aliasing between named sites)."""

    # Counter states: 0,1 predict not-taken; 2,3 predict taken.

    def __init__(self, initial: int = 1) -> None:
        if not 0 <= initial <= 3:
            raise ValueError("initial counter must be in [0, 3]")
        self._counters: dict[object, int] = {}
        self._initial = initial
        self.predictions = 0
        self.mispredictions = 0

    def branch(self, site: object, taken: bool) -> bool:
        """Record one dynamic branch; returns True if predicted correctly."""
        counter = self._counters.get(site, self._initial)
        predicted_taken = counter >= 2
        correct = predicted_taken == taken
        self.predictions += 1
        if not correct:
            self.mispredictions += 1
        if taken:
            counter = min(3, counter + 1)
        else:
            counter = max(0, counter - 1)
        self._counters[site] = counter
        return correct

    def misprediction_rate(self) -> float:
        if not self.predictions:
            return 0.0
        return self.mispredictions / self.predictions
