"""A data-TLB model (LRU over page numbers) with page-walk accounting.

Section VII-C measures (a) memory accesses missing the DTLB, and (b) the
core cycles spent on the resulting page walks.  We model a typical
64-entry, 4 KB-page, fully associative LRU DTLB; each miss triggers a page
walk costing a fixed number of cycles.  The *distinction* between (a) and
(b) matters to reproduce the paper's observation that page-walk cycles
grew by >40% while raw DTLB misses grew only 12%: we model walk cost as
higher when the walked page has not been visited recently (cold page
tables), which is precisely what scattering data across many pages causes.
"""

from __future__ import annotations

from collections import OrderedDict

PAGE_SIZE = 4096


class Tlb:
    """Fully associative LRU TLB."""

    def __init__(
        self,
        entries: int = 64,
        page_size: int = PAGE_SIZE,
        walk_cycles_warm: int = 20,
        walk_cycles_cold: int = 60,
        page_table_reach: int = 512,
    ) -> None:
        if entries < 1:
            raise ValueError("entries must be >= 1")
        self.entries = entries
        self.page_size = page_size
        self.walk_cycles_warm = walk_cycles_warm
        self.walk_cycles_cold = walk_cycles_cold
        #: Pages whose page-table entries are plausibly cached: an LRU of
        #: recently walked page-table *groups* (each group covers
        #: ``page_table_reach`` consecutive pages, like one PTE cache line).
        self.page_table_reach = page_table_reach
        self._tlb: OrderedDict[int, None] = OrderedDict()
        self._walked_groups: OrderedDict[int, None] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.walk_cycles = 0

    def access(self, address: int, size: int = 1) -> None:
        """Touch every page covered by [address, address+size)."""
        if size < 1:
            size = 1
        first = address // self.page_size
        last = (address + size - 1) // self.page_size
        for page in range(first, last + 1):
            self._touch(page)

    def _touch(self, page: int) -> None:
        if page in self._tlb:
            self._tlb.move_to_end(page)
            self.hits += 1
            return
        self.misses += 1
        group = page // self.page_table_reach
        if group in self._walked_groups:
            self._walked_groups.move_to_end(group)
            self.walk_cycles += self.walk_cycles_warm
        else:
            self.walk_cycles += self.walk_cycles_cold
            self._walked_groups[group] = None
            if len(self._walked_groups) > self.entries:
                self._walked_groups.popitem(last=False)
        self._tlb[page] = None
        if len(self._tlb) > self.entries:
            self._tlb.popitem(last=False)

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0
