"""Set-associative cache models (Section VII-C counts L2 misses; the paper
attributes part of random-access latency to "L1 and L2 cache misses")."""

from __future__ import annotations

from collections import OrderedDict


class Cache:
    """Set-associative LRU cache; counts hits and misses per line touch."""

    def __init__(
        self,
        size_bytes: int = 256 * 1024,
        associativity: int = 8,
        line_bytes: int = 64,
    ) -> None:
        if size_bytes % (associativity * line_bytes):
            raise ValueError("size must be a multiple of assoc * line size")
        self.line_bytes = line_bytes
        self.associativity = associativity
        self.num_sets = size_bytes // (associativity * line_bytes)
        self._sets: list[OrderedDict[int, None]] = [
            OrderedDict() for _ in range(self.num_sets)
        ]
        self.hits = 0
        self.misses = 0

    def access(self, address: int, size: int = 1) -> None:
        """Touch every cache line covered by [address, address+size)."""
        if size < 1:
            size = 1
        first = address // self.line_bytes
        last = (address + size - 1) // self.line_bytes
        for line in range(first, last + 1):
            self._touch(line)

    def _touch(self, line: int) -> None:
        index = line % self.num_sets
        ways = self._sets[index]
        if line in ways:
            ways.move_to_end(line)
            self.hits += 1
            return
        self.misses += 1
        ways[line] = None
        if len(ways) > self.associativity:
            ways.popitem(last=False)

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class CacheHierarchy:
    """An inclusive two-level hierarchy: L1 filters traffic before L2.

    Only L1 *misses* touch L2, matching real hardware where the L2 miss
    counter sees post-L1 traffic.  Defaults model a typical 32 KiB 8-way L1
    in front of a 256 KiB 8-way L2.
    """

    def __init__(self, l1: Cache | None = None, l2: Cache | None = None) -> None:
        self.l1 = l1 if l1 is not None else Cache(
            size_bytes=32 * 1024, associativity=8
        )
        self.l2 = l2 if l2 is not None else Cache()
        if self.l1.line_bytes != self.l2.line_bytes:
            raise ValueError("L1 and L2 must share a line size")

    def access(self, address: int, size: int = 1) -> None:
        """Touch lines through L1; forward only L1 misses to L2."""
        if size < 1:
            size = 1
        line_bytes = self.l1.line_bytes
        first = address // line_bytes
        last = (address + size - 1) // line_bytes
        for line in range(first, last + 1):
            l1_misses_before = self.l1.misses
            self.l1._touch(line)
            if self.l1.misses > l1_misses_before:
                self.l2._touch(line)

    @property
    def misses(self) -> int:
        """L2 misses — the counter Section VII-C reports."""
        return self.l2.misses

    @property
    def l1_misses(self) -> int:
        return self.l1.misses

    @property
    def accesses(self) -> int:
        return self.l1.accesses

    def miss_rate(self) -> float:
        return self.l1.miss_rate()
