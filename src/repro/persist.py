"""Index persistence: versioned, checksummed save/load of corpus + mapping.

A serving process must be able to persist the built structure and restore
it on restart without re-running the optimizer.  The format is JSON-lines:

* line 1 — header: format version, counts, configuration;
* one line per advertisement (phrase, metadata);
* one line per non-identity mapping entry;
* trailer — a SHA-256 over everything above, so truncation or bit-rot is
  detected at load time rather than surfacing as silently wrong auctions.

``load_index`` rebuilds the :class:`~repro.core.wordset_index.WordSetIndex`
(placement is deterministic given corpus + mapping) and returns the corpus
and mapping alongside it for further optimization.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
from dataclasses import dataclass
from pathlib import Path

from repro.core.ads import AdCorpus, AdInfo, Advertisement
from repro.core.wordset_index import WordSetIndex
from repro.faults.injector import FaultInjector, InjectedCrash, active_injector
from repro.optimize.mapping import Mapping

FORMAT_VERSION = 1

#: Distinguishes temp files of concurrent savers within one process; the
#: pid handles concurrent processes.
_TEMP_COUNTER = itertools.count()


class PersistenceError(ValueError):
    """Raised when a saved index file is invalid, corrupt, or truncated."""


@dataclass(frozen=True, slots=True)
class LoadedIndex:
    corpus: AdCorpus
    mapping: Mapping
    index: WordSetIndex
    #: Snapshot generation: bumped on every compaction so op-log records
    #: from before the compaction are recognisably stale (see
    #: :mod:`repro.oplog` and ``docs/durability.md``).
    generation: int = 0


def _ad_record(ad: Advertisement) -> dict:
    return {
        "phrase": list(ad.phrase),
        "listing_id": ad.info.listing_id,
        "campaign_id": ad.info.campaign_id,
        "bid_price_micros": ad.info.bid_price_micros,
        "exclusions": list(ad.info.exclusion_phrases),
    }


def _ad_from_record(record: dict) -> Advertisement:
    info = AdInfo(
        listing_id=record["listing_id"],
        campaign_id=record["campaign_id"],
        bid_price_micros=record["bid_price_micros"],
        exclusion_phrases=tuple(record["exclusions"]),
    )
    return Advertisement(phrase=tuple(record["phrase"]), info=info)


def save_index(
    path: str | Path,
    corpus: AdCorpus,
    mapping: Mapping | None = None,
    max_query_words: int = 16,
    generation: int = 0,
    faults: FaultInjector | None = None,
) -> None:
    """Write corpus + mapping to ``path``, atomically and durably.

    The write is crash-safe in the strict sense: a unique temp file (so
    concurrent savers never collide) is fully written and **fsynced
    before** the atomic ``rename``, then the directory entry is synced
    best-effort — a power loss at any instant leaves either the old
    complete file or the new complete file, never a torn or empty one.

    Crashpoints (see ``docs/durability.md``): ``save.tmp_written``,
    ``save.tmp_synced``, ``save.renamed``.
    """
    path = Path(path)
    faults = active_injector(faults)
    mapping = mapping if mapping is not None else Mapping({})
    remapped = {
        words: locator
        for words, locator in mapping.as_dict().items()
        if words != locator
    }
    header = {
        "format": "repro-wordset-index",
        "version": FORMAT_VERSION,
        "generation": generation,
        "num_ads": len(corpus),
        "num_remapped": len(remapped),
        "max_words": mapping.max_words,
        "max_query_words": max_query_words,
    }
    digest = hashlib.sha256()
    temp = path.with_name(
        f".{path.name}.{os.getpid()}.{next(_TEMP_COUNTER)}.tmp"
    )
    try:
        with temp.open("w", encoding="utf-8") as handle:
            for record in _records(header, corpus, remapped):
                line = json.dumps(record, sort_keys=True)
                digest.update(line.encode("utf-8"))
                handle.write(line + "\n")
            handle.write(
                json.dumps({"sha256": digest.hexdigest()}, sort_keys=True)
                + "\n"
            )
            faults.crashpoint("save.tmp_written")
            handle.flush()
            os.fsync(handle.fileno())
        faults.crashpoint("save.tmp_synced")
        temp.replace(path)
    except BaseException as exc:
        # A real power loss would leave the temp file behind; an
        # injected crash must too, so recovery is tested against the
        # true on-disk state.  Ordinary errors clean up after themselves.
        if not isinstance(exc, InjectedCrash):
            temp.unlink(missing_ok=True)
        raise
    faults.crashpoint("save.renamed")
    _fsync_directory(path.parent)


def _fsync_directory(directory: Path) -> None:
    """Best-effort directory fsync so the rename itself is durable.
    Platforms that refuse O_RDONLY directory fds simply skip it."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def _records(header, corpus, remapped):
    yield header
    for ad in corpus:
        yield {"ad": _ad_record(ad)}
    for words, locator in sorted(
        remapped.items(), key=lambda kv: sorted(kv[0])
    ):
        yield {"map": {"words": sorted(words), "locator": sorted(locator)}}


def load_index(path: str | Path) -> LoadedIndex:
    """Read, verify, and rebuild.  Raises :class:`PersistenceError` on any
    malformed input."""
    path = Path(path)
    try:
        lines = path.read_text(encoding="utf-8").splitlines()
    except OSError as exc:
        raise PersistenceError(f"cannot read {path}: {exc}") from exc
    if len(lines) < 2:
        raise PersistenceError("file truncated: missing header or trailer")

    try:
        trailer = json.loads(lines[-1])
    except json.JSONDecodeError as exc:
        raise PersistenceError("trailer is not valid JSON") from exc
    if "sha256" not in trailer:
        raise PersistenceError("file truncated: checksum trailer missing")

    digest = hashlib.sha256()
    records = []
    for line in lines[:-1]:
        digest.update(line.encode("utf-8"))
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as exc:
            raise PersistenceError("corrupt record: invalid JSON") from exc
    if digest.hexdigest() != trailer["sha256"]:
        raise PersistenceError("checksum mismatch: file corrupt")

    header = records[0]
    if header.get("format") != "repro-wordset-index":
        raise PersistenceError("not a repro index file")
    if header.get("version") != FORMAT_VERSION:
        raise PersistenceError(
            f"unsupported format version {header.get('version')!r}"
        )

    ads = []
    assignment: dict[frozenset[str], frozenset[str]] = {}
    for record in records[1:]:
        if "ad" in record:
            ads.append(_ad_from_record(record["ad"]))
        elif "map" in record:
            entry = record["map"]
            assignment[frozenset(entry["words"])] = frozenset(entry["locator"])
        else:
            raise PersistenceError(f"unknown record type: {record!r}")
    if len(ads) != header["num_ads"]:
        raise PersistenceError(
            f"ad count mismatch: header says {header['num_ads']}, "
            f"found {len(ads)}"
        )
    if len(assignment) != header["num_remapped"]:
        raise PersistenceError("mapping count mismatch")

    corpus = AdCorpus(ads)
    try:
        mapping = Mapping(assignment, max_words=header["max_words"])
    except ValueError as exc:
        raise PersistenceError(f"invalid mapping in file: {exc}") from exc
    index = WordSetIndex.from_corpus(
        corpus,
        mapping=mapping.as_dict(),
        max_words=mapping.max_words,
        max_query_words=header["max_query_words"],
    )
    return LoadedIndex(
        corpus=corpus,
        mapping=mapping,
        index=index,
        generation=int(header.get("generation", 0)),
    )
