"""Impact-ordered retrieval: testing the paper's §I-B *negative* claim.

Traditional IR pushes ranking signals into the index (impact ordering,
max-score, WAND) so top-k queries can skip low-scoring postings.  The
paper argues this is **not worth doing for broad match**: word-set result
sets are already small (the Fig 2 long tail), and real ranking depends on
query-independent factors the index cannot know.

To make that claim falsifiable rather than rhetorical, this module
implements the optimization anyway: each data node carries the maximum bid
price of its entries, and ``query_top_k`` processes candidate nodes in
descending max-bid order, stopping when the next node's ceiling cannot
displace the current k-th bid (the max-score pruning rule).  The
``ext-impact`` experiment then measures how much scanning this actually
saves on calibrated corpora — reproducing the paper's "less likely to
result in noticeable performance improvement" as a number.
"""

from __future__ import annotations

import heapq
from collections.abc import Iterable, Mapping

from repro.core.ads import AdCorpus, Advertisement
from repro.core.matching import MatchType
from repro.core.queries import Query
from repro.core.wordhash import wordhash
from repro.core.wordset_index import (
    HASH_BUCKET_BYTES,
    IndexStats,
    WordSetIndex,
)
from repro.cost.accounting import AccessTracker


class ImpactOrderedIndex:
    """WordSetIndex plus per-node bid ceilings and top-k pruning."""

    def __init__(
        self,
        max_words: int | None = None,
        max_query_words: int = 16,
        tracker: AccessTracker | None = None,
    ) -> None:
        self._inner = WordSetIndex(
            max_words=max_words,
            max_query_words=max_query_words,
            tracker=None,
        )
        self.tracker = tracker
        #: hash key -> max bid over the node's entries.
        self._max_bid: dict[int, int] = {}

    @classmethod
    def from_corpus(
        cls,
        corpus: AdCorpus | Iterable[Advertisement],
        mapping: Mapping[frozenset[str], frozenset[str]] | None = None,
        max_words: int | None = None,
        tracker: AccessTracker | None = None,
    ) -> ImpactOrderedIndex:
        index = cls(max_words=max_words, tracker=tracker)
        for ad in corpus:
            locator = mapping.get(ad.words) if mapping is not None else None
            index.insert(ad, locator=locator)
        return index

    def insert(
        self, ad: Advertisement, locator: frozenset[str] | None = None
    ) -> None:
        self._inner.insert(ad, locator=locator)
        placed = self._inner.placement()[ad.words]
        key = wordhash(placed)
        self._max_bid[key] = max(
            self._max_bid.get(key, 0), ad.info.bid_price_micros
        )

    # ------------------------------------------------------------------ #

    def query(
        self, query: Query, match_type: MatchType = MatchType.BROAD
    ) -> list[Advertisement]:
        """Plain match without top-k pruning — the baseline."""
        saved = self._inner.tracker
        self._inner.tracker = self.tracker
        try:
            return self._inner.query(query, match_type)
        finally:
            self._inner.tracker = saved

    def stats(self) -> IndexStats:
        """Structural statistics of the underlying hash index."""
        return self._inner.stats()

    def query_top_k(self, query: Query, k: int) -> list[Advertisement]:
        """Top-k broad matches by bid price with max-score node pruning.

        Probes every subset of the inner index's probe plan (that cost is
        unavoidable — pruning cannot know a node's ceiling without finding
        the node — and using the same plan as the plain baseline keeps the
        comparison about *scanning* only), then scans hit nodes in
        descending bid ceiling, stopping once ``k`` results are held and
        the next ceiling cannot beat the k-th bid.
        """
        if k < 1:
            raise ValueError("k must be >= 1")
        plan = self._inner.probe_plan(query.words)
        words = plan.words
        tracker = self.tracker

        candidates: list[tuple[int, int]] = []  # (-max_bid, key)
        visited: set[int] = set()
        for key in self._inner._probe_keys(plan):
            if tracker is not None:
                tracker.hash_probe(HASH_BUCKET_BYTES)
            if key in visited:
                continue
            visited.add(key)
            node = self._inner.nodes.get(key)
            if node is not None:
                # Collision-bucket nodes are kept: ``node.scan`` verifies
                # stored phrases, exactly as the plain probe path does.
                candidates.append((-self._max_bid.get(key, 0), key))
        candidates.sort()

        top: list[tuple[int, int, Advertisement]] = []  # min-heap by bid
        counter = 0
        for negative_ceiling, key in candidates:
            ceiling = -negative_ceiling
            if len(top) >= k and ceiling <= top[0][0]:
                break  # no node after this one can displace the k-th bid
            node = self._inner.nodes[key]
            matched, scanned = node.scan(words)
            if tracker is not None:
                tracker.random_access(scanned)
                tracker.candidate(
                    sum(1 for e in node.entries if e.word_count <= len(words))
                )
            for ad in matched:
                counter += 1
                entry = (ad.info.bid_price_micros, counter, ad)
                if len(top) < k:
                    heapq.heappush(top, entry)
                elif entry[0] > top[0][0]:
                    heapq.heapreplace(top, entry)
        if tracker is not None:
            tracker.query_done()
        return [ad for _, _, ad in sorted(top, key=lambda t: -t[0])]

    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._inner)

    @property
    def inner(self) -> WordSetIndex:
        return self._inner

    def delete(self, ad: Advertisement) -> bool:
        placed = self._inner.placement().get(ad.words)
        removed = self._inner.delete(ad)
        if removed and placed is not None:
            key = wordhash(placed)
            node = self._inner.nodes.get(key)
            if node is None:
                self._max_bid.pop(key, None)
            else:
                self._max_bid[key] = max(
                    (e.ad.info.bid_price_micros for e in node.entries),
                    default=0,
                )
        return removed
