"""Queries and query workloads.

The paper models a search query as a set of words (order is irrelevant for
broad match) and a workload ``WL = {Q_1, ..., Q_h}`` with a frequency
function ``frq``.  Workloads drive both the set-cover optimization
(Section V) and the experimental throughput measurements (Section VII).
"""

from __future__ import annotations

import random
from collections import Counter
from collections.abc import Iterable, Iterator
from dataclasses import dataclass

from repro.core.tokens import phrase_tokens


@dataclass(frozen=True, slots=True)
class Query:
    """A search query: an ordered token tuple plus its folded word-set."""

    tokens: tuple[str, ...]

    @classmethod
    def from_text(cls, text: str) -> Query:
        return cls(tokens=phrase_tokens(text))

    @property
    def words(self) -> frozenset[str]:
        return frozenset(self.tokens)

    def __len__(self) -> int:
        return len(self.words)


class Workload:
    """A weighted set of queries with frequencies (``frq`` in the paper)."""

    def __init__(self, weighted_queries: Iterable[tuple[Query, int]] = ()) -> None:
        self._freq: Counter[Query] = Counter()
        for query, frequency in weighted_queries:
            self.add(query, frequency)

    @classmethod
    def from_trace(cls, queries: Iterable[Query]) -> Workload:
        """Aggregate a raw query stream into (query, frequency) pairs."""
        workload = cls()
        for query in queries:
            workload.add(query, 1)
        return workload

    def add(self, query: Query, frequency: int = 1) -> None:
        if frequency <= 0:
            raise ValueError("frequency must be positive")
        self._freq[query] += frequency

    def frq(self, query: Query) -> int:
        """The paper's ``frq(Q_i)``; 0 for unseen queries."""
        return self._freq[query]

    def __len__(self) -> int:
        """Number of *distinct* queries."""
        return len(self._freq)

    def __iter__(self) -> Iterator[tuple[Query, int]]:
        return iter(self._freq.items())

    @property
    def total_frequency(self) -> int:
        return sum(self._freq.values())

    def distinct_queries(self) -> list[Query]:
        return list(self._freq)

    def top(self, n: int) -> list[tuple[Query, int]]:
        """The ``n`` most frequent queries — the head that dominates the
        power-law workload and matters most for re-mapping decisions."""
        return self._freq.most_common(n)

    def sample_stream(self, n: int, seed: int = 0) -> list[Query]:
        """Draw an i.i.d. query stream of length ``n`` from the workload.

        Used to replay a trace against a structure: the workload is the
        aggregate, the stream is what a server actually sees.
        """
        rng = random.Random(seed)
        queries = list(self._freq)
        weights = [self._freq[q] for q in queries]
        return rng.choices(queries, weights=weights, k=n)

    def subsample(self, fraction: float, seed: int = 0) -> Workload:
        """Binomially subsample the workload (observing a stream for a
        shorter interval, Section V 'Characterization of the Query
        Workload')."""
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        rng = random.Random(seed)
        sampled = Workload()
        for query, frequency in self._freq.items():
            kept = sum(1 for _ in range(frequency) if rng.random() < fraction)
            if kept:
                sampled.add(query, kept)
        return sampled
