"""Match semantics: broad, phrase, and exact match, plus a naive oracle.

Definitions follow Section III of the paper:

* **broad match** — ``words(A) ⊆ Q`` (all bid words appear in the query);
* **phrase match** — the bid's tokens appear in the query *in order and
  contiguously*;
* **exact match** — bid tokens equal query tokens exactly.

``naive_broad_match`` scans the whole corpus; it is the correctness oracle
every index implementation is tested against.
"""

from __future__ import annotations

import enum
from collections.abc import Iterable, Sequence

from repro.core.ads import AdCorpus, Advertisement
from repro.core.queries import Query


class MatchType(enum.Enum):
    """The three matching algorithms used in sponsored search."""

    BROAD = "broad"
    PHRASE = "phrase"
    EXACT = "exact"


def broad_match(ad_words: frozenset[str], query_words: frozenset[str]) -> bool:
    """``words(A) ⊆ Q``."""
    return ad_words <= query_words


def phrase_match(ad_phrase: Sequence[str], query_tokens: Sequence[str]) -> bool:
    """True iff ``ad_phrase`` occurs contiguously, in order, in the query."""
    n, m = len(ad_phrase), len(query_tokens)
    if n == 0 or n > m:
        return n == 0
    phrase = tuple(ad_phrase)
    return any(tuple(query_tokens[i : i + n]) == phrase for i in range(m - n + 1))


def exact_match(ad_phrase: Sequence[str], query_tokens: Sequence[str]) -> bool:
    """True iff bid and query are token-for-token identical."""
    return tuple(ad_phrase) == tuple(query_tokens)


def matches(ad: Advertisement, query: Query, match_type: MatchType) -> bool:
    """Apply the requested match semantics to one (ad, query) pair."""
    if match_type is MatchType.BROAD:
        return broad_match(ad.words, query.words)
    if match_type is MatchType.PHRASE:
        return phrase_match(ad.phrase, query.tokens)
    return exact_match(ad.phrase, query.tokens)


def apply_match_type(
    ads: list[Advertisement], query: Query, match_type: MatchType
) -> list[Advertisement]:
    """Narrow a broad-match candidate list to ``match_type`` semantics.

    Broad match returns the list unchanged; phrase and exact match verify
    token order against each candidate (Section III-B: all three match
    types share the same probes, only the final verification differs).
    """
    if match_type is MatchType.BROAD:
        return ads
    if match_type is MatchType.PHRASE:
        return [ad for ad in ads if phrase_match(ad.phrase, query.tokens)]
    return [ad for ad in ads if exact_match(ad.phrase, query.tokens)]


def passes_exclusions(ad: Advertisement, query: Query) -> bool:
    """Secondary filter: an ad is excluded if any of its exclusion phrases is
    fully contained in the query (Section I-B's keyword-exclusion)."""
    from repro.core.tokens import word_set

    return all(not word_set(p) <= query.words for p in ad.info.exclusion_phrases)


def naive_broad_match(
    corpus_or_ads: AdCorpus | Iterable[Advertisement], query: Query
) -> list[Advertisement]:
    """Reference broad-match: scan every ad.  O(n); test oracle only."""
    return [ad for ad in corpus_or_ads if broad_match(ad.words, query.words)]


def naive_match(
    corpus_or_ads: AdCorpus | Iterable[Advertisement],
    query: Query,
    match_type: MatchType,
) -> list[Advertisement]:
    """Reference matcher for any match type.  O(n); test oracle only."""
    return [ad for ad in corpus_or_ads if matches(ad, query, match_type)]
