"""Subset enumeration for broad-match query processing.

A query ``Q`` must probe the hash table at every word subset that could be a
node locator.  Without re-mapping that is all ``2^|Q| - 1`` non-empty
subsets; once all long phrases are re-mapped to locators of at most
``max_words`` words, only subsets of size ``<= max_words`` need probing —
``Σ_{i=1..max_words} C(|Q|, i)`` of them (Section IV-B).

For extremely long queries even the bounded count is prohibitive, so the
paper applies a heuristic cutoff; we implement it as a hard cap on the
number of query words considered (keeping the rarest words, which are the
most selective locator members).
"""

from __future__ import annotations

from itertools import combinations
from math import comb
from collections.abc import Callable, Iterable, Iterator


def lookup_count(query_len: int) -> int:
    """Number of hash probes without re-mapping: ``2^q - 1``."""
    return (1 << query_len) - 1


def subset_count(num_words: int, sizes: Iterable[int]) -> int:
    """Number of subsets of a ``num_words``-set with sizes in ``sizes``.

    Generalizes :func:`lookup_count_bounded` to non-contiguous size lists —
    the probe count of a pruned :class:`~repro.perf.prefilter.ProbePlan`,
    which skips subset sizes no node locator has.
    """
    return sum(comb(num_words, size) for size in sizes)


def lookup_count_bounded(query_len: int, max_words: int) -> int:
    """Probes with long-phrase re-mapping: ``Σ_{i=1..max_words} C(q, i)``.

    Equals ``2^q - 1`` whenever ``max_words >= q``.
    """
    bound = min(max_words, query_len)
    return sum(comb(query_len, i) for i in range(1, bound + 1))


def bounded_subsets(
    words: frozenset[str], max_size: int
) -> Iterator[frozenset[str]]:
    """Yield all non-empty subsets of ``words`` with ``<= max_size`` elements.

    Subsets are yielded smallest-first; within a size the order is
    deterministic (sorted words) so traces and costs are reproducible.
    """
    bound = min(max_size, len(words))
    yield from sized_subsets(words, range(1, bound + 1))


def sized_subsets(
    words: frozenset[str], sizes: Iterable[int]
) -> Iterator[frozenset[str]]:
    """Yield subsets of ``words`` whose sizes are in ``sizes``, in the same
    canonical order as :func:`bounded_subsets` (ascending sizes, sorted
    words lexicographic within a size)."""
    ordered = sorted(words)
    for size in sizes:
        if size < 1 or size > len(ordered):
            continue
        for combo in combinations(ordered, size):
            yield frozenset(combo)


def truncate_query(
    words: frozenset[str],
    max_query_words: int,
    selectivity: Callable[[str], int] | None = None,
) -> frozenset[str]:
    """Heuristic cutoff for extremely long queries (Section IV-B).

    Keeps the ``max_query_words`` most selective words — by corpus document
    frequency when ``selectivity`` is given (lower = rarer = kept first),
    else lexicographically (deterministic fallback).  Dropping words can
    only lose matches whose bid contains a dropped word, which is the
    recall/latency trade-off the paper accepts for outlier queries.
    """
    if len(words) <= max_query_words:
        return words
    if selectivity is None:
        kept = sorted(words)[:max_query_words]
    else:
        kept = sorted(words, key=lambda w: (selectivity(w), w))[:max_query_words]
    return frozenset(kept)
