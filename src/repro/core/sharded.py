"""Sharded broad-match serving (the Section VII-B setting, generalized).

When the corpus outgrows one machine, the paper splits data across
servers.  Broad match admits no query-side routing — a match can live in
any shard, because a query cannot know which subsets other shards index —
so the standard deployment is **scatter-gather**: ads are partitioned by
the hash of their word-set (re-mapped groups stay whole, since the mapping
is applied within the owning shard), every query fans out to all shards,
and results are unioned.

``ShardedWordSetIndex`` wraps N independent :class:`WordSetIndex` shards
behind the usual interface; per-shard trackers let the distsim experiments
price each shard's work separately.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro.core.ads import AdCorpus, Advertisement
from repro.core.matching import MatchType
from repro.core.queries import Query
from repro.core.wordhash import wordhash
from repro.core.wordset_index import IndexStats, WordSetIndex
from repro.cost.accounting import AccessTracker
from repro.obs.registry import MetricsRegistry, active_or_none
from repro.resilience.deadline import Deadline, DegradedReason
from repro.resilience.fanout import FanoutGuard


class ShardedWordSetIndex:
    """Scatter-gather over hash-partitioned WordSetIndex shards."""

    #: Capability marker: ``query`` accepts a ``deadline`` budget.
    supports_deadline = True

    def __init__(
        self,
        num_shards: int,
        max_words: int | None = None,
        max_query_words: int = 16,
        trackers: list[AccessTracker] | None = None,
        fast_path: bool = True,
        obs: MetricsRegistry | None = None,
        guard: FanoutGuard | None = None,
    ) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if trackers is not None and len(trackers) != num_shards:
            raise ValueError("need one tracker per shard")
        if guard is not None and len(guard.breakers) != num_shards:
            raise ValueError(
                "guard shard count does not match index shard count"
            )
        #: Optional breaker-guarded fan-out policy (see
        #: :class:`~repro.resilience.fanout.FanoutGuard`).  ``None``
        #: keeps the original fail-on-first-error gather.
        self.guard = guard
        self.num_shards = num_shards
        # All shards share one registry: per-query totals aggregate across
        # the scatter exactly as a single-shard index would report them.
        obs = active_or_none(obs)
        self.shards = [
            WordSetIndex(
                max_words=max_words,
                max_query_words=max_query_words,
                tracker=trackers[i] if trackers else None,
                fast_path=fast_path,
                obs=obs,
            )
            for i in range(num_shards)
        ]

    def bind_obs(self, obs: MetricsRegistry | None) -> None:
        """Attach one shared metrics registry to every shard."""
        obs = active_or_none(obs)
        for shard in self.shards:
            shard.bind_obs(obs)

    @classmethod
    def from_corpus(
        cls,
        corpus: AdCorpus | Iterable[Advertisement],
        num_shards: int,
        mapping: Mapping[frozenset[str], frozenset[str]] | None = None,
        max_words: int | None = None,
        trackers: list[AccessTracker] | None = None,
        fast_path: bool = True,
        obs: MetricsRegistry | None = None,
    ) -> ShardedWordSetIndex:
        sharded = cls(
            num_shards,
            max_words=max_words,
            trackers=trackers,
            fast_path=fast_path,
            obs=obs,
        )
        for ad in corpus:
            locator = mapping.get(ad.words) if mapping is not None else None
            sharded.insert(ad, locator=locator)
        return sharded

    def shard_of(self, words: frozenset[str]) -> int:
        """Owning shard: hash of the ad's *word-set* (not its locator), so
        re-mapping never moves ads between shards."""
        return wordhash(words) % self.num_shards

    def insert(
        self, ad: Advertisement, locator: frozenset[str] | None = None
    ) -> None:
        self.shards[self.shard_of(ad.words)].insert(ad, locator=locator)

    def delete(self, ad: Advertisement) -> bool:
        return self.shards[self.shard_of(ad.words)].delete(ad)

    def query(
        self,
        query: Query,
        match_type: MatchType = MatchType.BROAD,
        deadline: Deadline | None = None,
    ) -> list[Advertisement]:
        """Scatter to every shard, gather the union (disjoint by
        construction — each ad lives in exactly one shard).

        With a ``guard`` the gather runs under per-shard circuit
        breakers and partial-result policy; otherwise an expired
        ``deadline`` simply stops the fan-out with whatever shards
        answered, flagged partial on the budget object.
        """
        if self.guard is not None:
            return self.guard.gather(
                self.shards,
                lambda shard: shard.query(query, match_type, deadline),
                deadline,
            )
        results: list[Advertisement] = []
        for shard in self.shards:
            if deadline is not None and deadline.expired():
                deadline.mark_partial(DegradedReason.DEADLINE)
                break
            results.extend(shard.query(query, match_type, deadline))
        return results

    def query_broad_batch(
        self, queries: Iterable[Query], max_workers: int | None = None
    ) -> list[list[Advertisement]]:
        """Batched scatter-gather: dedup identical word-sets across the
        batch, then run each shard's probe pass on a worker-pool thread
        (see :class:`repro.perf.batch.BatchQueryEngine`).  Per-query
        results equal sequential broad ``query`` calls, in input order."""
        from repro.perf.batch import BatchQueryEngine

        engine = BatchQueryEngine(self, max_workers=max_workers)
        return engine.query_broad_batch(list(queries))

    def __len__(self) -> int:
        return sum(len(shard) for shard in self.shards)

    def shard_sizes(self) -> list[int]:
        return [len(shard) for shard in self.shards]

    def stats(self) -> list[IndexStats]:
        return [shard.stats() for shard in self.shards]

    def check_invariants(self) -> None:
        for i, shard in enumerate(self.shards):
            shard.check_invariants()
            for words in shard.placement():
                assert self.shard_of(words) == i, (
                    "ad stored in the wrong shard"
                )

    def balance_factor(self) -> float:
        """max/mean shard size; 1.0 is perfectly balanced."""
        sizes = self.shard_sizes()
        mean = sum(sizes) / len(sizes)
        if mean == 0:
            return 1.0
        return max(sizes) / mean
