"""Data nodes: the variable-length records holding co-mapped ads.

A data node (Fig 4/5 of the paper) stores every advertisement mapped to one
node locator.  Entries are kept **ordered by the number of words in their
phrase**; during a broad-match probe with query ``Q``, scanning stops at the
first entry whose phrase has more than ``|Q|`` words, because no later entry
can satisfy ``words(A) ⊆ Q``.  Ads sharing an identical word-set are stored
contiguously (the paper's condition IV), which keeps groups atomic for the
set-cover optimizer.
"""

from __future__ import annotations

from bisect import insort
from collections.abc import Iterator
from dataclasses import dataclass, field

from repro.core.ads import Advertisement

#: Fixed per-entry header charged by the size model: a 1-byte word count and
#: a 2-byte phrase length, mirroring a compact binary record layout.
ENTRY_HEADER_BYTES = 3

#: Per-node header: entry count (4 bytes).
NODE_HEADER_BYTES = 4


@dataclass(slots=True)
class NodeEntry:
    """One advertisement inside a data node, with its scan footprint."""

    ad: Advertisement
    word_count: int = field(init=False)
    size_bytes: int = field(init=False)

    def __post_init__(self) -> None:
        self.word_count = len(self.ad.words)
        self.size_bytes = ENTRY_HEADER_BYTES + self.ad.size_bytes()


class DataNode:
    """All ads mapped to a single node locator, scan-ordered by word count."""

    __slots__ = ("locator", "entries")

    def __init__(self, locator: frozenset[str]) -> None:
        #: The word-set whose hash addresses this node.  Under the paper's
        #: mapping constraints every entry's word-set is a superset of it.
        self.locator = locator
        self.entries: list[NodeEntry] = []

    def add(self, ad: Advertisement) -> None:
        """Insert an ad, keeping word-count order and keeping ads that share
        a word-set contiguous.

        ``insort`` with a ``word_count`` key places the new entry after
        existing entries of the same word count; because all ads of one
        word-set arrive with the same count and sets of equal count but
        different content never interleave a group (groups are contiguous
        runs we never split), contiguity per word-set is preserved for
        same-set ads inserted consecutively.  For arbitrary insertion order
        we place the entry directly after the last entry with the same
        word-set when one exists.
        """
        entry = NodeEntry(ad)
        for i in range(len(self.entries) - 1, -1, -1):
            existing = self.entries[i]
            if existing.word_count < entry.word_count:
                break
            if existing.ad.words == ad.words:
                self.entries.insert(i + 1, entry)
                return
        insort(self.entries, entry, key=lambda e: e.word_count)

    def remove(self, ad: Advertisement) -> bool:
        """Remove one occurrence of ``ad``; returns False if absent."""
        for i, entry in enumerate(self.entries):
            if entry.ad == ad:
                del self.entries[i]
                return True
        return False

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[NodeEntry]:
        return iter(self.entries)

    def scan(self, query_words: frozenset[str]) -> tuple[list[Advertisement], int]:
        """Broad-match probe: return (matches, bytes scanned).

        Scans entries in word-count order, stopping at the first entry whose
        phrase exceeds ``|query_words|`` words (the early-termination
        optimization the ordering exists for).  Bytes scanned cover every
        entry *touched*, matching or not — that is the sequential-read cost
        the optimizer's ``weight(S)`` charges.
        """
        query_len = len(query_words)
        matched: list[Advertisement] = []
        scanned = NODE_HEADER_BYTES
        for entry in self.entries:
            if entry.word_count > query_len:
                break
            scanned += entry.size_bytes
            if entry.ad.words <= query_words:
                matched.append(entry.ad)
        return matched, scanned

    def scan_bytes_for_query_len(self, query_len: int) -> int:
        """Bytes a probe with a ``query_len``-word query would read."""
        scanned = NODE_HEADER_BYTES
        for entry in self.entries:
            if entry.word_count > query_len:
                break
            scanned += entry.size_bytes
        return scanned

    def size_bytes(self) -> int:
        """Total encoded size of the node."""
        return NODE_HEADER_BYTES + sum(e.size_bytes for e in self.entries)

    def distinct_wordsets(self) -> list[frozenset[str]]:
        """Word-sets present, in scan order, deduplicated."""
        seen: list[frozenset[str]] = []
        for entry in self.entries:
            if not seen or seen[-1] != entry.ad.words:
                if entry.ad.words not in seen:
                    seen.append(entry.ad.words)
        return seen

    def is_ordered(self) -> bool:
        """Invariant check: entries are non-decreasing in word count."""
        counts = [e.word_count for e in self.entries]
        return all(a <= b for a, b in zip(counts, counts[1:]))
