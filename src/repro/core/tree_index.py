"""Tree-structured lookup table (Section III-B, "Tree-structured lookup
tables").

The paper notes the re-mapping scheme also works when the associative
structure is a tree rather than a hash table.  This module implements that
variant as a **trie over sorted node-locator words**: the locator
``{books, used}`` is stored on the path ``books -> used``.

Query processing becomes a DFS: starting at the root, descend only along
edges labeled with query words that sort *after* the edge already taken.
This enumerates exactly the locators that (a) exist and (b) are subsets of
the query — never the ``2^|Q| - 1`` candidate subsets a hash table must
probe.  The trade-off mirrors the classic hash-vs-tree one: per-step
pointer chasing and a traversal whose size depends on the corpus rather
than constant-time direct probes.

The query interface, re-mapping constraints, deletion behaviour, and
tracker accounting all match :class:`~repro.core.wordset_index.WordSetIndex`,
so the two structures are drop-in interchangeable (and cross-checked by the
test suite and the ablation benchmarks).
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro.core.ads import AdCorpus, Advertisement
from repro.core.data_node import DataNode
from repro.core.matching import MatchType, apply_match_type
from repro.core.queries import Query
from repro.core.subset_enum import truncate_query
from repro.cost.accounting import AccessTracker

#: Modeled bytes read when following one trie edge (hashed child lookup:
#: key reference + child pointer).
TRIE_EDGE_BYTES = 16


class _TrieNode:
    __slots__ = ("children", "data")

    def __init__(self) -> None:
        self.children: dict[str, _TrieNode] = {}
        self.data: DataNode | None = None


class TrieWordSetIndex:
    """Broad-match index backed by a word trie instead of a hash table."""

    def __init__(
        self,
        max_words: int | None = None,
        max_query_words: int = 24,
        tracker: AccessTracker | None = None,
    ) -> None:
        if max_words is not None and max_words < 1:
            raise ValueError("max_words must be >= 1")
        self.max_words = max_words
        self.max_query_words = max_query_words
        self.tracker = tracker
        self._root = _TrieNode()
        self._placement: dict[frozenset[str], frozenset[str]] = {}
        self._num_ads = 0
        self._num_data_nodes = 0

    # ------------------------------------------------------------------ #
    # Construction

    @classmethod
    def from_corpus(
        cls,
        corpus: AdCorpus | Iterable[Advertisement],
        mapping: Mapping[frozenset[str], frozenset[str]] | None = None,
        max_words: int | None = None,
        tracker: AccessTracker | None = None,
    ) -> TrieWordSetIndex:
        index = cls(max_words=max_words, tracker=tracker)
        for ad in corpus:
            locator = mapping.get(ad.words) if mapping is not None else None
            index.insert(ad, locator=locator)
        return index

    def insert(
        self, ad: Advertisement, locator: frozenset[str] | None = None
    ) -> None:
        """Same placement semantics as the hash index (conditions I-IV)."""
        established = self._placement.get(ad.words)
        if established is not None:
            locator = established
        elif locator is None:
            locator = ad.words
        if not locator:
            raise ValueError("node locator must be non-empty")
        if not locator <= ad.words:
            raise ValueError("locator must be a subset of the ad's words")
        if self.max_words is not None and len(locator) > self.max_words:
            raise ValueError("locator exceeds max_words")
        node = self._root
        for word in sorted(locator):
            child = node.children.get(word)
            if child is None:
                child = _TrieNode()
                node.children[word] = child
            node = child
        if node.data is None:
            node.data = DataNode(locator)
            self._num_data_nodes += 1
        node.data.add(ad)
        self._placement[ad.words] = locator
        self._num_ads += 1

    def delete(self, ad: Advertisement) -> bool:
        """Remove ``ad``; prunes empty trie branches."""
        locator = self._placement.get(ad.words)
        if locator is None:
            return False
        path: list[tuple[_TrieNode, str]] = []
        node = self._root
        for word in sorted(locator):
            child = node.children.get(word)
            if child is None:
                return False
            path.append((node, word))
            node = child
        if node.data is None or not node.data.remove(ad):
            return False
        self._num_ads -= 1
        if not any(e.ad.words == ad.words for e in node.data.entries):
            del self._placement[ad.words]
        if not node.data.entries:
            node.data = None
            self._num_data_nodes -= 1
            # Prune now-empty suffix of the path.
            for parent, word in reversed(path):
                child = parent.children[word]
                if child.data is None and not child.children:
                    del parent.children[word]
                else:
                    break
        return True

    # ------------------------------------------------------------------ #
    # Query processing

    def query(
        self, query: Query, match_type: MatchType = MatchType.BROAD
    ) -> list[Advertisement]:
        return self._query(query, match_type)

    def _query(self, query: Query, match_type: MatchType) -> list[Advertisement]:
        words = truncate_query(query.words, self.max_query_words)
        ordered = sorted(words)
        results: list[Advertisement] = []
        tracker = self.tracker
        max_depth = (
            len(ordered) if self.max_words is None
            else min(len(ordered), self.max_words)
        )

        # Iterative DFS: (trie node, index of the next candidate word,
        # depth).  Descending on ordered[i] keeps word order canonical, so
        # every existing subset-locator is visited exactly once.
        stack: list[tuple[_TrieNode, int, int]] = [(self._root, 0, 0)]
        while stack:
            node, start, depth = stack.pop()
            if node.data is not None and depth > 0:
                matched, scanned = node.data.scan(words)
                if tracker is not None:
                    tracker.random_access(scanned)
                    tracker.candidate(
                        sum(
                            1
                            for e in node.data.entries
                            if e.word_count <= len(words)
                        )
                    )
                results.extend(matched)
            if depth >= max_depth:
                continue
            for i in range(start, len(ordered)):
                child = node.children.get(ordered[i])
                if tracker is not None:
                    # One edge-lookup per candidate word tried.
                    tracker.random_access(TRIE_EDGE_BYTES)
                if child is not None:
                    stack.append((child, i + 1, depth + 1))
        if tracker is not None:
            tracker.query_done()
        return apply_match_type(results, query, match_type)

    # ------------------------------------------------------------------ #
    # Introspection

    def __len__(self) -> int:
        return self._num_ads

    @property
    def num_data_nodes(self) -> int:
        return self._num_data_nodes

    def placement(self) -> dict[frozenset[str], frozenset[str]]:
        return dict(self._placement)

    def stats(self) -> dict[str, int]:
        """Structural statistics (the :class:`RetrievalIndex` surface)."""
        return {
            "num_ads": self._num_ads,
            "num_data_nodes": self._num_data_nodes,
            "num_distinct_wordsets": len(self._placement),
            "trie_nodes": self.trie_size(),
        }

    def trie_size(self) -> int:
        """Total number of trie nodes (including the root)."""
        count = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            count += 1
            stack.extend(node.children.values())
        return count
