"""Tokenization and normalization of bid phrases and queries.

The paper (Section III-B) defines broad-match over *sets* of words, with one
special case: repeated words carry meaning ("Talk Talk" is a band, not the
word "talk" twice), so the correct semantics is that a word occurring k times
in a bid must occur exactly k times in the query.  The paper handles this by
folding the i-th occurrence of a word into a distinct synthetic token; we do
the same, rewriting the i-th occurrence (i >= 2) of word ``w`` as ``w__i``.
"""

from __future__ import annotations

import re
from collections import Counter
from collections.abc import Iterable, Sequence

# Unicode word characters except underscore (reserved for duplicate
# folding), allowing internal apostrophes ("rock'n'roll").  Keeping
# underscore out of the alphabet also means folded tokens like "talk__2"
# can never be forged from raw input text.
_TOKEN_RE = re.compile(r"[^\W_]+(?:'[^\W_]+)*")

#: Separator used to mark folded duplicate occurrences.  Double underscore is
#: not produced by :func:`tokenize`, so folded tokens cannot collide with
#: ordinary words.
DUPLICATE_SEP = "__"


def tokenize(text: str) -> list[str]:
    """Split raw text into lowercase word tokens (unicode-aware).

    Punctuation is discarded; apostrophes inside words are kept so that
    contractions ("rock'n'roll") survive as a single token; non-Latin
    scripts tokenize as whitespace-separated words.

    >>> tokenize("Cheap USED Books!")
    ['cheap', 'used', 'books']
    >>> tokenize("günstige Bücher")
    ['günstige', 'bücher']
    """
    return _TOKEN_RE.findall(text.lower())


def fold_duplicates(words: Sequence[str]) -> list[str]:
    """Rewrite repeated words as positional tokens, preserving order.

    The first occurrence of a word is unchanged; the i-th occurrence becomes
    ``word__i``.  Applying this to both bids and queries makes plain
    subset-of-sets semantics implement the paper's duplicate-word rule.

    >>> fold_duplicates(["talk", "talk"])
    ['talk', 'talk__2']
    """
    seen: Counter[str] = Counter()
    folded = []
    for word in words:
        seen[word] += 1
        if seen[word] == 1:
            folded.append(word)
        else:
            folded.append(f"{word}{DUPLICATE_SEP}{seen[word]}")
    return folded


def unfold_token(token: str) -> str:
    """Return the underlying word of a (possibly folded) token.

    >>> unfold_token("talk__2")
    'talk'
    >>> unfold_token("talk")
    'talk'
    """
    base, sep, suffix = token.rpartition(DUPLICATE_SEP)
    if sep and suffix.isdigit():
        return base
    return token


def phrase_tokens(text: str) -> tuple[str, ...]:
    """Tokenize ``text`` and fold duplicates; the canonical phrase form.

    The returned tuple preserves word order (needed for phrase-match and
    exact-match) while its ``frozenset`` is the broad-match word-set.
    """
    return tuple(fold_duplicates(tokenize(text)))


def word_set(text_or_tokens: str | Iterable[str]) -> frozenset[str]:
    """Return the folded word-set for a phrase or pre-tokenized sequence."""
    if isinstance(text_or_tokens, str):
        return frozenset(phrase_tokens(text_or_tokens))
    return frozenset(fold_duplicates(list(text_or_tokens)))
