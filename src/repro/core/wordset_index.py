"""The paper's broad-match index: a hash table over word-sets (Section III).

Every advertisement lives in exactly one *data node*; the node is addressed
by ``wordhash`` of its *node locator* — by default the ad's own word-set,
or, after re-mapping, any subset of it.  A broad-match query probes the hash
table at every candidate subset of its words and scans the hit nodes.

Hash collisions between distinct word-sets are tolerated exactly as in the
paper: colliding sets share a node, and every probe verifies the stored
phrases, so results are always exact.

The index reports its memory operations to an optional
:class:`~repro.cost.accounting.AccessTracker`, which is how all experiments
measure and compare structures.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass
from time import perf_counter

from repro.core.ads import AdCorpus, Advertisement
from repro.core.data_node import DataNode
from repro.core.matching import MatchType, apply_match_type
from repro.core.queries import Query
from repro.core.subset_enum import sized_subsets
from repro.core.wordhash import wordhash
from repro.cost.accounting import AccessTracker
from repro.kernels import active_backend
from repro.kernels.flat import flat_probe_keys
from repro.obs.registry import MetricsRegistry, active_or_none
from repro.perf.memohash import hashed_index_subsets, word_contrib
from repro.perf.prefilter import ProbePlan, plan_for_query
from repro.resilience.deadline import Deadline, DegradedReason

#: The canonical hash at import time.  ``_probe`` compares the module
#: binding against this to detect a swapped-in hash function (tests patch
#: ``wordset_index.wordhash`` to force collisions) and fall back from the
#: memoized-contribution combine to hashing materialized subsets, so probes
#: always use the same function that placed the nodes.
_CANONICAL_WORDHASH = wordhash

#: Default cap on query words considered during subset enumeration — the
#: paper's "heuristic cutoff for extremely long queries" (Section IV-B).
DEFAULT_MAX_QUERY_WORDS = 16

#: Hash-table space blow-up assumed by the paper's sizing example (4/3).
HASH_TABLE_BLOWUP = 4 / 3

#: Bytes per hash-table bucket entry: 8-byte stored signature + 8-byte
#: pointer/offset to the data node.
HASH_BUCKET_BYTES = 16


@dataclass(frozen=True, slots=True)
class IndexStats:
    """Structural statistics of a built index."""

    num_ads: int
    num_nodes: int
    num_distinct_wordsets: int
    hash_table_bytes: int
    node_bytes: int
    max_node_entries: int

    @property
    def total_bytes(self) -> int:
        return self.hash_table_bytes + self.node_bytes


class WordSetIndex:
    """Hash-of-word-sets broad-match index with optional re-mapping.

    Queries accept an optional :class:`~repro.resilience.deadline.Deadline`
    budget (``supports_deadline``): the probe loop checks it between hash
    probes and returns a partial, *flagged* result instead of blowing the
    budget, and the budget's degradation constraints (``max_probes``,
    ``max_query_words``) tighten the probe plan before enumeration.

    Parameters
    ----------
    max_words:
        If set, node locators longer than this are disallowed; ads with
        longer word-sets must be placed via an explicit mapping (see
        :mod:`repro.optimize.remap`).  ``None`` means identity placement for
        every ad (the "no re-mapping" configuration of Fig 10 variant (a)).
    max_query_words:
        Heuristic cutoff: queries longer than this are truncated to their
        rarest words before subset enumeration.
    tracker:
        Optional :class:`AccessTracker` receiving the memory operations of
        every query.
    fast_path:
        When True (the default), queries are probe-pruned: subset
        enumeration runs only over query words that appear in some node
        locator, only at subset sizes some locator actually has, with
        memoized per-word hashing (see :mod:`repro.perf`).  Results are
        identical to the naive enumeration; only the probe count (and
        its tracker accounting) shrinks.  ``False`` keeps the paper's
        unpruned Section IV-B enumeration — the reference behaviour the
        benchmarks compare against.
    obs:
        Optional :class:`~repro.obs.registry.MetricsRegistry`.  When
        enabled, every query records ``index.probes``,
        ``index.node_scans``, ``index.candidates``, ``index.results``
        counters plus ``span.probe`` / ``span.scan`` timing histograms.
        ``None`` (or a disabled registry) keeps the hot path unchanged.
    """

    def __init__(
        self,
        max_words: int | None = None,
        max_query_words: int = DEFAULT_MAX_QUERY_WORDS,
        tracker: AccessTracker | None = None,
        fast_path: bool = True,
        obs: MetricsRegistry | None = None,
    ) -> None:
        if max_words is not None and max_words < 1:
            raise ValueError("max_words must be >= 1")
        if max_query_words < 1:
            raise ValueError("max_query_words must be >= 1")
        self.max_words = max_words
        self.max_query_words = max_query_words
        self.tracker = tracker
        self.fast_path = fast_path
        self._obs: MetricsRegistry | None = None
        self.bind_obs(obs)
        self._nodes: dict[int, DataNode] = {}
        #: word-set -> locator it is currently mapped to (identity unless
        #: a mapping re-mapped it).  Needed for deletion and invariants.
        self._placement: dict[frozenset[str], frozenset[str]] = {}
        self._num_ads = 0
        self._word_freq_fn = None  # selectivity for query truncation
        #: word -> number of live *placement* locators containing it; the
        #: keys are the locator vocabulary the prefilter intersects queries
        #: with.  Counting placements (one per live word-set group), not
        #: nodes, is what keeps pruning exact under hash collisions: a
        #: colliding group's locator can differ from the node's own.
        self._vocab_refcount: dict[str, int] = {}
        #: locator size -> number of live placements with that size; lets
        #: probe plans cap and skip subset sizes no locator has.
        self._size_histogram: dict[int, int] = {}
        #: Bumped on every structural mutation; the kernel path's sorted
        #: key table is a per-generation snapshot rebuilt lazily.
        self._mutation_gen = 0
        self._kernel_table = None
        self._kernel_table_gen = -1
        #: Bounded word-set -> ProbePlan memo for deadline-free kernel
        #: batches; plans depend only on prefilter state, so one
        #: generation's plans are reusable until the next mutation.
        self._plan_cache: OrderedDict[frozenset[str], ProbePlan] = (
            OrderedDict()
        )
        self._plan_cache_gen = -1

    # ------------------------------------------------------------------ #
    # Construction

    @classmethod
    def from_corpus(
        cls,
        corpus: AdCorpus | Iterable[Advertisement],
        mapping: Mapping[frozenset[str], frozenset[str]] | None = None,
        max_words: int | None = None,
        max_query_words: int = DEFAULT_MAX_QUERY_WORDS,
        tracker: AccessTracker | None = None,
        fast_path: bool = True,
        obs: MetricsRegistry | None = None,
    ) -> WordSetIndex:
        """Build an index, optionally under a re-mapping.

        ``mapping`` maps a bid word-set to the locator its ads should live
        at; word-sets absent from the mapping are placed at themselves.
        """
        index = cls(
            max_words=max_words,
            max_query_words=max_query_words,
            tracker=tracker,
            fast_path=fast_path,
            obs=obs,
        )
        if isinstance(corpus, AdCorpus):
            index._word_freq_fn = corpus.word_frequency
        for ad in corpus:
            locator = None
            if mapping is not None:
                locator = mapping.get(ad.words)
            index.insert(ad, locator=locator)
        return index

    def insert(
        self, ad: Advertisement, locator: frozenset[str] | None = None
    ) -> None:
        """Place ``ad`` at ``locator`` (default: its own word-set).

        Enforces the paper's mapping constraints: the locator must be a
        non-empty subset of the ad's words, within ``max_words``, and all
        ads sharing a word-set must share a node (condition IV) — a second
        ad of an already-placed word-set follows its group regardless of
        the ``locator`` argument.
        """
        established = self._placement.get(ad.words)
        if established is not None:
            locator = established
        elif locator is None:
            locator = ad.words
        self._check_locator(ad, locator)
        self._mutation_gen += 1
        key = wordhash(locator)
        node = self._nodes.get(key)
        if node is None:
            node = DataNode(locator)
            self._nodes[key] = node
        node.add(ad)
        if established is None:
            self._register_locator(locator)
        self._placement[ad.words] = locator
        self._num_ads += 1

    def _register_locator(self, locator: frozenset[str]) -> None:
        refs = self._vocab_refcount
        for word in locator:
            refs[word] = refs.get(word, 0) + 1
        size = len(locator)
        self._size_histogram[size] = self._size_histogram.get(size, 0) + 1

    def _unregister_locator(self, locator: frozenset[str]) -> None:
        refs = self._vocab_refcount
        for word in locator:
            remaining = refs[word] - 1
            if remaining:
                refs[word] = remaining
            else:
                del refs[word]
        size = len(locator)
        remaining = self._size_histogram[size] - 1
        if remaining:
            self._size_histogram[size] = remaining
        else:
            del self._size_histogram[size]

    def _check_locator(self, ad: Advertisement, locator: frozenset[str]) -> None:
        if not locator:
            raise ValueError("node locator must be non-empty")
        if not locator <= ad.words:
            raise ValueError(
                f"locator {set(locator)!r} is not a subset of the ad words "
                f"{set(ad.words)!r}"
            )
        if self.max_words is not None and len(locator) > self.max_words:
            raise ValueError(
                f"locator has {len(locator)} words, exceeding max_words="
                f"{self.max_words}"
            )

    def contains(self, ad: Advertisement) -> bool:
        """True when ``ad`` is indexed — the non-mutating validation
        half of :meth:`delete`, so write-ahead logging can check
        membership *before* committing a delete record."""
        locator = self._placement.get(ad.words)
        if locator is None:
            return False
        node = self._nodes.get(wordhash(locator))
        return node is not None and any(
            entry.ad == ad for entry in node.entries
        )

    def delete(self, ad: Advertisement) -> bool:
        """Remove ``ad``; returns False if it was not indexed.

        As the paper notes, deletion under re-mapping must locate the node
        via the placement of the ad's word-set (equivalent to a broad-match
        probe); empty nodes are dropped from the hash table.
        """
        locator = self._placement.get(ad.words)
        if locator is None:
            return False
        key = wordhash(locator)
        node = self._nodes.get(key)
        if node is None or not node.remove(ad):
            return False
        self._mutation_gen += 1
        self._num_ads -= 1
        if not any(e.ad.words == ad.words for e in node.entries):
            del self._placement[ad.words]
            self._unregister_locator(locator)
        if not node.entries:
            del self._nodes[key]
        return True

    # ------------------------------------------------------------------ #
    # Observability

    def bind_obs(self, obs: MetricsRegistry | None) -> None:
        """Attach (or detach, with ``None``) a metrics registry.

        Pre-registers every counter this index records so a snapshot taken
        before the first query already shows them at zero.
        """
        obs = active_or_none(obs)
        self._obs = obs
        if obs is not None:
            obs.counter("index.queries", help="Queries processed")
            obs.counter("index.probes", help="Hash-table probes issued")
            obs.counter("index.node_scans", help="Data nodes scanned")
            obs.counter(
                "index.candidates",
                help="Node entries small enough to be match candidates",
            )
            obs.counter("index.results", help="Matching ads returned")

    # ------------------------------------------------------------------ #
    # Query processing

    #: Queries accept a ``deadline=`` budget (checked between probes).
    supports_deadline = True

    def query(
        self,
        query: Query,
        match_type: MatchType = MatchType.BROAD,
        deadline: Deadline | None = None,
    ) -> list[Advertisement]:
        """Process a query under any of the three match semantics.

        Phrase- and exact-match reuse the same probes; only the final
        verification against the stored phrase changes (Section III-B).
        With a ``deadline``, the probe loop stops at budget expiry and
        the (partial) result is flagged on the deadline object.
        """
        return self._probe(query, match_type, deadline)

    def probe_plan(
        self, words: frozenset[str], deadline: Deadline | None = None
    ) -> ProbePlan:
        """The probe plan a broad-match over ``words`` executes.

        On the fast path the plan prunes to locator-vocabulary words and
        locator sizes actually present; with ``fast_path=False`` it is the
        paper's unpruned Section IV-B enumeration.  ``explain`` and the
        analytic cost model replay the same plan, so measured and modeled
        probe counts always agree.

        A ``deadline`` carrying degradation constraints tightens the
        plan: ``max_query_words`` hardens the Section IV truncation
        cutoff, ``max_probes`` caps the enumeration
        (:meth:`~repro.perf.prefilter.ProbePlan.capped`); either
        tightening marks the budget partial with an explicit reason.
        """
        max_query_words = self.max_query_words
        if deadline is not None and deadline.max_query_words is not None:
            max_query_words = min(max_query_words, deadline.max_query_words)
        plan = plan_for_query(
            words,
            fast_path=self.fast_path,
            vocabulary=self._vocab_refcount,
            size_histogram=self._size_histogram,
            max_words=self.max_words,
            max_query_words=max_query_words,
            selectivity=self._word_freq_fn,
        )
        if deadline is not None:
            # TRUNCATED means the *budget's* tighter cutoff dropped words
            # the index's own configuration would have kept — ordinary
            # long-query truncation is normal operation, not degradation.
            if min(len(words), self.max_query_words) > max_query_words:
                deadline.mark_partial(DegradedReason.TRUNCATED)
            if deadline.max_probes is not None:
                capped = plan.capped(deadline.max_probes)
                if capped is not plan:
                    deadline.mark_partial(DegradedReason.PROBES_CAPPED)
                    plan = capped
        return plan

    def probe_count(self, query: Query) -> int:
        """Exact number of hash probes a broad ``query(query)`` performs."""
        return self.probe_plan(query.words).probe_count()

    def _probe(
        self,
        query: Query,
        match_type: MatchType,
        deadline: Deadline | None = None,
    ) -> list[Advertisement]:
        obs = self._obs
        if obs is not None:
            return self._probe_observed(query, match_type, obs, deadline)
        plan = self.probe_plan(query.words, deadline)
        words = plan.words
        tracker = self.tracker
        results: list[Advertisement] = []
        visited: set[int] = set()
        nodes = self._nodes
        for key in self._probe_keys(plan):
            if deadline is not None and deadline.expired():
                deadline.mark_partial(DegradedReason.DEADLINE)
                break
            if tracker is not None:
                tracker.hash_probe(HASH_BUCKET_BYTES)
            if key in visited:
                # Two probed subsets collided to the same bucket; scanning
                # the node again would duplicate results.
                continue
            visited.add(key)
            node = nodes.get(key)
            if node is not None:
                # The bucket may belong to a different (hash-colliding)
                # word-set than the probed subset; scanning verifies stored
                # phrases against the query words, so results stay exact
                # either way and the subset itself never needs
                # materializing.
                results.extend(self._scan_node(node, query, words, match_type))
        if tracker is not None:
            tracker.query_done()
        return results

    def _probe_observed(
        self,
        query: Query,
        match_type: MatchType,
        obs: MetricsRegistry,
        deadline: Deadline | None = None,
    ) -> list[Advertisement]:
        """The :meth:`_probe` loop with per-query metrics recording.

        Kept as a separate method so the uninstrumented hot path carries
        zero extra work beyond one ``is not None`` check; the measured
        probe counter always equals the closed-form
        :meth:`probe_count` because the enumeration yields exactly the
        plan's subsets (unless a deadline stopped the loop early, which
        counts ``resilience.deadline_partials``).
        """
        started = perf_counter()
        plan = self.probe_plan(query.words, deadline)
        words = plan.words
        tracker = self.tracker
        results: list[Advertisement] = []
        visited: set[int] = set()
        nodes = self._nodes
        probes = 0
        node_scans = 0
        candidates = 0
        scan_seconds = 0.0
        for key in self._probe_keys(plan):
            if deadline is not None and deadline.expired():
                deadline.mark_partial(DegradedReason.DEADLINE)
                obs.counter("resilience.deadline_partials").inc()
                break
            probes += 1
            if tracker is not None:
                tracker.hash_probe(HASH_BUCKET_BYTES)
            if key in visited:
                continue
            visited.add(key)
            node = nodes.get(key)
            if node is not None:
                node_scans += 1
                candidates += sum(
                    1 for e in node.entries if e.word_count <= len(words)
                )
                scan_started = perf_counter()
                results.extend(self._scan_node(node, query, words, match_type))
                scan_seconds += perf_counter() - scan_started
        if tracker is not None:
            tracker.query_done()
        obs.counter("index.queries").inc()
        obs.counter("index.probes").inc(probes)
        obs.counter("index.node_scans").inc(node_scans)
        obs.counter("index.candidates").inc(candidates)
        obs.counter("index.results").inc(len(results))
        obs.histogram("span.scan").observe(scan_seconds * 1e3)
        obs.histogram("span.probe").observe((perf_counter() - started) * 1e3)
        return results

    def _probe_keys(self, plan: ProbePlan) -> Iterable[int]:
        """Hash keys for every probe of ``plan``, in enumeration order."""
        if wordhash is _CANONICAL_WORDHASH:
            contribs = [word_contrib(word) for word in plan.candidates]
            return (key for key, _ in hashed_index_subsets(contribs, plan.sizes))
        # The module-level hash was swapped (collision-forcing tests do
        # this); memoized contributions would disagree with node placement.
        return (
            wordhash(subset)
            for subset in sized_subsets(plan.candidates, plan.sizes)
        )

    def query_broad_batch(
        self, queries: Iterable[Query]
    ) -> list[list[Advertisement]]:
        """Broad-match a batch, computing each distinct word-set once.

        Queries that fold to the same word-set (order and duplicate words
        are irrelevant for broad match) share one probe pass; per-word hash
        contributions are shared across the whole batch through the memo
        cache.  Returns one (independent) result list per input query, in
        input order.
        """
        queries = list(queries)
        distinct: dict[frozenset[str], list[int]] = {}
        for position, query in enumerate(queries):
            distinct.setdefault(query.words, []).append(position)
        results: list[list[Advertisement]] = [[] for _ in queries]
        for words in sorted(distinct, key=sorted):
            positions = distinct[words]
            matched = self.query(queries[positions[0]])
            for position in positions:
                results[position] = list(matched)
        return results

    # ------------------------------------------------------------------ #
    # Kernel (array-at-a-time) batch path — see :mod:`repro.kernels`.

    def query_kernel_batch(
        self,
        queries: Sequence[Query],
        match_type: MatchType = MatchType.BROAD,
        deadline: Deadline | None = None,
    ) -> list[list[Advertisement]]:
        """Batch entry point for the :mod:`repro.kernels` fast path.

        Answers every query through flat precomputed probe-key arrays
        and (under the numpy backend) one bulk membership pass over the
        whole batch, instead of a per-probe interpreted loop.  Results,
        observability counters, and deadline-constraint handling are
        bit-identical to calling :meth:`query` per query; situations
        that need per-probe observation points — a bound tracker, a
        *timed* deadline, or a swapped-in hash function — fall back to
        the scalar path.
        """
        queries = list(queries)
        backend = active_backend()
        if (
            backend == "off"
            or wordhash is not _CANONICAL_WORDHASH
            or self.tracker is not None
            or (deadline is not None and deadline.timed)
        ):
            return [self._probe(q, match_type, deadline) for q in queries]
        plans = self._kernel_plans(queries, deadline)
        if backend == "numpy":
            return self._kernel_batch_numpy(queries, plans, match_type)
        return self._kernel_batch_python(queries, plans, match_type)

    #: Bound on the per-generation plan memo (one power-law head).
    _MAX_CACHED_PLANS = 4096

    def _kernel_plans(
        self, queries: list[Query], deadline: Deadline | None
    ) -> list[ProbePlan]:
        """Probe plans for a kernel batch, memoized across batches.

        A deadline can carry request-specific degradation constraints
        (and must record partiality marks), so only deadline-free
        queries hit the memo; it is dropped wholesale at the first
        batch after any index mutation.
        """
        if deadline is not None:
            return [self.probe_plan(q.words, deadline) for q in queries]
        cache = self._plan_cache
        if self._plan_cache_gen != self._mutation_gen:
            cache.clear()
            self._plan_cache_gen = self._mutation_gen
        plans = []
        for query in queries:
            plan = cache.get(query.words)
            if plan is None:
                plan = self.probe_plan(query.words)
                cache[query.words] = plan
                if len(cache) > self._MAX_CACHED_PLANS:
                    cache.popitem(last=False)
            else:
                cache.move_to_end(query.words)
            plans.append(plan)
        return plans

    def _node_key_table(self):
        """Sorted ``uint64`` snapshot of the node keys for bulk
        membership, rebuilt lazily after mutations."""
        from repro.kernels.probe import SortedKeyTable

        table = self._kernel_table
        if (
            table is None
            or self._kernel_table_gen != self._mutation_gen
            or len(table) != len(self._nodes)
        ):
            table = SortedKeyTable(self._nodes.keys(), len(self._nodes))
            self._kernel_table = table
            self._kernel_table_gen = self._mutation_gen
        return table

    def _kernel_batch_numpy(
        self,
        queries: list[Query],
        plans: list[ProbePlan],
        match_type: MatchType,
    ) -> list[list[Advertisement]]:
        import numpy as np

        from repro.kernels.probe import split_by_query

        keys_per = [
            flat_probe_keys(plan.candidates, plan.sizes, "numpy")
            for plan in plans
        ]
        boundaries: list[int] = []
        total = 0
        for keys in keys_per:
            total += len(keys)
            boundaries.append(total)
        if total:
            all_keys = (
                np.concatenate(keys_per) if len(keys_per) > 1 else keys_per[0]
            )
            hits = self._node_key_table().hit_positions(all_keys)
            # One C-speed conversion for the whole batch's (few) hits.
            hit_keys: list[int] = all_keys[hits].tolist()
            ends = split_by_query(hits, boundaries).tolist()
        else:
            hit_keys = []
            ends = [0] * len(queries)
        out: list[list[Advertisement]] = []
        start = 0
        for i, query in enumerate(queries):
            end = ends[i]
            out.append(
                self._kernel_scan_one(
                    query,
                    plans[i],
                    len(keys_per[i]),
                    hit_keys[start:end],
                    match_type,
                )
            )
            start = end
        return out

    def _kernel_batch_python(
        self,
        queries: list[Query],
        plans: list[ProbePlan],
        match_type: MatchType,
    ) -> list[list[Advertisement]]:
        nodes = self._nodes
        out: list[list[Advertisement]] = []
        for query, plan in zip(queries, plans):
            keys = flat_probe_keys(plan.candidates, plan.sizes, "python")
            out.append(
                self._kernel_scan_one(
                    query,
                    plan,
                    len(keys),
                    (key for key in keys if key in nodes),
                    match_type,
                )
            )
        return out

    def _kernel_scan_one(
        self,
        query: Query,
        plan: ProbePlan,
        num_probes: int,
        hit_keys: Iterable[int],
        match_type: MatchType,
    ) -> list[Advertisement]:
        """Scan one query's hit nodes, in probe-enumeration order,
        recording the same per-query metrics as the scalar path.

        ``hit_keys`` yields only the probed keys present in the table
        (misses were eliminated in bulk); duplicate hits — subsets
        colliding to one bucket — are deduplicated here exactly as the
        scalar loop's ``visited`` set does.
        """
        obs = self._obs
        started = perf_counter() if obs is not None else 0.0
        words = plan.words
        nodes = self._nodes
        results: list[Advertisement] = []
        visited: set[int] = set()
        node_scans = 0
        candidates = 0
        scan_seconds = 0.0
        for key in hit_keys:
            if key in visited:
                continue
            visited.add(key)
            node = nodes.get(key)
            if node is None:  # table snapshot raced a mutation; stay exact
                continue
            if obs is None:
                results.extend(
                    self._scan_node(node, query, words, match_type)
                )
                continue
            node_scans += 1
            candidates += sum(
                1 for e in node.entries if e.word_count <= len(words)
            )
            scan_started = perf_counter()
            results.extend(self._scan_node(node, query, words, match_type))
            scan_seconds += perf_counter() - scan_started
        if obs is not None:
            obs.counter("index.queries").inc()
            obs.counter("index.probes").inc(num_probes)
            obs.counter("index.node_scans").inc(node_scans)
            obs.counter("index.candidates").inc(candidates)
            obs.counter("index.results").inc(len(results))
            obs.histogram("span.scan").observe(scan_seconds * 1e3)
            obs.histogram("span.probe").observe(
                (perf_counter() - started) * 1e3
            )
        return results

    def _scan_node(
        self,
        node: DataNode,
        query: Query,
        probe_words: frozenset[str],
        match_type: MatchType,
    ) -> list[Advertisement]:
        tracker = self.tracker
        matched, scanned = node.scan(probe_words)
        if tracker is not None:
            tracker.random_access(scanned)
            tracker.candidate(
                sum(1 for e in node.entries if e.word_count <= len(probe_words))
            )
        return apply_match_type(matched, query, match_type)

    # ------------------------------------------------------------------ #
    # Introspection

    def __len__(self) -> int:
        return self._num_ads

    @property
    def nodes(self) -> dict[int, DataNode]:
        """The hash table, keyed by ``wordhash`` of the node locator."""
        return self._nodes

    def placement(self) -> dict[frozenset[str], frozenset[str]]:
        """Current word-set -> locator mapping (identity if never remapped)."""
        return dict(self._placement)

    def indexed_vocabulary(self) -> frozenset[str]:
        """Words appearing in at least one live node locator — the set the
        prefilter intersects queries with."""
        return frozenset(self._vocab_refcount)

    def locator_vocabulary_refcounts(self) -> dict[str, int]:
        """Word -> number of live placement locators containing it (the
        refcounted form of :meth:`indexed_vocabulary`, persisted into
        packed segment headers)."""
        return dict(self._vocab_refcount)

    def locator_size_histogram(self) -> dict[int, int]:
        """Locator size -> number of live placements with that size."""
        return dict(self._size_histogram)

    def max_locator_size(self) -> int:
        """Largest locator size present (0 when the index is empty)."""
        return max(self._size_histogram, default=0)

    def node_for(self, words: frozenset[str]) -> DataNode | None:
        """The node currently holding ads with word-set ``words``."""
        locator = self._placement.get(words)
        if locator is None:
            return None
        return self._nodes.get(wordhash(locator))

    def hash_table_bytes(self) -> int:
        """Modeled size of the hash table (buckets x blow-up)."""
        return int(len(self._nodes) * HASH_BUCKET_BYTES * HASH_TABLE_BLOWUP)

    def stats(self) -> IndexStats:
        """Structural statistics (node counts, modeled byte sizes)."""
        node_bytes = sum(n.size_bytes() for n in self._nodes.values())
        return IndexStats(
            num_ads=self._num_ads,
            num_nodes=len(self._nodes),
            num_distinct_wordsets=len(self._placement),
            hash_table_bytes=self.hash_table_bytes(),
            node_bytes=node_bytes,
            max_node_entries=max(
                (len(n) for n in self._nodes.values()), default=0
            ),
        )

    def check_invariants(self) -> None:
        """Validate the paper's mapping conditions I-IV plus node ordering.

        Raises ``AssertionError`` on violation; used by tests and after
        online maintenance operations.
        """
        seen_sets: set[frozenset[str]] = set()
        total = 0
        for key, node in self._nodes.items():
            assert node.entries, f"empty node left in table (key {key})"
            assert node.is_ordered(), "node entries not ordered by word count"
            for entry in node.entries:
                total += 1
                words = entry.ad.words
                locator = self._placement.get(words)
                assert locator is not None, (
                    "indexed ad missing from placement map"
                )
                # The *placement* locator governs each entry; the node's own
                # locator can differ for residents that hash-collided in.
                assert locator <= words, "locator not a subset of ad words"
                assert wordhash(locator) == key, (
                    "condition IV violated: word-set split across nodes"
                )
                seen_sets.add(words)
            if self.max_words is not None:
                assert len(node.locator) <= self.max_words
        assert total == self._num_ads, "ad count mismatch (conditions I/II)"
        assert seen_sets == set(self._placement), "placement map out of sync"
        # The fast-path pruning state must mirror the live *placement*
        # locators exactly, or the prefilter would skip probes that can hit
        # (node locators are not enough: a hash-colliding group's locator
        # never becomes the shared node's own locator).
        expected_refs: dict[str, int] = {}
        expected_sizes: dict[int, int] = {}
        for locator in self._placement.values():
            for word in locator:
                expected_refs[word] = expected_refs.get(word, 0) + 1
            size = len(locator)
            expected_sizes[size] = expected_sizes.get(size, 0) + 1
        assert self._vocab_refcount == expected_refs, (
            "locator vocabulary refcounts out of sync"
        )
        assert self._size_histogram == expected_sizes, (
            "locator size histogram out of sync"
        )
