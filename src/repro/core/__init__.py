"""Core broad-match data structures: the paper's primary contribution.

This subpackage contains the hash-based word-set index (Section III of the
paper), the data-node layout, subset enumeration for query processing, and
the reference matching semantics used as a test oracle.
"""

from repro.core.ads import AdCorpus, AdInfo, Advertisement
from repro.core.data_node import DataNode, NodeEntry
from repro.core.explain import QueryExplanation, explain_broad_match
from repro.core.impact_index import ImpactOrderedIndex
from repro.core.matching import (
    MatchType,
    broad_match,
    exact_match,
    naive_broad_match,
    phrase_match,
)
from repro.core.protocols import RetrievalIndex
from repro.core.queries import Query, Workload
from repro.core.sharded import ShardedWordSetIndex
from repro.core.subset_enum import (
    bounded_subsets,
    lookup_count,
    lookup_count_bounded,
    sized_subsets,
    subset_count,
    truncate_query,
)
from repro.core.tokens import fold_duplicates, tokenize, unfold_token
from repro.core.tree_index import TrieWordSetIndex
from repro.core.wordhash import wordhash
from repro.core.wordset_index import IndexStats, WordSetIndex

__all__ = [
    "AdCorpus",
    "AdInfo",
    "Advertisement",
    "DataNode",
    "ImpactOrderedIndex",
    "IndexStats",
    "MatchType",
    "NodeEntry",
    "Query",
    "QueryExplanation",
    "RetrievalIndex",
    "ShardedWordSetIndex",
    "TrieWordSetIndex",
    "WordSetIndex",
    "Workload",
    "bounded_subsets",
    "broad_match",
    "exact_match",
    "explain_broad_match",
    "fold_duplicates",
    "lookup_count",
    "lookup_count_bounded",
    "naive_broad_match",
    "phrase_match",
    "sized_subsets",
    "subset_count",
    "tokenize",
    "truncate_query",
    "unfold_token",
    "wordhash",
]
