"""Query profiling: a per-query breakdown of what the index did and why.

``explain_broad_match`` replays one query against a
:class:`~repro.core.wordset_index.WordSetIndex` and reports every hash
probe and node visit with its cost contribution — the operational
visibility a production serving team needs when a query is slow (too many
probed subsets? one giant data node? a colliding bucket?).

The execution path mirrors ``WordSetIndex._probe`` exactly; a test pins the
two together by asserting identical results and identical modeled cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.queries import Query
from repro.core.wordset_index import HASH_BUCKET_BYTES, WordSetIndex
from repro.cost.model import CostModel


@dataclass(frozen=True, slots=True)
class NodeVisit:
    """One data-node access during query processing."""

    locator: frozenset[str]
    entries_total: int
    entries_scanned: int
    bytes_scanned: int
    matched_listing_ids: tuple[int, ...]

    @property
    def early_terminated(self) -> bool:
        return self.entries_scanned < self.entries_total


@dataclass(frozen=True, slots=True)
class QueryExplanation:
    """The full profile of one broad-match execution."""

    query_words: frozenset[str]
    truncated: bool
    hash_probes: int
    empty_probes: int
    node_visits: tuple[NodeVisit, ...]
    #: Words that survived the fast path's indexed-vocabulary prefilter
    #: (every query word when the index runs unpruned).
    candidate_words: tuple[str, ...] = ()
    #: True when the index's probe-pruning fast path produced the plan.
    pruned: bool = False
    model: CostModel = field(default_factory=CostModel)

    @property
    def matches(self) -> list[int]:
        ids: list[int] = []
        for visit in self.node_visits:
            ids.extend(visit.matched_listing_ids)
        return ids

    @property
    def candidates_examined(self) -> int:
        return sum(v.entries_scanned for v in self.node_visits)

    def probe_cost_ns(self) -> float:
        return self.hash_probes * (
            self.model.cost_random() + self.model.cost_scan(HASH_BUCKET_BYTES)
        )

    def node_cost_ns(self) -> float:
        return sum(
            self.model.cost_random() + self.model.cost_scan(v.bytes_scanned)
            for v in self.node_visits
        )

    def total_cost_ns(self) -> float:
        return self.probe_cost_ns() + self.node_cost_ns()

    def summary(self) -> str:
        """Human-readable profile."""
        lines = [
            f"query: {sorted(self.query_words)}"
            + (" (truncated)" if self.truncated else ""),
        ]
        if self.pruned:
            lines.append(
                f"prefilter: {len(self.candidate_words)}/"
                f"{len(self.query_words)} words indexed"
            )
        lines += [
            f"hash probes: {self.hash_probes} "
            f"({self.empty_probes} empty) -> {self.probe_cost_ns():.0f} ns",
            f"node visits: {len(self.node_visits)} -> "
            f"{self.node_cost_ns():.0f} ns",
        ]
        for visit in self.node_visits:
            suffix = " [early-term]" if visit.early_terminated else ""
            lines.append(
                f"  node {sorted(visit.locator)}: scanned "
                f"{visit.entries_scanned}/{visit.entries_total} entries, "
                f"{visit.bytes_scanned} B, matched "
                f"{list(visit.matched_listing_ids)}{suffix}"
            )
        lines.append(
            f"matches: {len(self.matches)}  total: "
            f"{self.total_cost_ns():.0f} ns"
        )
        return "\n".join(lines)


def explain_broad_match(
    index: WordSetIndex, query: Query, model: CostModel | None = None
) -> QueryExplanation:
    """Profile one broad-match execution against ``index``."""
    model = model or CostModel()
    plan = index.probe_plan(query.words)
    words = plan.words

    probes = 0
    empty = 0
    visits: list[NodeVisit] = []
    visited: set[int] = set()
    for key in index._probe_keys(plan):
        probes += 1
        if key in visited:
            continue
        visited.add(key)
        node = index.nodes.get(key)
        if node is None:
            empty += 1
            continue
        matched, scanned = node.scan(words)
        entries_scanned = sum(
            1 for e in node.entries if e.word_count <= len(words)
        )
        visits.append(
            NodeVisit(
                locator=node.locator,
                entries_total=len(node.entries),
                entries_scanned=entries_scanned,
                bytes_scanned=scanned,
                matched_listing_ids=tuple(
                    a.info.listing_id for a in matched
                ),
            )
        )
    return QueryExplanation(
        query_words=words,
        truncated=plan.truncated,
        hash_probes=probes,
        empty_probes=empty,
        node_visits=tuple(visits),
        candidate_words=plan.candidates,
        pruned=plan.pruned,
        model=model,
    )
