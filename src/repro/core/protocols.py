"""The shared retrieval surface every index structure conforms to.

Historically each structure grew its own ad-hoc query methods
(``query_broad``, ``query(query, match_type)`` with a required second
argument, duck-typed consumers).  :class:`RetrievalIndex` is the one
contract now: consumers (:class:`~repro.serving.server.AdServer`,
:class:`~repro.perf.batch.BatchQueryEngine`, the CLI, the experiment
drivers) type against it, and all five concrete structures —
``WordSetIndex``, ``TrieWordSetIndex``, ``ShardedWordSetIndex``,
``ImpactOrderedIndex``, and ``CachedIndex`` — implement it, as do the
inverted-index baselines and the compressed hash replacement.

``query_broad(q)`` survives as a thin deprecated alias for
``query(q)``; call sites should migrate to ``query``.
"""

from __future__ import annotations

import warnings
from typing import Protocol, runtime_checkable

from repro.core.ads import Advertisement
from repro.core.matching import MatchType
from repro.core.queries import Query

__all__ = ["RetrievalIndex", "warn_query_broad_deprecated"]


@runtime_checkable
class RetrievalIndex(Protocol):
    """Anything that can retrieve ads for a query.

    The contract:

    * ``query(query, match_type=MatchType.BROAD)`` returns every matching
      :class:`~repro.core.ads.Advertisement` (broad match by default;
      phrase/exact verify token order on the same candidates);
    * ``stats()`` reports structural statistics (shape is
      implementation-defined: :class:`~repro.core.wordset_index.IndexStats`
      for the hash index, a per-shard list for the sharded one, ...);
    * ``len(index)`` is the number of indexed advertisements.
    """

    def query(
        self, query: Query, match_type: MatchType = MatchType.BROAD
    ) -> list[Advertisement]:
        """All ads matching ``query`` under ``match_type``."""
        ...

    def stats(self) -> object:
        """Structural statistics of the index."""
        ...

    def __len__(self) -> int:
        """Number of indexed advertisements."""
        ...


def warn_query_broad_deprecated(owner: type) -> None:
    """Emit the shared ``query_broad`` deprecation warning for ``owner``."""
    warnings.warn(
        f"{owner.__name__}.query_broad(query) is deprecated; "
        f"use {owner.__name__}.query(query) "
        "(broad match is the default match type)",
        DeprecationWarning,
        stacklevel=3,
    )
