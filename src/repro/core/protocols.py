"""The shared retrieval surface every index structure conforms to.

Historically each structure grew its own ad-hoc query methods
(``query_broad``, ``query(query, match_type)`` with a required second
argument, duck-typed consumers).  :class:`RetrievalIndex` is the one
contract now: consumers (:class:`~repro.serving.server.AdServer`,
:class:`~repro.perf.batch.BatchQueryEngine`, the CLI, the experiment
drivers) type against it, and all five concrete structures —
``WordSetIndex``, ``TrieWordSetIndex``, ``ShardedWordSetIndex``,
``ImpactOrderedIndex``, and ``CachedIndex`` — implement it, as do the
inverted-index baselines and the compressed hash replacement.

The PR 2 migration is complete: the primary structures expose only
``query`` — their ``query_broad`` DeprecationWarning aliases have been
removed.  The inverted-index baselines keep ``query_broad`` as their
documented primary entry point (it is *their* native surface, wrapped by
``query``), which is exactly the asymmetry the conformance tests pin.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from repro.core.ads import Advertisement
from repro.core.matching import MatchType
from repro.core.queries import Query

__all__ = ["RetrievalIndex"]


@runtime_checkable
class RetrievalIndex(Protocol):
    """Anything that can retrieve ads for a query.

    The contract:

    * ``query(query, match_type=MatchType.BROAD)`` returns every matching
      :class:`~repro.core.ads.Advertisement` (broad match by default;
      phrase/exact verify token order on the same candidates);
    * ``stats()`` reports structural statistics (shape is
      implementation-defined: :class:`~repro.core.wordset_index.IndexStats`
      for the hash index, a per-shard list for the sharded one, ...);
    * ``len(index)`` is the number of indexed advertisements.
    """

    def query(
        self, query: Query, match_type: MatchType = MatchType.BROAD
    ) -> list[Advertisement]:
        """All ads matching ``query`` under ``match_type``."""
        ...

    def stats(self) -> object:
        """Structural statistics of the index."""
        ...

    def __len__(self) -> int:
        """Number of indexed advertisements."""
        ...
