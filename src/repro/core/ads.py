"""Advertisements, their metadata, and the ad corpus.

Mirrors the paper's notation (Section III-A): an advertisement ``A_i`` has a
bid ``phrase(A_i)`` and metadata ``info(A_i)`` (listing id, campaign id, bid
price, competitive-exclusion phrases, ...).  ``size(.)`` functions report the
in-memory byte footprint used by the cost model; we charge a compact binary
encoding (what a C implementation would store), not CPython object overhead,
because the cost model reasons about the paper's memory layout.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field

from repro.core.tokens import phrase_tokens


@dataclass(frozen=True, slots=True)
class AdInfo:
    """Metadata attached to an advertisement (``info(A_i)`` in the paper)."""

    listing_id: int
    campaign_id: int = 0
    bid_price_micros: int = 0
    exclusion_phrases: tuple[str, ...] = ()

    def size_bytes(self) -> int:
        """Compact encoded size: ids + price + exclusion text."""
        exclusion = sum(len(p.encode("utf-8")) + 1 for p in self.exclusion_phrases)
        return 8 + 4 + 4 + exclusion


@dataclass(frozen=True, slots=True)
class Advertisement:
    """An ad: an ordered bid phrase plus metadata.

    ``words`` is the folded word-set used for broad match; ``phrase`` keeps
    word order for phrase-match and exact-match.
    """

    phrase: tuple[str, ...]
    info: AdInfo
    words: frozenset[str] = field(init=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "words", frozenset(self.phrase))

    @classmethod
    def from_text(cls, text: str, info: AdInfo) -> Advertisement:
        """Build an ad from raw bid text (tokenized, duplicates folded)."""
        return cls(phrase=phrase_tokens(text), info=info)

    def phrase_size_bytes(self) -> int:
        """``size(phrase(A_i))``: UTF-8 bytes plus one separator per word."""
        return sum(len(w.encode("utf-8")) + 1 for w in self.phrase)

    def size_bytes(self) -> int:
        """``size(A_i)`` = phrase + metadata footprint."""
        return self.phrase_size_bytes() + self.info.size_bytes()


class AdCorpus:
    """The corpus ``A = {A_1, ..., A_n}`` with word/word-set statistics.

    Exposes the two frequency views the paper leverages: per-keyword document
    frequency (how many bids contain a word — the skewed distribution that
    hurts inverted indexes, Fig 7) and per-word-set frequency (the Zipf
    distribution of Fig 2 that makes data nodes small).
    """

    def __init__(self, ads: Iterable[Advertisement] = ()) -> None:
        self._ads: list[Advertisement] = []
        self._word_freq: Counter[str] = Counter()
        self._wordset_freq: Counter[frozenset[str]] = Counter()
        for ad in ads:
            self.add(ad)

    def add(self, ad: Advertisement) -> None:
        """Append an ad and update corpus statistics."""
        self._ads.append(ad)
        self._word_freq.update(ad.words)
        self._wordset_freq[ad.words] += 1

    def __len__(self) -> int:
        return len(self._ads)

    def __iter__(self) -> Iterator[Advertisement]:
        return iter(self._ads)

    def __getitem__(self, index: int) -> Advertisement:
        return self._ads[index]

    @property
    def ads(self) -> Sequence[Advertisement]:
        return self._ads

    def word_frequency(self, word: str) -> int:
        """Number of bids whose word-set contains ``word``."""
        return self._word_freq[word]

    def wordset_frequency(self, words: frozenset[str]) -> int:
        """Number of ads sharing exactly this word-set."""
        return self._wordset_freq[words]

    def rarest_word(self, ad: Advertisement) -> str:
        """The ad's least corpus-frequent word (ties broken lexically).

        This is the indexing key of the paper's non-redundant inverted-index
        baseline (Section I-C / VII-A strategy I).
        """
        return min(ad.words, key=lambda w: (self._word_freq[w], w))

    def distinct_wordsets(self) -> set[frozenset[str]]:
        """All distinct bid word-sets present in the corpus."""
        return set(self._wordset_freq)

    def vocabulary(self) -> set[str]:
        """The word universe ``W``."""
        return set(self._word_freq)

    def length_histogram(self) -> dict[int, int]:
        """Histogram of bid lengths in words (Fig 1)."""
        histogram: Counter[int] = Counter()
        for ad in self._ads:
            histogram[len(ad.words)] += 1
        return dict(histogram)

    def wordset_frequencies_ranked(self) -> list[int]:
        """Word-set frequencies in descending order (Fig 2 / Fig 7 series)."""
        return sorted(self._wordset_freq.values(), reverse=True)

    def word_frequencies_ranked(self) -> list[int]:
        """Keyword document frequencies in descending order (Fig 7 series)."""
        return sorted(self._word_freq.values(), reverse=True)

    def total_size_bytes(self) -> int:
        """Compact encoded size of all ads (phrases + metadata)."""
        return sum(ad.size_bytes() for ad in self._ads)
