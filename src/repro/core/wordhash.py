"""Stable, order-independent hashing of word sets.

The paper's index is keyed by ``wordhash : 2^W -> N``.  We need the hash to
be (a) independent of word order (it hashes a *set*), (b) stable across
processes and runs (CPython's ``hash`` on ``str`` is salted), and (c) cheap.

We hash each word with 64-bit FNV-1a and combine the per-word hashes with
XOR; XOR is commutative/associative, so the combination is order-free, and
because individual word hashes are well mixed, collisions between distinct
small sets are rare (and tolerated: data nodes store full phrases and every
probe verifies them, as the paper requires).
"""

from __future__ import annotations

from collections.abc import Iterable

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK64 = (1 << 64) - 1

# XOR of identical hashes cancels; the set {a, a} cannot occur (sets), but the
# empty set would hash to 0 and collide with nothing useful — give it a fixed
# non-zero value so downstream suffix arithmetic stays uniform.
_EMPTY_SET_HASH = 0x9E3779B97F4A7C15


def fnv1a(word: str) -> int:
    """64-bit FNV-1a hash of a single word (UTF-8 bytes)."""
    value = _FNV_OFFSET
    for byte in word.encode("utf-8"):
        value ^= byte
        value = (value * _FNV_PRIME) & _MASK64
    return value


def _mix(value: int) -> int:
    """Final avalanche (splitmix64 finalizer) applied to each word hash.

    FNV-1a alone has weak high-bit diffusion for short keys; XOR-combining
    unmixed values would correlate sets sharing words.  The finalizer makes
    each word hash behave like a random 64-bit value.
    """
    value = (value ^ (value >> 30)) * 0xBF58476D1CE4E5B9 & _MASK64
    value = (value ^ (value >> 27)) * 0x94D049BB133111EB & _MASK64
    return value ^ (value >> 31)


def wordhash(words: Iterable[str]) -> int:
    """Order-independent 64-bit hash of a set of words.

    >>> wordhash({"used", "books"}) == wordhash(["books", "used"])
    True
    """
    combined = 0
    empty = True
    for word in set(words):
        combined ^= _mix(fnv1a(word))
        empty = False
    if empty:
        return _EMPTY_SET_HASH
    return combined


def hash_suffix(value: int, bits: int) -> int:
    """Return the low-order ``bits``-bit suffix of a hash value.

    Used by the compressed lookup structure of Section VI (``B^sig`` is
    indexed by the s-bit suffix of ``wordhash``).
    """
    if bits <= 0:
        raise ValueError("suffix size must be positive")
    if bits >= 64:
        return value
    return value & ((1 << bits) - 1)
