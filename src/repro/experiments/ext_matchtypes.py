"""Extension experiment: one structure, three match types.

Section III-B claims the word-set index "can trivially also be used to
process other match-types used in sponsored search" — only the final
verification against the stored phrase changes.  This experiment measures
that claim: the same trace processed under broad, phrase, and exact
semantics on the same index, with a purpose-built exact-match hash table
(phrase -> ads) as the specialist baseline exact match is compared to.

Expected shape: phrase/exact cost the same probes as broad (identical
traversal) with progressively fewer results (broad ⊇ phrase ⊇ exact); the
specialist table does one probe instead of subset enumeration but fetches
a record per bucket entry, so on web-short queries the unified structure
is competitive even at the specialist's own game.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.core.ads import Advertisement
from repro.core.matching import MatchType, exact_match
from repro.core.queries import Query
from repro.cost.accounting import AccessStats, AccessTracker
from repro.datagen.corpus import CorpusConfig, generate_corpus
from repro.datagen.querygen import QueryConfig, generate_workload
from repro.experiments.common import MODEL, SMALL, Scale, format_table
from repro.optimize.remap import build_index


class ExactMatchTable:
    """Specialist baseline: hash of the full word-set, phrase-verified."""

    def __init__(self, ads, tracker: AccessTracker | None = None) -> None:
        self.tracker = tracker
        self._table: dict[frozenset[str], list[Advertisement]] = defaultdict(list)
        for ad in ads:
            self._table[ad.words].append(ad)

    def query_exact(self, query: Query) -> list[Advertisement]:
        if self.tracker is not None:
            self.tracker.hash_probe(16)
        bucket = self._table.get(query.words, [])
        results = []
        for ad in bucket:
            if self.tracker is not None:
                self.tracker.random_access(ad.size_bytes())
            if exact_match(ad.phrase, query.tokens):
                results.append(ad)
        if self.tracker is not None:
            self.tracker.query_done()
        return results


@dataclass(frozen=True, slots=True)
class MatchTypeMeasurement:
    name: str
    stats: AccessStats
    total_matches: int

    @property
    def modeled_ms(self) -> float:
        return self.stats.modeled_ns(MODEL) / 1e6


@dataclass(frozen=True, slots=True)
class ExtMatchTypesResult:
    measurements: list[MatchTypeMeasurement]

    def by_name(self, name: str) -> MatchTypeMeasurement:
        return next(m for m in self.measurements if m.name == name)


def run(scale: Scale = SMALL, seed: int = 0) -> ExtMatchTypesResult:
    generated = generate_corpus(CorpusConfig(num_ads=scale.num_ads, seed=seed))
    corpus = generated.corpus
    workload = generate_workload(
        generated,
        QueryConfig(
            num_distinct=scale.num_distinct_queries,
            total_frequency=scale.total_query_frequency,
            seed=seed + 100,
        ),
    )
    # Mix in exact-phrase queries (queries that literally are bid phrases)
    # so exact/phrase match have hits to verify.
    trace = workload.sample_stream(scale.trace_length // 2, seed=seed + 3)
    trace += [
        Query(tokens=corpus[i % len(corpus)].phrase)
        for i in range(scale.trace_length // 2)
    ]

    measurements = []
    for name, match_type in (
        ("broad", MatchType.BROAD),
        ("phrase", MatchType.PHRASE),
        ("exact", MatchType.EXACT),
    ):
        tracker = AccessTracker()
        index = build_index(corpus, None, tracker=tracker)
        total = 0
        for query in trace:
            total += len(index.query(query, match_type))
        measurements.append(
            MatchTypeMeasurement(
                name=name, stats=tracker.reset(), total_matches=total
            )
        )

    tracker = AccessTracker()
    exact_table = ExactMatchTable(corpus, tracker=tracker)
    total = 0
    for query in trace:
        total += len(exact_table.query_exact(query))
    measurements.append(
        MatchTypeMeasurement(
            name="exact (dedicated table)",
            stats=tracker.reset(),
            total_matches=total,
        )
    )
    return ExtMatchTypesResult(measurements=measurements)


def format_report(result: ExtMatchTypesResult) -> str:
    rows = [
        [
            m.name,
            f"{m.total_matches:,}",
            f"{m.stats.random_accesses:,}",
            f"{m.modeled_ms:.2f}",
        ]
        for m in result.measurements
    ]
    table = format_table(
        ["semantics", "matches", "random acc", "modeled ms"], rows
    )
    return (
        "Extension — broad / phrase / exact match on one structure\n"
        f"{table}\n"
        "(the unified index serves all three with identical traversal —\n"
        " §III-B's claim — and on web-short queries is even competitive\n"
        " with a dedicated exact-match table, which pays a record fetch\n"
        " per bucket entry where the unified index early-terminates)\n"
    )
