"""Section VII-A — throughput vs the inverted-index baselines.

Paper headline numbers on 180M ads / 5M real queries, with the word-set
index in its *simplest* configuration (no re-mapping, no workload
adaptation):

* 99x the throughput of the unmodified (rarest-word) inverted index;
* >1300x the throughput of the modified (counting) inverted index;
* the no-merge control (touch every required posting once, no processing)
  shows the same 3-orders-of-magnitude data-volume gap.

We replay a query trace against all structures with full access
accounting, convert counts to modeled time, and report throughput factors
plus the bucket-size statistics (~3000 -> ~100) the paper uses to explain
the gap.  At our corpus scale the factors are smaller but the ordering and
growth trend (see Fig 8) reproduce.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cost.accounting import AccessStats, AccessTracker
from repro.experiments.common import MODEL, SMALL, Scale, format_table, standard_setup
from repro.invindex.counting import CountingInvertedIndex
from repro.invindex.nonredundant import NonRedundantInvertedIndex
from repro.optimize.remap import build_index


@dataclass(frozen=True, slots=True)
class StructureRun:
    name: str
    stats: AccessStats

    @property
    def modeled_ns(self) -> float:
        return self.stats.modeled_ns(MODEL)

    def throughput_qps(self) -> float:
        if self.modeled_ns == 0:
            return float("inf")
        return self.stats.queries / (self.modeled_ns * 1e-9)


@dataclass(frozen=True, slots=True)
class ThroughputResult:
    wordset: StructureRun
    nonredundant: StructureRun
    counting: StructureRun
    counting_no_merge: StructureRun
    mean_popular_keyword_bucket: float
    mean_popular_wordset_bucket: float

    def speedup_vs(self, baseline: StructureRun) -> float:
        return self.wordset.throughput_qps() and (
            self.wordset.throughput_qps() / baseline.throughput_qps()
        )


def run(scale: Scale = SMALL, seed: int = 0) -> ThroughputResult:
    _, corpus, workload = standard_setup(scale, seed=seed)
    queries = workload.sample_stream(scale.trace_length, seed=seed + 5)

    def replay(structure, method="query") -> AccessStats:
        for query in queries:
            getattr(structure, method)(query)
        return structure.tracker.reset()

    wordset = build_index(corpus, None, tracker=AccessTracker())
    nonredundant = NonRedundantInvertedIndex.from_corpus(
        corpus, tracker=AccessTracker()
    )
    counting = CountingInvertedIndex.from_corpus(corpus, tracker=AccessTracker())
    counting_ctrl = CountingInvertedIndex.from_corpus(
        corpus, tracker=AccessTracker()
    )

    wordset_run = StructureRun("word-set index", replay(wordset))
    nonredundant_run = StructureRun(
        "unmodified inverted", replay(nonredundant)
    )
    counting_run = StructureRun("modified inverted", replay(counting))
    control_run = StructureRun(
        "modified inverted (no merge)",
        replay(counting_ctrl, method="query_broad_no_merge"),
    )

    keyword_buckets = sorted(
        (len(p) for p in counting.lists.values()), reverse=True
    )
    wordset_buckets = sorted(
        (len(n) for n in wordset.nodes.values()), reverse=True
    )
    top_k = max(1, len(keyword_buckets) // 100)
    top_n = max(1, len(wordset_buckets) // 100)
    return ThroughputResult(
        wordset=wordset_run,
        nonredundant=nonredundant_run,
        counting=counting_run,
        counting_no_merge=control_run,
        mean_popular_keyword_bucket=sum(keyword_buckets[:top_k]) / top_k,
        mean_popular_wordset_bucket=sum(wordset_buckets[:top_n]) / top_n,
    )


def format_report(result: ThroughputResult) -> str:
    runs = [
        result.wordset,
        result.nonredundant,
        result.counting,
        result.counting_no_merge,
    ]
    rows = []
    for run_ in runs:
        speedup = result.wordset.throughput_qps() / run_.throughput_qps()
        rows.append(
            [
                run_.name,
                f"{run_.stats.random_accesses:,}",
                f"{run_.stats.bytes_scanned:,}",
                f"{run_.throughput_qps():,.0f}",
                f"{speedup:.1f}x",
            ]
        )
    table = format_table(
        ["structure", "random accesses", "bytes", "modeled qps", "ours vs it"],
        rows,
    )
    return (
        "Section VII-A — broad-match throughput vs inverted indexes\n"
        f"{table}\n"
        "(paper at 180M ads: 99x vs unmodified, >1300x vs modified; the\n"
        " factors grow with corpus size — see Fig 8)\n"
        f"mean popular-bucket size: keywords "
        f"{result.mean_popular_keyword_bucket:.0f} vs word-sets "
        f"{result.mean_popular_wordset_bucket:.0f} (paper: ~3000 -> ~100)\n"
    )
