"""Extension experiment: VII-A at the hardware-counter level.

Section VII-A explains the inverted baselines' slowness via data volume
(bytes); Section VII-C introduces hardware counters but only for the
remap/no-remap comparison.  This extension closes the gap: the word-set
index and the rarest-word inverted index replayed through the same
TLB / L1+L2 / branch models, so the byte-count argument becomes visible as
page walks and cache misses.

Expected shape: the inverted layout touches more pages (every candidate
fetch is a random record access) — more DTLB misses and page-walk cycles —
and more cache lines, at our scale by integer factors that grow with the
corpus like Fig 8's byte ratios.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import SMALL, Scale, format_table, standard_setup
from repro.invindex.nonredundant import NonRedundantInvertedIndex
from repro.memsim.cache import Cache, CacheHierarchy
from repro.memsim.counters import HardwareCounters, run_traced_workload
from repro.memsim.inverted_layout import (
    InvertedLayout,
    run_traced_inverted_workload,
)
from repro.memsim.layout import IndexLayout
from repro.memsim.tlb import Tlb
from repro.optimize.remap import build_index


@dataclass(frozen=True, slots=True)
class ExtHwCompareResult:
    wordset: HardwareCounters
    inverted: HardwareCounters

    @property
    def dtlb_ratio(self) -> float:
        return self.inverted.dtlb_misses / max(1, self.wordset.dtlb_misses)

    @property
    def walk_ratio(self) -> float:
        return self.inverted.page_walk_cycles / max(
            1, self.wordset.page_walk_cycles
        )

    @property
    def l2_ratio(self) -> float:
        return self.inverted.l2_misses / max(1, self.wordset.l2_misses)


def _machine():
    return (
        Tlb(entries=8, page_table_reach=2),
        CacheHierarchy(
            l1=Cache(size_bytes=4 * 1024, associativity=4),
            l2=Cache(size_bytes=16 * 1024, associativity=4),
        ),
    )


def run(scale: Scale = SMALL, seed: int = 0) -> ExtHwCompareResult:
    _, corpus, workload = standard_setup(scale, seed=seed)
    queries = workload.sample_stream(
        min(scale.trace_length, 1_500), seed=seed + 23
    )
    tlb_a, cache_a = _machine()
    wordset = run_traced_workload(
        IndexLayout(build_index(corpus, None)), queries,
        tlb=tlb_a, cache=cache_a,
    )
    tlb_b, cache_b = _machine()
    inverted = run_traced_inverted_workload(
        InvertedLayout(NonRedundantInvertedIndex.from_corpus(corpus)),
        queries,
        tlb=tlb_b,
        cache=cache_b,
    )
    return ExtHwCompareResult(wordset=wordset, inverted=inverted)


def format_report(result: ExtHwCompareResult) -> str:
    rows = [
        [
            "memory accesses",
            f"{result.wordset.memory_accesses:,}",
            f"{result.inverted.memory_accesses:,}",
        ],
        [
            "DTLB misses",
            f"{result.wordset.dtlb_misses:,}",
            f"{result.inverted.dtlb_misses:,}",
        ],
        [
            "page-walk cycles",
            f"{result.wordset.page_walk_cycles:,}",
            f"{result.inverted.page_walk_cycles:,}",
        ],
        [
            "L1 misses",
            f"{result.wordset.l1_misses:,}",
            f"{result.inverted.l1_misses:,}",
        ],
        [
            "L2 misses",
            f"{result.wordset.l2_misses:,}",
            f"{result.inverted.l2_misses:,}",
        ],
    ]
    table = format_table(["counter", "word-set index", "inverted index"], rows)
    return (
        "Extension — VII-A at the hardware level (trace-driven models)\n"
        f"{table}\n"
        f"inverted/word-set ratios: DTLB {result.dtlb_ratio:.1f}x, "
        f"page walks {result.walk_ratio:.1f}x, L2 {result.l2_ratio:.1f}x\n"
        "(the Fig 8 byte-volume gap, observed as pages and cache lines)\n"
    )
