"""Fig 9 / Section VII-B — response-latency distribution on two servers.

Paper setup: index and ad data on two different servers; every query pays
network latency on both hops.  Reported: latency distribution in 5 ms
buckets (smoothed); ~75% of requests within 10 ms for the word-set index
vs ~32% for the (unmodified non-redundant) inverted index.

Our substitute: a discrete-event simulation where each structure's
per-query CPU demand is its cost-model time for that query, scaled to CPU
milliseconds; the arrival rate is set near the inverted index's saturation
point (the paper's methodology) and both structures are measured at the
same rate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.queries import Query
from repro.cost.accounting import AccessTracker
from repro.distsim.cluster import ClusterConfig, TwoTierCluster
from repro.distsim.metrics import RunMetrics
from repro.experiments.common import MODEL, SMALL, Scale, format_table, standard_setup
from repro.invindex.nonredundant import NonRedundantInvertedIndex
from repro.optimize.remap import build_index

#: Target mean CPU per query for the inverted baseline: the paper's 2274
#: RPS on 4 cores implies ~1.76 ms/query.  Both structures share the single
#: scale factor derived from this target, so only their *relative* modeled
#: costs — the quantity our substrate measures faithfully — shape the
#: comparison.
TARGET_INVERTED_SERVICE_MS = 1.76

#: CPU of the final ad-data fetch/rank step, identical for both systems.
DATA_SERVICE_MS = 0.05

#: Per-query CPU spent outside the index structure (request parsing,
#: network stack, result assembly) — identical for both systems, and the
#: reason the paper's two-server RPS gain is ~2.5x while its pure
#: index-throughput gain is 99x.
INDEX_CPU_OVERHEAD_MS = 0.45

#: Fraction of the baseline's capacity at which the common arrival rate is
#: set (the paper drives load to the saturation of the slower structure).
LOAD_FACTOR = 0.90


def _modeled_ns_table(structure, queries: list[Query]) -> dict[Query, float]:
    """Per-distinct-query modeled nanoseconds for a structure."""
    table: dict[Query, float] = {}
    tracker = structure.tracker
    for query in set(queries):
        tracker.reset()
        structure.query(query)
        table[query] = tracker.reset().modeled_ns(MODEL)
    return table


def calibrated_service_tables(
    wordset_index, inverted_index, queries: list[Query]
) -> tuple[dict[Query, float], dict[Query, float], float]:
    """Service tables for both structures under one shared scale factor.

    Per-query CPU = fixed non-index overhead + modeled index nanoseconds
    scaled by a single factor chosen so the inverted baseline's mean lands
    on TARGET_INVERTED_SERVICE_MS.  Only the structures' *relative* modeled
    costs — the quantity the substrate measures faithfully — differ between
    the two tables.
    """
    inverted_ns = _modeled_ns_table(inverted_index, queries)
    wordset_ns = _modeled_ns_table(wordset_index, queries)
    mean_ns = sum(inverted_ns.values()) / max(1, len(inverted_ns))
    index_budget_ms = TARGET_INVERTED_SERVICE_MS - INDEX_CPU_OVERHEAD_MS
    ms_per_ns = index_budget_ms / max(1.0, mean_ns)

    def service(ns_table: dict[Query, float]) -> dict[Query, float]:
        return {
            query: INDEX_CPU_OVERHEAD_MS + ns * ms_per_ns
            for query, ns in ns_table.items()
        }

    return service(wordset_ns), service(inverted_ns), ms_per_ns


@dataclass(frozen=True, slots=True)
class Fig9Result:
    arrival_rate_qps: float
    wordset: RunMetrics
    inverted: RunMetrics

    def within_10ms(self) -> tuple[float, float]:
        return (
            self.wordset.fraction_within(10.0),
            self.inverted.fraction_within(10.0),
        )


def run(scale: Scale = SMALL, seed: int = 0) -> Fig9Result:
    _, corpus, workload = standard_setup(scale, seed=seed)
    queries = workload.sample_stream(scale.trace_length, seed=seed + 3)

    wordset_index = build_index(corpus, None, tracker=AccessTracker())
    inverted_index = NonRedundantInvertedIndex.from_corpus(
        corpus, tracker=AccessTracker()
    )
    wordset_service, inverted_service, _ = calibrated_service_tables(
        wordset_index, inverted_index, queries
    )

    config = ClusterConfig(
        duration_ms=4_000.0,
        network_base_ms=1.2,
        network_jitter_ms=0.8,
        seed=seed,
    )
    # Arrival rate near the inverted index's capacity: cores / mean service.
    mean_inverted_ms = sum(inverted_service.values()) / len(inverted_service)
    rate = LOAD_FACTOR * config.cores_per_server / (mean_inverted_ms / 1000.0)

    def make_cluster(service: dict[Query, float]) -> TwoTierCluster:
        return TwoTierCluster(
            index_service_ms=lambda q: service[q],
            data_service_ms=lambda q: DATA_SERVICE_MS,
            config=config,
        )

    wordset_metrics = make_cluster(wordset_service).run(queries, rate)
    inverted_metrics = make_cluster(inverted_service).run(queries, rate)
    return Fig9Result(
        arrival_rate_qps=rate,
        wordset=wordset_metrics,
        inverted=inverted_metrics,
    )


def format_report(result: Fig9Result) -> str:
    ws_hist = result.wordset.latency_histogram()
    inv_hist = result.inverted.latency_histogram()
    buckets = sorted(set(ws_hist) | set(inv_hist))[:12]
    rows = [
        [
            f"{bucket:.0f}-{bucket + 5:.0f} ms",
            f"{ws_hist.get(bucket, 0.0):.1%}",
            f"{inv_hist.get(bucket, 0.0):.1%}",
        ]
        for bucket in buckets
    ]
    table = format_table(["latency bucket", "word-set index", "inverted index"], rows)
    ws10, inv10 = result.within_10ms()
    return (
        "Fig 9 — response latency distribution (5 ms buckets)\n"
        f"arrival rate: {result.arrival_rate_qps:.0f} qps (near inverted "
        "saturation)\n"
        f"{table}\n"
        f"within 10 ms: word-set {ws10:.0%} vs inverted {inv10:.0%} "
        "(paper: 75% vs 32%)\n"
    )
