"""Fig 2 — ads per word-set follow a Long Tail (Zipf) distribution.

Paper: the frequency of the top 32K word-combinations in 1.8M ads is a
straight line on a log-log plot.  We rank the synthetic corpus's word-set
frequencies, report the head of the series (what Fig 2 plots) and the
fitted log-log slope, and check most word-sets have very few ads.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datagen.zipf import fit_power_law_slope
from repro.experiments.common import SMALL, Scale, format_table, standard_setup


@dataclass(frozen=True, slots=True)
class Fig2Result:
    ranked_frequencies: list[int]
    slope: float
    median_frequency: int

    def head(self, n: int = 10) -> list[int]:
        return self.ranked_frequencies[:n]


def run(scale: Scale = SMALL, seed: int = 0, top_k: int = 32_000) -> Fig2Result:
    _, corpus, _ = standard_setup(scale, seed=seed)
    ranked = corpus.wordset_frequencies_ranked()[:top_k]
    slope = fit_power_law_slope(ranked[: min(len(ranked), 2000)])
    return Fig2Result(
        ranked_frequencies=ranked,
        slope=slope,
        median_frequency=ranked[len(ranked) // 2] if ranked else 0,
    )


def format_report(result: Fig2Result) -> str:
    sample_ranks = [1, 2, 3, 5, 10, 30, 100, 300, 1000]
    rows = []
    for rank in sample_ranks:
        if rank <= len(result.ranked_frequencies):
            rows.append([str(rank), str(result.ranked_frequencies[rank - 1])])
    table = format_table(["rank", "ads for word-set"], rows)
    return (
        "Fig 2 — word-set frequency distribution (log-log)\n"
        f"{table}\n"
        f"fitted log-log slope: {result.slope:.2f} "
        "(Zipf law: straight line, slope ≈ -1)\n"
        f"median word-set frequency: {result.median_frequency} "
        "(long tail: most word-sets have very few ads)\n"
    )
