"""Extension experiment: scaling out with scatter-gather shards.

Section VII-B covers the two-server (index + data) split; this extension
studies the next step — hash-partitioning the corpus across N index shards
— with the discrete-event scatter-gather cluster: per-shard CPU work
shrinks ~1/N, but every query pays the *maximum* of N network legs.

Expected shape: latency improves with shards while per-shard service time
dominates, then flattens (and can regress) once the straggler network leg
dominates; throughput scales near-linearly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.sharded import ShardedWordSetIndex
from repro.cost.accounting import AccessTracker
from repro.datagen.corpus import CorpusConfig, generate_corpus
from repro.datagen.querygen import QueryConfig, generate_workload
from repro.distsim.scatter import ScatterConfig, ScatterGatherCluster
from repro.experiments.common import MODEL, SMALL, Scale, format_table

#: Scale factor from modeled ns to simulated CPU ms (as in fig9, but
#: heavier per-query work so sharding has something to divide).
MS_PER_NS = 2e-3


@dataclass(frozen=True, slots=True)
class ShardPoint:
    num_shards: int
    mean_latency_ms: float
    p95_latency_ms: float
    achieved_rps: float
    cpu_utilization: float
    balance_factor: float


@dataclass(frozen=True, slots=True)
class ExtShardingResult:
    points: list[ShardPoint]
    arrival_rate_qps: float


def run(scale: Scale = SMALL, seed: int = 0) -> ExtShardingResult:
    generated = generate_corpus(CorpusConfig(num_ads=scale.num_ads, seed=seed))
    workload = generate_workload(
        generated,
        QueryConfig(
            num_distinct=scale.num_distinct_queries,
            total_frequency=scale.total_query_frequency,
            seed=seed + 100,
        ),
    )
    corpus = generated.corpus
    queries = workload.sample_stream(
        min(scale.trace_length, 1_000), seed=seed + 5
    )

    arrival = 800.0
    points = []
    for num_shards in (1, 2, 4, 8):
        trackers = [AccessTracker() for _ in range(num_shards)]
        sharded = ShardedWordSetIndex.from_corpus(
            corpus, num_shards=num_shards, trackers=trackers
        )
        # Per-shard modeled service per distinct query.
        service_tables: list[dict] = [dict() for _ in range(num_shards)]
        for query in set(queries):
            for i, (shard, tracker) in enumerate(
                zip(sharded.shards, trackers)
            ):
                tracker.reset()
                shard.query(query)
                service_tables[i][query] = max(
                    0.001, tracker.reset().modeled_ns(MODEL) * MS_PER_NS
                )

        cluster = ScatterGatherCluster(
            lambda i, q: service_tables[i][q],
            ScatterConfig(num_shards=num_shards, duration_ms=2_500.0,
                          seed=seed),
        )
        metrics = cluster.run(queries, arrival_rate_qps=arrival)
        points.append(
            ShardPoint(
                num_shards=num_shards,
                mean_latency_ms=metrics.mean_latency_ms(),
                p95_latency_ms=metrics.percentile_ms(95),
                achieved_rps=metrics.achieved_rps,
                cpu_utilization=metrics.cpu_utilization,
                balance_factor=sharded.balance_factor(),
            )
        )
    return ExtShardingResult(points=points, arrival_rate_qps=arrival)


def format_report(result: ExtShardingResult) -> str:
    rows = [
        [
            str(p.num_shards),
            f"{p.mean_latency_ms:.2f}",
            f"{p.p95_latency_ms:.2f}",
            f"{p.achieved_rps:,.0f}",
            f"{p.cpu_utilization:.0%}",
            f"{p.balance_factor:.2f}",
        ]
        for p in result.points
    ]
    table = format_table(
        ["shards", "mean ms", "p95 ms", "rps", "cpu/shard", "balance"], rows
    )
    return (
        "Extension — scatter-gather sharding "
        f"(arrival {result.arrival_rate_qps:.0f} qps)\n"
        f"{table}\n"
        "(per-shard CPU falls ~1/N; the gather step pays the slowest of N\n"
        " network legs, bounding the latency win)\n"
    )
