"""One module per table/figure of the paper's evaluation.

=================  ===========================================================
``fig1``           bid-length histogram (62% / 96% / 99.8% anchors)
``fig2``           Zipf distribution of word-set frequencies
``fig3``           MT rule lengths vs bid lengths
``fig7``           keyword vs word-combination frequency skew (~3000 vs ~100)
``fig8``           bytes-processed ratio vs corpus size (>= 4x, rising)
``fig9``           two-server response-latency distribution (75% vs 32% <= 10ms)
``fig10``          re-mapping impact (long-only + ~10% from full re-mapping)
``tab-inverted``   Section VII-A throughput factors (99x / 1300x at scale)
``tab-multiserver``Section VII-B CPU 98->42%, RPS 2274->5775
``tab-counters``   Section VII-C DTLB/page-walk/L2/branch counter deltas
``tab-compression``Section VI worked example (≈9:1) + measured structures
=================  ===========================================================

Run them all via ``python -m repro.experiments.runner``.
"""
