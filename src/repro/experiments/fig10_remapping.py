"""Fig 10 — impact of node re-mapping on workload processing time.

Paper: processing a 500K-distinct-query skewed workload under three
structures — (a) no re-mapping (every query probes *all* subsets of its
words), (b) re-mapping of long phrases only (``max_words = 10`` caps node
locators, so queries only probe subsets up to that size), and (c) full
re-mapping with the greedy set-cover mapping.  Re-mapping long queries
yields the bulk of the win; full re-mapping adds roughly another 10% over
(b).

The no-remap structure's cost on the workload's long-query tail is
``2^|Q| - 1`` hash probes per query — actually enumerating millions of
subsets in CPython would measure the interpreter, not the structure, so
this experiment evaluates the paper's own cost model analytically
(``Cost_Hash`` in closed form + ``Cost_Node`` over the built index), which
tests verify equals executed-and-tracked cost on enumerable workloads.

The report gives relative total times plus the node-access component in
isolation: with a synthetic trace, probe misses dilute the data-node share
of total cost below a real trace's, so the ~10% gain of (c) over (b)
concentrates in the node component (see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cost.workload_cost import cost_hash, cost_node
from repro.datagen.corpus import CorpusConfig, generate_corpus
from repro.datagen.querygen import QueryConfig, generate_workload
from repro.experiments.common import MODEL, SMALL, Scale, format_table
from repro.optimize.mapping import OptimizerConfig, optimize_mapping
from repro.optimize.remap import build_index, long_phrase_mapping

MAX_WORDS = 10


@dataclass(frozen=True, slots=True)
class Fig10Result:
    no_remap_total_ns: float
    long_only_total_ns: float
    full_remap_total_ns: float
    long_only_node_ns: float
    full_remap_node_ns: float
    nodes_before: int
    nodes_after: int

    @property
    def relative(self) -> dict[str, float]:
        base = self.no_remap_total_ns or 1.0
        return {
            "no re-mapping": 1.0,
            "long phrases only": self.long_only_total_ns / base,
            "full re-mapping": self.full_remap_total_ns / base,
        }

    @property
    def full_vs_long_total_gain(self) -> float:
        if self.long_only_total_ns == 0:
            return 0.0
        return 1.0 - self.full_remap_total_ns / self.long_only_total_ns

    @property
    def full_vs_long_node_gain(self) -> float:
        """Improvement of (c) over (b) on data-node access cost alone."""
        if self.long_only_node_ns == 0:
            return 0.0
        return 1.0 - self.full_remap_node_ns / self.long_only_node_ns


def run(scale: Scale = SMALL, seed: int = 0) -> Fig10Result:
    # A denser vocabulary than the default (more subset/superset sharing
    # between bids — the structure Figs 4-5 illustrate) and a workload with
    # a rare long-query tail, the case the max_words bound exists for.
    generated = generate_corpus(
        CorpusConfig(
            num_ads=scale.num_ads,
            vocabulary_size=max(100, scale.num_ads // 7),
            seed=seed,
        )
    )
    workload = generate_workload(
        generated,
        QueryConfig(
            num_distinct=scale.num_distinct_queries * 2,
            total_frequency=scale.total_query_frequency,
            max_anchor_words=5,
            long_tail_fraction=0.004,
            long_tail_min_words=14,
            long_tail_max_words=20,
            seed=seed + 100,
        ),
    )
    corpus = generated.corpus

    # (a) identity placement, every subset probed (max_words=None).
    no_remap = build_index(corpus, None)
    # (b) long phrases re-mapped; probes capped at max_words.
    long_only = build_index(corpus, long_phrase_mapping(corpus, MAX_WORDS))
    # (c) the full workload-driven set-cover mapping.
    full = build_index(
        corpus,
        optimize_mapping(
            corpus, workload, MODEL, OptimizerConfig(max_words=MAX_WORDS)
        ),
    )

    hash_unbounded = cost_hash(workload, MODEL, None)
    hash_bounded = cost_hash(workload, MODEL, MAX_WORDS)
    node_a = cost_node(no_remap, workload, MODEL)
    node_b = cost_node(long_only, workload, MODEL)
    node_c = cost_node(full, workload, MODEL)
    return Fig10Result(
        no_remap_total_ns=hash_unbounded + node_a,
        long_only_total_ns=hash_bounded + node_b,
        full_remap_total_ns=hash_bounded + node_c,
        long_only_node_ns=node_b,
        full_remap_node_ns=node_c,
        nodes_before=long_only.stats().num_nodes,
        nodes_after=full.stats().num_nodes,
    )


def format_report(result: Fig10Result) -> str:
    rows = [
        [name, f"{value:.3f}"] for name, value in result.relative.items()
    ]
    table = format_table(["structure", "relative time"], rows)
    return (
        "Fig 10 — re-mapping impact on workload time (max_words = 10)\n"
        f"{table}\n"
        f"full re-mapping vs long-only: total {result.full_vs_long_total_gain:+.1%}, "
        f"node-access component {result.full_vs_long_node_gain:+.1%} "
        "(paper: ~10%)\n"
        f"data nodes: {result.nodes_before} -> {result.nodes_after} after "
        "set-cover merging\n"
    )
