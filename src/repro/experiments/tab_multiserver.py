"""Section VII-B — the multi-server comparison table.

Paper (index and ad data on two servers, arrival rate pushed to the
inverted index's saturation): CPU utilization 98% (inverted) vs 42%
(word-set index); requests per second 2274 vs 5775 (>2x).

We reproduce the methodology with the discrete-event cluster: find each
structure's saturation rate, then additionally measure both at the
inverted index's saturation rate for the CPU-utilization comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.queries import Query
from repro.cost.accounting import AccessTracker
from repro.distsim.cluster import ClusterConfig, TwoTierCluster, find_saturation_rate
from repro.experiments.common import SMALL, Scale, format_table, standard_setup
from repro.experiments.fig9_latency_dist import (
    DATA_SERVICE_MS,
    calibrated_service_tables,
)
from repro.invindex.nonredundant import NonRedundantInvertedIndex
from repro.optimize.remap import build_index


@dataclass(frozen=True, slots=True)
class MultiServerResult:
    wordset_saturation_rps: float
    inverted_saturation_rps: float
    wordset_cpu_at_common_rate: float
    inverted_cpu_at_common_rate: float
    common_rate_qps: float

    @property
    def rps_gain(self) -> float:
        """Paper: 5775 / 2274 ≈ 2.5x."""
        return self.wordset_saturation_rps / max(1e-9, self.inverted_saturation_rps)


def run(scale: Scale = SMALL, seed: int = 0) -> MultiServerResult:
    _, corpus, workload = standard_setup(scale, seed=seed)
    queries = workload.sample_stream(
        min(scale.trace_length, 2_000), seed=seed + 11
    )

    wordset_index = build_index(corpus, None, tracker=AccessTracker())
    inverted_index = NonRedundantInvertedIndex.from_corpus(
        corpus, tracker=AccessTracker()
    )
    wordset_service, inverted_service, _ = calibrated_service_tables(
        wordset_index, inverted_index, queries
    )

    config = ClusterConfig(duration_ms=3_000.0, seed=seed)

    def make_cluster(service: dict[Query, float]) -> TwoTierCluster:
        return TwoTierCluster(
            index_service_ms=lambda q: service[q],
            data_service_ms=lambda q: DATA_SERVICE_MS,
            config=config,
        )

    wordset_cluster = make_cluster(wordset_service)
    inverted_cluster = make_cluster(inverted_service)

    wordset_rate, wordset_metrics = find_saturation_rate(
        wordset_cluster, queries, start_qps=500.0, growth=1.25, max_steps=16
    )
    inverted_rate, inverted_metrics = find_saturation_rate(
        inverted_cluster, queries, start_qps=500.0, growth=1.25, max_steps=16
    )

    # Measure CPU at the common (inverted-saturating) rate.
    common_rate = inverted_rate
    wordset_at_common = wordset_cluster.run(queries, common_rate)
    inverted_at_common = inverted_cluster.run(queries, common_rate)

    return MultiServerResult(
        wordset_saturation_rps=wordset_metrics.achieved_rps,
        inverted_saturation_rps=inverted_metrics.achieved_rps,
        wordset_cpu_at_common_rate=wordset_at_common.cpu_utilization,
        inverted_cpu_at_common_rate=inverted_at_common.cpu_utilization,
        common_rate_qps=common_rate,
    )


def format_report(result: MultiServerResult) -> str:
    rows = [
        [
            "word-set index",
            f"{result.wordset_saturation_rps:,.0f}",
            f"{result.wordset_cpu_at_common_rate:.0%}",
        ],
        [
            "inverted index",
            f"{result.inverted_saturation_rps:,.0f}",
            f"{result.inverted_cpu_at_common_rate:.0%}",
        ],
    ]
    table = format_table(
        ["structure", "saturation rps", f"CPU @ {result.common_rate_qps:.0f} qps"],
        rows,
    )
    return (
        "Section VII-B — two-server deployment\n"
        f"{table}\n"
        f"throughput gain: {result.rps_gain:.1f}x "
        "(paper: 2274 -> 5775 rps, ~2.5x; CPU 98% -> 42%)\n"
    )
