"""Shared setup for the experiment modules: scaled corpus/workload builders.

Every experiment accepts a :class:`Scale` so the same code serves fast CI
runs (``SMALL``), the benchmark harness (``BENCH``), and fuller CLI runs
(``MEDIUM``/``LARGE``).  The paper's corpora are 1.8M-290M ads; CPython
holds 10^4-10^6, and all size-dependent claims are evaluated as trends.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.ads import AdCorpus
from repro.core.queries import Workload
from repro.cost.model import CostModel
from repro.datagen.corpus import CorpusConfig, GeneratedCorpus, generate_corpus
from repro.datagen.querygen import QueryConfig, generate_workload


@dataclass(frozen=True, slots=True)
class Scale:
    """Experiment sizing knobs."""

    name: str
    num_ads: int
    num_distinct_queries: int
    total_query_frequency: int
    trace_length: int


SMALL = Scale(
    name="small",
    num_ads=2_000,
    num_distinct_queries=300,
    total_query_frequency=5_000,
    trace_length=1_000,
)
BENCH = Scale(
    name="bench",
    num_ads=5_000,
    num_distinct_queries=600,
    total_query_frequency=20_000,
    trace_length=2_000,
)
MEDIUM = Scale(
    name="medium",
    num_ads=20_000,
    num_distinct_queries=2_000,
    total_query_frequency=100_000,
    trace_length=10_000,
)
LARGE = Scale(
    name="large",
    num_ads=100_000,
    num_distinct_queries=5_000,
    total_query_frequency=500_000,
    trace_length=50_000,
)

SCALES = {s.name: s for s in (SMALL, BENCH, MEDIUM, LARGE)}

#: The cost model used across all experiments (see DESIGN.md calibration).
MODEL = CostModel()


def standard_setup(
    scale: Scale, seed: int = 0
) -> tuple[GeneratedCorpus, AdCorpus, Workload]:
    """The corpus + workload pair most experiments share."""
    generated = generate_corpus(
        CorpusConfig(num_ads=scale.num_ads, seed=seed)
    )
    workload = generate_workload(
        generated,
        QueryConfig(
            num_distinct=scale.num_distinct_queries,
            total_frequency=scale.total_query_frequency,
            seed=seed + 100,
        ),
    )
    return generated, generated.corpus, workload


def format_table(headers: list[str], rows: list[list[str]]) -> str:
    """Plain-text table used by every experiment report."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in rows:
        lines.append("  ".join(c.ljust(widths[i]) for i, c in enumerate(row)))
    return "\n".join(lines)
