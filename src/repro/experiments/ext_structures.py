"""Extension experiment: hash vs trie vs compressed lookup head-to-head.

Not a paper table — the paper mentions tree-structured lookup tables
(Section III-B) and the compressed structure (Section VI) without
benchmarking them against the hash table.  This experiment completes the
picture: the same corpus and trace replayed over all three structures with
full access accounting, reporting modeled time, random accesses, bytes,
and structure sizes.

Expected shape: the hash table wins modeled time on short queries (direct
probes); the trie does dramatically fewer random accesses on *long*
queries (it enumerates existing locators, not candidate subsets); the
compressed structure trades a small scan overhead for an order of
magnitude less lookup-table space.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compress.compressed_hash import CompressedWordSetIndex
from repro.core.tree_index import TrieWordSetIndex
from repro.cost.accounting import AccessStats, AccessTracker
from repro.datagen.corpus import CorpusConfig, generate_corpus
from repro.datagen.querygen import QueryConfig, generate_workload
from repro.experiments.common import MODEL, SMALL, Scale, format_table
from repro.optimize.remap import build_index


@dataclass(frozen=True, slots=True)
class StructureMeasurement:
    name: str
    stats: AccessStats
    lookup_bytes: int

    @property
    def modeled_ms(self) -> float:
        return self.stats.modeled_ns(MODEL) / 1e6


@dataclass(frozen=True, slots=True)
class ExtStructuresResult:
    short_queries: list[StructureMeasurement]
    long_queries: list[StructureMeasurement]

    def by_name(self, name: str, long: bool = False) -> StructureMeasurement:
        rows = self.long_queries if long else self.short_queries
        return next(m for m in rows if m.name == name)


def _measure(structures, queries) -> list[StructureMeasurement]:
    out = []
    for name, structure, tracker, lookup_bytes in structures:
        tracker.reset()
        for query in queries:
            structure.query(query)
        out.append(
            StructureMeasurement(
                name=name, stats=tracker.reset(), lookup_bytes=lookup_bytes
            )
        )
    return out


def run(scale: Scale = SMALL, seed: int = 0) -> ExtStructuresResult:
    generated = generate_corpus(CorpusConfig(num_ads=scale.num_ads, seed=seed))
    corpus = generated.corpus
    short_wl = generate_workload(
        generated,
        QueryConfig(
            num_distinct=scale.num_distinct_queries,
            total_frequency=scale.total_query_frequency,
            seed=seed + 100,
        ),
    )
    long_wl = generate_workload(
        generated,
        QueryConfig(
            num_distinct=max(50, scale.num_distinct_queries // 10),
            total_frequency=scale.total_query_frequency,
            long_tail_fraction=1.0,
            long_tail_min_words=11,
            long_tail_max_words=13,
            seed=seed + 200,
        ),
    )

    def structures():
        hash_tracker = AccessTracker()
        hash_index = build_index(corpus, None, tracker=hash_tracker)
        trie_tracker = AccessTracker()
        trie_index = TrieWordSetIndex.from_corpus(corpus, tracker=trie_tracker)
        compressed_tracker = AccessTracker()
        compressed = CompressedWordSetIndex.from_index(
            hash_index,
            suffix_bits=14,
            tracker=compressed_tracker,
            sig_encoding="eliasfano",
            offsets_encoding="eliasfano",
        )
        return [
            ("hash table", hash_index, hash_tracker,
             hash_index.hash_table_bytes()),
            ("trie", trie_index, trie_tracker,
             trie_index.trie_size() * 48),
            ("compressed (EF)", compressed, compressed_tracker,
             compressed.structure_bits() // 8),
        ]

    short_queries = short_wl.sample_stream(
        min(scale.trace_length, 2_000), seed=seed + 7
    )
    long_queries = long_wl.sample_stream(120, seed=seed + 8)
    return ExtStructuresResult(
        short_queries=_measure(structures(), short_queries),
        long_queries=_measure(structures(), long_queries),
    )


def format_report(result: ExtStructuresResult) -> str:
    def rows(measurements):
        return [
            [
                m.name,
                f"{m.stats.random_accesses:,}",
                f"{m.stats.bytes_scanned:,}",
                f"{m.modeled_ms:.2f}",
                f"{m.lookup_bytes:,}",
            ]
            for m in measurements
        ]

    headers = ["structure", "random acc", "bytes", "modeled ms", "lookup bytes"]
    return (
        "Extension — lookup-structure comparison (hash / trie / compressed)\n"
        "short-query trace:\n"
        f"{format_table(headers, rows(result.short_queries))}\n"
        "long-query trace (12-15 words):\n"
        f"{format_table(headers, rows(result.long_queries))}\n"
        "(trie enumerates existing locators only — no 2^|Q| probe blowup;\n"
        " the compressed structure trades scan time for lookup-table space)\n"
    )
