"""Fig 3 — MT phrases are distributed differently from bids.

Paper: both distributions peak at 3 words, but the NIST MT rule lengths
fall off much more gradually — the reason MT indexing techniques (suffix
trees/arrays over redundant rules) don't transfer to broad match.  We
compare the two samplers' histograms and their peak-to-tail drop-offs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datagen.corpus import CorpusConfig, generate_corpus
from repro.datagen.mtgen import drop_off_ratio, mt_length_histogram
from repro.experiments.common import SMALL, Scale, format_table


@dataclass(frozen=True, slots=True)
class Fig3Result:
    bid_histogram: dict[int, int]
    mt_histogram: dict[int, int]
    bid_drop_off: float
    mt_drop_off: float


def run(scale: Scale = SMALL, seed: int = 0) -> Fig3Result:
    corpus = generate_corpus(
        CorpusConfig(num_ads=scale.num_ads, seed=seed)
    ).corpus
    bid_histogram = corpus.length_histogram()
    mt_histogram = mt_length_histogram(scale.num_ads, seed=seed)
    return Fig3Result(
        bid_histogram=bid_histogram,
        mt_histogram=mt_histogram,
        bid_drop_off=drop_off_ratio(bid_histogram),
        mt_drop_off=drop_off_ratio(mt_histogram),
    )


def format_report(result: Fig3Result) -> str:
    lengths = sorted(set(result.bid_histogram) | set(result.mt_histogram))
    rows = [
        [
            str(length),
            str(result.bid_histogram.get(length, 0)),
            str(result.mt_histogram.get(length, 0)),
        ]
        for length in lengths
    ]
    table = format_table(["words", "bids", "MT rules"], rows)
    return (
        "Fig 3 — bid lengths vs MT rule lengths\n"
        f"{table}\n"
        f"peak-to-tail drop-off (len 3 vs len 5): "
        f"bids {result.bid_drop_off:.1f}x, MT {result.mt_drop_off:.1f}x "
        "(paper: MT falls off much more gradually)\n"
    )
