"""Extension experiment: does impact ordering help broad match?  (§I-B)

The paper asserts that pushing ranking signals (bid price) into the index
— the early-termination machinery of classical top-k IR — is "less likely
to result in noticeable performance improvement for ad retrieval", because
broad-match result sets are already small (the Fig 2 long tail).  This
experiment measures it: top-k-by-bid retrieval with per-node bid-ceiling
pruning vs plain retrieve-all-then-rank, on a calibrated corpus.

Expected shape (confirming the paper): the hash-probe cost — which pruning
cannot touch, since ceilings are only known after the probe — dominates,
and the scan savings from skipped nodes amount to a few percent of total
modeled time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.impact_index import ImpactOrderedIndex
from repro.cost.accounting import AccessStats, AccessTracker
from repro.experiments.common import MODEL, SMALL, Scale, format_table, standard_setup

TOP_K = 4  # ad slots per page


@dataclass(frozen=True, slots=True)
class ExtImpactResult:
    plain: AccessStats
    pruned: AccessStats
    queries: int
    agreement_checked: int

    @property
    def scan_savings(self) -> float:
        """Fraction of scanned bytes avoided by pruning."""
        if self.plain.bytes_scanned == 0:
            return 0.0
        return 1.0 - self.pruned.bytes_scanned / self.plain.bytes_scanned

    @property
    def node_access_savings(self) -> float:
        if self.plain.random_accesses == 0:
            return 0.0
        return 1.0 - self.pruned.random_accesses / self.plain.random_accesses

    @property
    def total_time_savings(self) -> float:
        plain_ns = self.plain.modeled_ns(MODEL)
        if plain_ns == 0:
            return 0.0
        return 1.0 - self.pruned.modeled_ns(MODEL) / plain_ns


def run(scale: Scale = SMALL, seed: int = 0) -> ExtImpactResult:
    _, corpus, workload = standard_setup(scale, seed=seed)
    queries = workload.sample_stream(
        min(scale.trace_length, 2_000), seed=seed + 31
    )

    plain_tracker = AccessTracker()
    plain_index = ImpactOrderedIndex.from_corpus(corpus, tracker=plain_tracker)
    pruned_tracker = AccessTracker()
    pruned_index = ImpactOrderedIndex.from_corpus(corpus, tracker=pruned_tracker)

    agreement = 0
    for query in queries:
        all_matches = plain_index.query(query)
        top = sorted(
            all_matches, key=lambda ad: -ad.info.bid_price_micros
        )[:TOP_K]
        pruned_top = pruned_index.query_top_k(query, TOP_K)
        # Same bid multiset (ties may reorder equal bids).
        assert sorted(a.info.bid_price_micros for a in top) == sorted(
            a.info.bid_price_micros for a in pruned_top
        ), "pruning changed the top-k result"
        agreement += 1

    return ExtImpactResult(
        plain=plain_tracker.reset(),
        pruned=pruned_tracker.reset(),
        queries=len(queries),
        agreement_checked=agreement,
    )


def format_report(result: ExtImpactResult) -> str:
    rows = [
        [
            "retrieve-all + rank",
            f"{result.plain.random_accesses:,}",
            f"{result.plain.bytes_scanned:,}",
            f"{result.plain.modeled_ns(MODEL) / 1e6:.2f}",
        ],
        [
            "impact-pruned top-k",
            f"{result.pruned.random_accesses:,}",
            f"{result.pruned.bytes_scanned:,}",
            f"{result.pruned.modeled_ns(MODEL) / 1e6:.2f}",
        ],
    ]
    table = format_table(
        ["strategy", "random acc", "bytes", "modeled ms"], rows
    )
    return (
        f"Extension — impact ordering for top-{TOP_K} broad match (§I-B)\n"
        f"{table}\n"
        f"scan savings {result.scan_savings:+.1%}, node-access savings "
        f"{result.node_access_savings:+.1%}, total time savings "
        f"{result.total_time_savings:+.1%}\n"
        f"top-k agreement verified on all {result.agreement_checked:,} "
        "queries\n"
        "(the paper's §I-B claim: result sets are too small for in-index\n"
        " ranking machinery to pay off — savings stay marginal)\n"
    )
