"""Extension experiment: mapping staleness under workload drift.

Section VI notes the mapping is re-optimized only periodically.  This
experiment quantifies what that costs: a mapping optimized for yesterday's
workload is evaluated against progressively drifted workloads (a mixture
of the original and a fresh query population), against both the identity
mapping and a freshly re-optimized one.

Expected shape: the stale mapping's advantage over identity decays with
drift but does not invert (re-mapping decisions are driven by the corpus's
subset structure, which drift does not change), and re-optimization
recovers the full gain — the justification for the paper's cheap
periodic-reopt strategy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.queries import Workload
from repro.cost.workload_cost import cost_node
from repro.datagen.corpus import CorpusConfig, generate_corpus
from repro.datagen.querygen import QueryConfig, generate_workload
from repro.experiments.common import MODEL, SMALL, Scale, format_table
from repro.optimize.mapping import OptimizerConfig, optimize_mapping
from repro.optimize.remap import build_index


@dataclass(frozen=True, slots=True)
class DriftPoint:
    drift_fraction: float
    identity_node_ns: float
    stale_node_ns: float
    fresh_node_ns: float

    @property
    def stale_gain(self) -> float:
        """Node-cost saving of the stale mapping vs identity."""
        if self.identity_node_ns == 0:
            return 0.0
        return 1.0 - self.stale_node_ns / self.identity_node_ns

    @property
    def fresh_gain(self) -> float:
        if self.identity_node_ns == 0:
            return 0.0
        return 1.0 - self.fresh_node_ns / self.identity_node_ns


@dataclass(frozen=True, slots=True)
class ExtDriftResult:
    points: list[DriftPoint]


def _mix(old: Workload, new: Workload, fraction: float) -> Workload:
    """Frequency-weighted mixture: ``fraction`` of the mass from ``new``."""
    mixed = Workload()
    for query, frequency in old:
        kept = round(frequency * (1 - fraction))
        if kept:
            mixed.add(query, kept)
    for query, frequency in new:
        kept = round(frequency * fraction)
        if kept:
            mixed.add(query, kept)
    return mixed


def run(scale: Scale = SMALL, seed: int = 0) -> ExtDriftResult:
    generated = generate_corpus(
        CorpusConfig(
            num_ads=scale.num_ads,
            vocabulary_size=max(100, scale.num_ads // 7),
            seed=seed,
        )
    )
    corpus = generated.corpus

    def workload(s: int) -> Workload:
        return generate_workload(
            generated,
            QueryConfig(
                num_distinct=scale.num_distinct_queries,
                total_frequency=scale.total_query_frequency,
                max_anchor_words=5,
                seed=s,
            ),
        )

    yesterday = workload(seed + 100)
    tomorrow = workload(seed + 999)

    config = OptimizerConfig(max_words=10)
    identity = build_index(corpus, None)
    stale = build_index(
        corpus, optimize_mapping(corpus, yesterday, MODEL, config)
    )

    points = []
    for fraction in (0.0, 0.25, 0.5, 0.75, 1.0):
        current = _mix(yesterday, tomorrow, fraction)
        fresh = build_index(
            corpus, optimize_mapping(corpus, current, MODEL, config)
        )
        points.append(
            DriftPoint(
                drift_fraction=fraction,
                identity_node_ns=cost_node(identity, current, MODEL),
                stale_node_ns=cost_node(stale, current, MODEL),
                fresh_node_ns=cost_node(fresh, current, MODEL),
            )
        )
    return ExtDriftResult(points=points)


def format_report(result: ExtDriftResult) -> str:
    rows = [
        [
            f"{p.drift_fraction:.0%}",
            f"{p.stale_gain:+.1%}",
            f"{p.fresh_gain:+.1%}",
        ]
        for p in result.points
    ]
    table = format_table(
        ["workload drift", "stale mapping gain", "re-optimized gain"], rows
    )
    return (
        "Extension — mapping staleness under workload drift\n"
        f"{table}\n"
        "(gains are node-access cost savings vs the identity mapping;\n"
        " periodic re-optimization recovers what drift erodes)\n"
    )
