"""Section VI — compression: the worked example plus measured structures.

Two parts:

1. **Analytic worked example** — the paper's own arithmetic: 100M ads, 20M
   distinct word-sets, ``s = 28``, 75 bytes per word-set; hash table
   ≈ 1.7e9 bits vs ``n*H0(B^sig) + n*H0(B^off)``, a ratio the paper rounds
   to "about 9:1".
2. **Measured structures** — build the compressed lookup over a synthetic
   corpus at several suffix sizes and report actual entropy bits vs the
   modeled hash-table size, plus data-node compression (front-coding of
   phrases and delta-coded bid prices).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compress.compressed_hash import CompressedWordSetIndex
from repro.compress.deltas import delta_encode_prices
from repro.compress.frontcoding import (
    encoded_size_bytes,
    node_phrase_order,
    plain_size_bytes,
)
from repro.compress.sizing import WorkedExample, hash_table_bits, worked_example
from repro.experiments.common import SMALL, Scale, format_table, standard_setup
from repro.optimize.remap import build_index


@dataclass(frozen=True, slots=True)
class SuffixMeasurement:
    suffix_bits: int
    num_nodes: int
    entropy_bits: float
    structure_bits: int
    succinct_bits: int
    hash_bits: float

    @property
    def entropy_ratio(self) -> float:
        return self.hash_bits / max(1.0, self.entropy_bits)

    @property
    def succinct_ratio(self) -> float:
        """Hash size over the *actually stored* RRR + Elias-Fano bits."""
        return self.hash_bits / max(1.0, self.succinct_bits)


@dataclass(frozen=True, slots=True)
class CompressionResult:
    example: WorkedExample
    measurements: list[SuffixMeasurement]
    frontcoding_plain_bytes: int
    frontcoding_coded_bytes: int
    price_plain_bytes: int
    price_coded_bytes: int

    @property
    def frontcoding_ratio(self) -> float:
        return self.frontcoding_plain_bytes / max(1, self.frontcoding_coded_bytes)

    @property
    def price_ratio(self) -> float:
        return self.price_plain_bytes / max(1, self.price_coded_bytes)


def run(scale: Scale = SMALL, seed: int = 0) -> CompressionResult:
    _, corpus, _ = standard_setup(scale, seed=seed)
    index = build_index(corpus, None)
    hash_bits = hash_table_bits(len(index.nodes))

    measurements = []
    for bits in (12, 16, 20, 24):
        compressed = CompressedWordSetIndex.from_index(index, suffix_bits=bits)
        # Elias-Fano on both arrays: linear in the number of ones, so the
        # stored size tracks entropy at every suffix size (RRR's class
        # stream is linear in 2^s and loses at large s on small corpora).
        succinct = CompressedWordSetIndex.from_index(
            index,
            suffix_bits=bits,
            sig_encoding="eliasfano",
            offsets_encoding="eliasfano",
        )
        measurements.append(
            SuffixMeasurement(
                suffix_bits=bits,
                num_nodes=compressed.num_nodes(),
                entropy_bits=compressed.entropy_bits(),
                structure_bits=compressed.structure_bits(),
                succinct_bits=succinct.structure_bits(),
                hash_bits=hash_bits,
            )
        )

    # Data-node compression over every node's phrases and prices.
    plain = coded = price_plain = price_coded = 0
    for node in index.nodes.values():
        phrases = node_phrase_order([e.ad.phrase for e in node.entries])
        plain += plain_size_bytes(phrases)
        coded += encoded_size_bytes(phrases)
        prices = [e.ad.info.bid_price_micros for e in node.entries]
        price_plain += 8 * len(prices)
        price_coded += len(delta_encode_prices(prices))

    return CompressionResult(
        example=worked_example(),
        measurements=measurements,
        frontcoding_plain_bytes=plain,
        frontcoding_coded_bytes=coded,
        price_plain_bytes=price_plain,
        price_coded_bytes=price_coded,
    )


def format_report(result: CompressionResult) -> str:
    ex = result.example
    example_text = (
        "worked example (paper Section VI):\n"
        f"  hash table:      {ex.hash_bits:.2e} bits (paper ≈ 1.7e9)\n"
        f"  n*H0(B^sig):     {ex.bsig_bits_bound:.2e} bits (paper ≈ 8e7)\n"
        f"  n*H0(B^off):     {ex.boff_bits_bound:.2e} bits (paper ≈ 1e8)\n"
        f"  ratio:           {ex.ratio:.1f}:1 (paper: about 9:1)\n"
    )
    rows = [
        [
            str(m.suffix_bits),
            str(m.num_nodes),
            f"{m.entropy_bits:,.0f}",
            f"{m.succinct_bits:,}",
            f"{m.entropy_ratio:.1f}:1",
            f"{m.succinct_ratio:.1f}:1",
        ]
        for m in result.measurements
    ]
    table = format_table(
        [
            "s (bits)",
            "nodes",
            "entropy bits",
            "EF stored bits",
            "hash/entropy",
            "hash/stored",
        ],
        rows,
    )
    return (
        "Section VI — compression\n"
        f"{example_text}"
        "measured compressed lookup over the synthetic corpus:\n"
        f"{table}\n"
        f"data-node front-coding: {result.frontcoding_plain_bytes:,} -> "
        f"{result.frontcoding_coded_bytes:,} bytes "
        f"({result.frontcoding_ratio:.2f}x)\n"
        f"bid-price delta coding: {result.price_plain_bytes:,} -> "
        f"{result.price_coded_bytes:,} bytes ({result.price_ratio:.2f}x)\n"
    )
