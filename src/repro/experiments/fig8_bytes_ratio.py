"""Fig 8 — data volume: inverted-index bytes / word-set-index bytes.

Paper: for 100K queries, the unmodified (rarest-word) inverted index reads
4x as many bytes as the word-set index at 1M ads, and the ratio rises with
corpus size; the modified (counting) index reads three orders of magnitude
more.  We sweep corpus size, replay the same query trace against all three
structures with byte accounting, and report the ratios per corpus size.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cost.accounting import AccessTracker
from repro.datagen.corpus import CorpusConfig, generate_corpus
from repro.datagen.querygen import QueryConfig, generate_workload
from repro.experiments.common import SMALL, Scale, format_table
from repro.invindex.counting import CountingInvertedIndex
from repro.invindex.nonredundant import NonRedundantInvertedIndex
from repro.optimize.remap import build_index


@dataclass(frozen=True, slots=True)
class SweepPoint:
    corpus_size: int
    wordset_bytes: int
    nonredundant_bytes: int
    counting_bytes: int

    @property
    def nonredundant_ratio(self) -> float:
        return self.nonredundant_bytes / max(1, self.wordset_bytes)

    @property
    def counting_ratio(self) -> float:
        return self.counting_bytes / max(1, self.wordset_bytes)


@dataclass(frozen=True, slots=True)
class Fig8Result:
    points: list[SweepPoint]


def _replay_bytes(structure_factory, corpus, queries) -> int:
    tracker = AccessTracker()
    structure = structure_factory(corpus, tracker)
    for query in queries:
        structure.query(query)
    return tracker.stats.bytes_scanned


def run(
    scale: Scale = SMALL,
    seed: int = 0,
    corpus_sizes: list[int] | None = None,
) -> Fig8Result:
    if corpus_sizes is None:
        base = scale.num_ads
        corpus_sizes = [base // 4, base // 2, base, base * 2]
    points = []
    for size in corpus_sizes:
        generated = generate_corpus(CorpusConfig(num_ads=size, seed=seed))
        workload = generate_workload(
            generated,
            QueryConfig(
                num_distinct=scale.num_distinct_queries,
                total_frequency=scale.total_query_frequency,
                seed=seed + 7,
            ),
        )
        queries = workload.sample_stream(scale.trace_length, seed=seed + 13)
        corpus = generated.corpus
        wordset_bytes = _replay_bytes(
            lambda c, t: build_index(c, None, tracker=t), corpus, queries
        )
        nonredundant_bytes = _replay_bytes(
            lambda c, t: NonRedundantInvertedIndex.from_corpus(c, tracker=t),
            corpus,
            queries,
        )
        counting_bytes = _replay_bytes(
            lambda c, t: CountingInvertedIndex.from_corpus(c, tracker=t),
            corpus,
            queries,
        )
        points.append(
            SweepPoint(
                corpus_size=size,
                wordset_bytes=wordset_bytes,
                nonredundant_bytes=nonredundant_bytes,
                counting_bytes=counting_bytes,
            )
        )
    return Fig8Result(points=points)


def format_report(result: Fig8Result) -> str:
    rows = [
        [
            str(p.corpus_size),
            f"{p.wordset_bytes:,}",
            f"{p.nonredundant_bytes:,}",
            f"{p.nonredundant_ratio:.1f}x",
            f"{p.counting_ratio:.0f}x",
        ]
        for p in result.points
    ]
    table = format_table(
        ["ads", "ours (bytes)", "inverted (bytes)", "inv/ours", "counting/ours"],
        rows,
    )
    return (
        "Fig 8 — bytes processed: inverted-index vs word-set index\n"
        f"{table}\n"
        "(paper: >= 4x at 1M ads for the unmodified inverted index, ratio\n"
        " rising with corpus size; ~3 orders of magnitude for the counting\n"
        " variant)\n"
    )
