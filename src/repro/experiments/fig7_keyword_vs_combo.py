"""Fig 7 — keyword frequencies vs word-combination frequencies.

Paper: the distribution of single-keyword document frequencies is far more
skewed than that of word-sets; with inverted indexes the "bucket" under a
popular keyword holds thousands of ads (their measurement: ~3000 on
average for popular terms), while the word-set index's buckets hold ~100.
We reproduce both ranked series and the popular-bucket averages.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import SMALL, Scale, format_table, standard_setup
from repro.invindex.counting import CountingInvertedIndex
from repro.optimize.remap import build_index


@dataclass(frozen=True, slots=True)
class Fig7Result:
    keyword_frequencies: list[int]
    wordset_frequencies: list[int]
    mean_popular_keyword_bucket: float
    mean_popular_wordset_bucket: float

    @property
    def bucket_reduction(self) -> float:
        """How much smaller the word-set buckets are (paper: ~30x)."""
        if self.mean_popular_wordset_bucket == 0:
            return float("inf")
        return (
            self.mean_popular_keyword_bucket / self.mean_popular_wordset_bucket
        )


def run(scale: Scale = SMALL, seed: int = 0, top_fraction: float = 0.01) -> Fig7Result:
    _, corpus, _ = standard_setup(scale, seed=seed)
    # Keyword buckets = posting-list lengths of a fully redundant index.
    inverted = CountingInvertedIndex.from_corpus(corpus)
    keyword_freqs = sorted(
        (len(p) for p in inverted.lists.values()), reverse=True
    )
    index = build_index(corpus, None)
    wordset_freqs = sorted(
        (len(node) for node in index.nodes.values()), reverse=True
    )
    top_k = max(1, int(len(keyword_freqs) * top_fraction))
    top_n = max(1, int(len(wordset_freqs) * top_fraction))
    return Fig7Result(
        keyword_frequencies=keyword_freqs,
        wordset_frequencies=wordset_freqs,
        mean_popular_keyword_bucket=sum(keyword_freqs[:top_k]) / top_k,
        mean_popular_wordset_bucket=sum(wordset_freqs[:top_n]) / top_n,
    )


def format_report(result: Fig7Result) -> str:
    sample_ranks = [1, 2, 5, 10, 50, 100, 500]
    rows = []
    for rank in sample_ranks:
        kw = (
            str(result.keyword_frequencies[rank - 1])
            if rank <= len(result.keyword_frequencies)
            else "-"
        )
        ws = (
            str(result.wordset_frequencies[rank - 1])
            if rank <= len(result.wordset_frequencies)
            else "-"
        )
        rows.append([str(rank), kw, ws])
    table = format_table(["rank", "keyword bucket", "word-set bucket"], rows)
    return (
        "Fig 7 — keyword vs word-combination frequency skew\n"
        f"{table}\n"
        f"mean bucket size over the most popular keys: "
        f"keywords {result.mean_popular_keyword_bucket:.0f}, "
        f"word-sets {result.mean_popular_wordset_bucket:.0f} "
        f"({result.bucket_reduction:.0f}x reduction; paper: ~3000 -> ~100)\n"
    )
