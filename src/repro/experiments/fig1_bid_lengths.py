"""Fig 1 — "Bids are short": the bid word-length histogram.

Paper: in a 290M-ad corpus the distribution peaks at 3 words and falls off
rapidly on a log scale — 62% of bids have <= 3 words, 96% <= 5, 99.8% <= 8.
We regenerate the histogram from the synthetic corpus and report both the
per-length counts (the plotted series) and the three cumulative anchors.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datagen.corpus import length_cumulative_fractions
from repro.experiments.common import SMALL, Scale, format_table, standard_setup

#: The paper's published anchors for comparison in the report.
PAPER_CUMULATIVE = {3: 0.62, 5: 0.96, 8: 0.998}


@dataclass(frozen=True, slots=True)
class Fig1Result:
    histogram: dict[int, int]
    cumulative: dict[int, float]

    def anchor(self, length: int) -> float:
        """Cumulative fraction of bids with <= ``length`` words."""
        best = 0.0
        for l, fraction in self.cumulative.items():
            if l <= length:
                best = max(best, fraction)
        return best


def run(scale: Scale = SMALL, seed: int = 0) -> Fig1Result:
    _, corpus, _ = standard_setup(scale, seed=seed)
    return Fig1Result(
        histogram=dict(sorted(corpus.length_histogram().items())),
        cumulative=length_cumulative_fractions(corpus),
    )


def format_report(result: Fig1Result) -> str:
    rows = [
        [str(length), str(count)]
        for length, count in sorted(result.histogram.items())
    ]
    table = format_table(["words", "bids"], rows)
    anchors = "\n".join(
        f"  <= {length} words: {result.anchor(length):6.1%}   (paper: {paper:.1%})"
        for length, paper in sorted(PAPER_CUMULATIVE.items())
    )
    return (
        "Fig 1 — bid length histogram\n"
        f"{table}\n"
        f"cumulative anchors:\n{anchors}\n"
    )
