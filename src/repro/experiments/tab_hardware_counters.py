"""Section VII-C — hardware performance counters (VTune substitute).

Paper (no-re-mapping vs full re-mapping, with *all* query-word subsets
looked up in both cases to equalize the access pattern):

* page-walk cycles from DTLB misses: >40% higher without re-mapping;
* DTLB misses themselves: only ~12% higher (the walks got *colder*);
* L2 cache misses: higher without re-mapping (smaller table after
  re-mapping -> better locality);
* branch mispredictions: ~23% *higher with* re-mapping (longer
  data-dependent scans in merged nodes).

We replay the same trace through the trace-driven TLB/cache/branch models
over both layouts and report the same four ratios.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import MODEL, SMALL, Scale, format_table, standard_setup
from repro.memsim.counters import HardwareCounters, run_traced_workload
from repro.memsim.layout import IndexLayout
from repro.optimize.mapping import OptimizerConfig, optimize_mapping
from repro.optimize.remap import build_index


@dataclass(frozen=True, slots=True)
class CountersResult:
    no_remap: HardwareCounters
    full_remap: HardwareCounters

    @property
    def page_walk_increase(self) -> float:
        """(no-remap / remap) - 1; paper: > 0.40."""
        return self.no_remap.page_walk_cycles / max(
            1, self.full_remap.page_walk_cycles
        ) - 1.0

    @property
    def dtlb_miss_increase(self) -> float:
        """Paper: ~0.12 — much smaller than the walk-cycle increase."""
        return self.no_remap.dtlb_misses / max(1, self.full_remap.dtlb_misses) - 1.0

    @property
    def l2_miss_increase(self) -> float:
        return self.no_remap.l2_misses / max(1, self.full_remap.l2_misses) - 1.0

    @property
    def branch_mispredict_increase_with_remap(self) -> float:
        """Paper: ~0.23 higher WITH re-mapping (total mispredictions)."""
        return self.full_remap.branch_mispredictions / max(
            1, self.no_remap.branch_mispredictions
        ) - 1.0

    @property
    def scan_branch_increase_with_remap(self) -> float:
        """Same delta restricted to the data-node scan branches — the
        branches re-mapping actually changes (merged nodes interleave
        word-sets, defeating the predictor).  More robust at small corpus
        scale than the total, which also carries hash-probe loop noise."""
        return self.full_remap.scan_branch_mispredictions / max(
            1, self.no_remap.scan_branch_mispredictions
        ) - 1.0


def run(scale: Scale = SMALL, seed: int = 0) -> CountersResult:
    _, corpus, workload = standard_setup(scale, seed=seed)
    queries = workload.sample_stream(
        min(scale.trace_length, 2_000), seed=seed + 17
    )
    identity = build_index(corpus, None)
    mapping = optimize_mapping(
        corpus, workload, MODEL, OptimizerConfig(max_words=10)
    )
    remapped = build_index(corpus, mapping)

    # Hardware scaled to the corpus: the paper's 180M-ad structures exceed
    # TLB reach and L2 capacity by orders of magnitude; give the scaled
    # corpus the same relationship (structure footprint >> TLB reach, L2).
    def machine():
        from repro.memsim.cache import Cache
        from repro.memsim.tlb import Tlb

        return (
            Tlb(entries=8, page_table_reach=2),
            Cache(size_bytes=16 * 1024, associativity=4),
        )

    tlb_a, cache_a = machine()
    tlb_b, cache_b = machine()
    return CountersResult(
        no_remap=run_traced_workload(
            IndexLayout(identity), queries, tlb=tlb_a, cache=cache_a
        ),
        full_remap=run_traced_workload(
            IndexLayout(remapped), queries, tlb=tlb_b, cache=cache_b
        ),
    )


def format_report(result: CountersResult) -> str:
    rows = [
        [
            "DTLB misses",
            f"{result.no_remap.dtlb_misses:,}",
            f"{result.full_remap.dtlb_misses:,}",
            f"{result.dtlb_miss_increase:+.0%}",
            "+12%",
        ],
        [
            "page-walk cycles",
            f"{result.no_remap.page_walk_cycles:,}",
            f"{result.full_remap.page_walk_cycles:,}",
            f"{result.page_walk_increase:+.0%}",
            ">+40%",
        ],
        [
            "L2 misses",
            f"{result.no_remap.l2_misses:,}",
            f"{result.full_remap.l2_misses:,}",
            f"{result.l2_miss_increase:+.0%}",
            "higher",
        ],
        [
            "branch mispredicts",
            f"{result.no_remap.branch_mispredictions:,}",
            f"{result.full_remap.branch_mispredictions:,}",
            f"{result.branch_mispredict_increase_with_remap:+.0%} (remap)",
            "+23% (remap)",
        ],
        [
            "  node-scan branches",
            f"{result.no_remap.scan_branch_mispredictions:,}",
            f"{result.full_remap.scan_branch_mispredictions:,}",
            f"{result.scan_branch_increase_with_remap:+.0%} (remap)",
            "",
        ],
    ]
    table = format_table(
        ["counter", "no remap", "full remap", "measured delta", "paper"],
        rows,
    )
    return (
        "Section VII-C — hardware counters (trace-driven simulation)\n"
        f"{table}\n"
        "(deltas are no-remap relative to remap, except branch\n"
        " mispredictions which the paper reports higher WITH re-mapping)\n"
    )
