"""CLI driver: regenerate every paper table and figure.

Usage::

    python -m repro.experiments.runner                # all, small scale
    python -m repro.experiments.runner fig8 fig10     # a subset
    python -m repro.experiments.runner --scale medium # bigger inputs
    python -m repro.experiments.runner fig9 --metrics-out runs.prom

``--metrics-out`` records one ``span.experiment.<id>`` wall-clock sample
per experiment into a shared :class:`repro.obs.MetricsRegistry` and writes
it on exit (``.json`` -> JSON snapshot, else Prometheus exposition).
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import (
    ext_drift,
    ext_hwcompare,
    ext_impact,
    ext_matchtypes,
    ext_sharding,
    ext_structures,
    fig1_bid_lengths,
    fig2_wordset_zipf,
    fig3_mt_lengths,
    fig7_keyword_vs_combo,
    fig8_bytes_ratio,
    fig9_latency_dist,
    fig10_remapping,
    tab_compression,
    tab_hardware_counters,
    tab_inverted_throughput,
    tab_multiserver,
)
from repro.experiments.common import SCALES, SMALL
from repro.obs import MetricsRegistry
from repro.obs.export import write_metrics

#: Paper artifacts first, then extension studies (`ext-*`) that go beyond
#: the paper's evaluation.
EXPERIMENTS = {
    "fig1": fig1_bid_lengths,
    "fig2": fig2_wordset_zipf,
    "fig3": fig3_mt_lengths,
    "fig7": fig7_keyword_vs_combo,
    "fig8": fig8_bytes_ratio,
    "fig9": fig9_latency_dist,
    "fig10": fig10_remapping,
    "tab-inverted": tab_inverted_throughput,
    "tab-multiserver": tab_multiserver,
    "tab-counters": tab_hardware_counters,
    "tab-compression": tab_compression,
    "ext-structures": ext_structures,
    "ext-drift": ext_drift,
    "ext-sharding": ext_sharding,
    "ext-matchtypes": ext_matchtypes,
    "ext-hwcompare": ext_hwcompare,
    "ext-impact": ext_impact,
}


def run_experiment(name: str, scale, seed: int = 0) -> str:
    """Run one experiment by id; returns its formatted report."""
    module = EXPERIMENTS[name]
    result = module.run(scale=scale, seed=seed)
    return module.format_report(result)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Reproduce the paper's tables and figures."
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        choices=[*EXPERIMENTS, "all"],
        default="all",
        help="experiment ids (default: all)",
    )
    parser.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default=SMALL.name,
        help="input sizes (default: small)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--metrics-out",
        default=None,
        help="write per-experiment wall-clock spans to this file "
        "(.json -> JSON snapshot, else Prometheus exposition)",
    )
    args = parser.parse_args(argv)

    names = list(EXPERIMENTS) if args.experiments in ("all", ["all"], []) else (
        args.experiments if isinstance(args.experiments, list) else [args.experiments]
    )
    scale = SCALES[args.scale]
    registry = MetricsRegistry() if args.metrics_out else None
    for name in names:
        started = time.perf_counter()
        if registry is not None:
            with registry.span(f"experiment.{name}"):
                report = run_experiment(name, scale, seed=args.seed)
            registry.counter(
                "experiments.completed", "Experiments run to completion"
            ).inc()
        else:
            report = run_experiment(name, scale, seed=args.seed)
        elapsed = time.perf_counter() - started
        print(f"==== {name} (scale={scale.name}, {elapsed:.1f}s) " + "=" * 20)
        print(report)
    if registry is not None:
        write_metrics(registry, args.metrics_out)
        print(f"wrote metrics to {args.metrics_out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
