"""File mutators: corrupt persisted state the way real failures do.

Two corruption modes dominate in practice and both have a distinct
correct response in the recovery protocol:

* **torn write** (power loss mid-append): the final record is a prefix
  of itself.  Recovery must truncate it and carry on — losing the torn
  op is correct, refusing to start is not.
* **bit flip** (storage rot, bad RAM on the write path): a record in
  the *middle* of the file no longer matches its checksum.  Recovery
  must refuse to replay past it — silently serving a diverged corpus is
  the one unforgivable outcome.

Both mutators are deterministic (no randomness) so every corrupted-file
test is exactly reproducible.
"""

from __future__ import annotations

from pathlib import Path

__all__ = ["bit_flip", "tear_tail", "truncate_at"]


def truncate_at(path: str | Path, size: int) -> None:
    """Truncate ``path`` to exactly ``size`` bytes (a crash-consistent
    prefix, the strongest guarantee an append-only log ever gives)."""
    path = Path(path)
    if size < 0:
        raise ValueError("size must be >= 0")
    data = path.read_bytes()
    path.write_bytes(data[:size])


def tear_tail(path: str | Path, keep_fraction: float = 0.5) -> int:
    """Simulate a torn final write: keep only ``keep_fraction`` of the
    last line (and drop its newline).  Returns the new file size.

    A file whose last line is complete gets that line torn; an empty
    file is left alone (nothing was being written).
    """
    if not 0.0 <= keep_fraction < 1.0:
        raise ValueError("keep_fraction must be in [0, 1)")
    path = Path(path)
    data = path.read_bytes()
    if not data:
        return 0
    body = data.rstrip(b"\n")
    start = body.rfind(b"\n") + 1  # 0 when the file has a single line
    last = body[start:]
    keep = int(len(last) * keep_fraction)
    torn = data[:start] + last[:keep]
    path.write_bytes(torn)
    return len(torn)


def bit_flip(path: str | Path, offset: int | None = None, bit: int = 0) -> int:
    """Flip one bit of one byte; returns the byte offset that changed.

    ``offset`` defaults to the middle byte of the file — deep enough
    that the damage lands *before* the tail, which is the case the
    recovery protocol must hard-fail on.  Negative offsets index from
    the end, like ``bytes`` slicing.
    """
    if not 0 <= bit <= 7:
        raise ValueError("bit must be in [0, 7]")
    path = Path(path)
    data = bytearray(path.read_bytes())
    if not data:
        raise ValueError(f"cannot bit-flip empty file {path}")
    if offset is None:
        offset = len(data) // 2
    if offset < 0:
        offset += len(data)
    if not 0 <= offset < len(data):
        raise ValueError(f"offset {offset} outside file of {len(data)} bytes")
    data[offset] ^= 1 << bit
    path.write_bytes(bytes(data))
    return offset
