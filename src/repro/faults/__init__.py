"""repro.faults — deterministic fault injection for the durability path.

A serving system's crash-safety claims are only as good as the crashes
they have survived.  This package provides the harness the durability
tests (and any operator drill) use to *prove* the recovery protocol:

* :class:`FaultInjector` — named **crashpoints** threaded through
  :func:`repro.persist.save_index`, :class:`repro.oplog.DurableIndex`,
  and the distsim write path.  Arm a point and the instrumented code
  raises :class:`InjectedCrash` exactly there, simulating the process
  dying mid-operation; ``should_fail`` schedules model transient RPC
  failures for the scatter-gather retry path.
* :mod:`repro.faults.mutators` — torn-write and bit-flip file mutators
  that corrupt persisted state the way real power loss and bit-rot do.

Injection is **off by default**: every instrumented component takes
``faults=None`` and normalises it to the shared no-op
:data:`NULL_INJECTOR`, so the production path never pays more than an
attribute load and a no-op call per crashpoint.

See ``docs/durability.md`` for the crashpoint catalog and the failure
matrix each point is tested against.
"""

from repro.faults.injector import (
    NULL_INJECTOR,
    FaultInjector,
    InjectedCrash,
    NullFaultInjector,
    active_injector,
)
from repro.faults.mutators import bit_flip, tear_tail, truncate_at

__all__ = [
    "FaultInjector",
    "InjectedCrash",
    "NULL_INJECTOR",
    "NullFaultInjector",
    "active_injector",
    "bit_flip",
    "tear_tail",
    "truncate_at",
]
