"""The fault injector: named crashpoints and transient-failure schedules.

Instrumented code declares *where* a crash could happen::

    faults.crashpoint("compact.snapshot_written")

Tests declare *which* crash happens::

    injector = FaultInjector()
    with injector.arm("compact.snapshot_written"):
        with pytest.raises(InjectedCrash):
            durable.compact()

Arming is deterministic: a plan fires on its ``hits``-th visit (default
the first) and at most ``times`` times, so a test can crash the third
append of a long run and nothing else.  ``should_fail`` points use the
same plans but return ``True`` instead of raising — the shape transient
RPC failures take in the scatter-gather simulation, where the caller
retries rather than dies.

``on(point, hook)`` registers an arbitrary callable to run whenever a
crashpoint is visited (armed or not) — useful for mutating files at the
exact moment of a simulated power loss or for recording visit order.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.obs.registry import MetricsRegistry, active_or_none

__all__ = [
    "NULL_INJECTOR",
    "FaultInjector",
    "InjectedCrash",
    "NullFaultInjector",
    "active_injector",
]


class InjectedCrash(RuntimeError):
    """Raised at an armed crashpoint — the simulated process death.

    Instrumented code must **not** catch this (cleanup handlers that
    would not run under real power loss must not run under injection
    either); tests catch it at the call boundary and then re-open the
    persisted state to exercise recovery.
    """

    def __init__(self, point: str) -> None:
        super().__init__(f"injected crash at {point!r}")
        self.point = point


@dataclass
class _Plan:
    """One armed fault: fire on the ``hits``-th visit, ``times`` times."""

    hits: int = 1
    times: int = 1
    visits: int = 0
    fired: int = 0

    def trigger(self) -> bool:
        self.visits += 1
        if self.fired >= self.times:
            return False
        if self.visits < self.hits:
            return False
        self.fired += 1
        return True


@dataclass
class FaultInjector:
    """Deterministic fault scheduling against named points.

    Parameters
    ----------
    obs:
        Optional :class:`~repro.obs.registry.MetricsRegistry`; every
        fault that actually fires increments the ``faults_injected``
        counter, so a fault-drill run is visible in the same snapshot
        as the recoveries it causes.
    """

    obs: MetricsRegistry | None = None
    _plans: dict[str, _Plan] = field(default_factory=dict)
    _hooks: dict[str, list[Callable[[str], None]]] = field(default_factory=dict)
    #: Every point that fired, in order — tests assert against this.
    fired: list[str] = field(default_factory=list)
    #: Every point visited (armed or not), in order.
    visited: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.obs = active_or_none(self.obs)
        if self.obs is not None:
            self.obs.counter(
                "faults_injected", help="Faults the injector actually fired"
            )

    # -------------------------------------------------------------- #
    # Arming

    @contextmanager
    def arm(self, point: str, hits: int = 1, times: int = 1) -> Iterator[None]:
        """Arm ``point`` for the duration of a ``with`` block.

        ``hits``: fire on the n-th visit (1-based).  ``times``: fire at
        most this many times.  The plan is removed on exit even if it
        never fired.
        """
        self.arm_forever(point, hits=hits, times=times)
        try:
            yield
        finally:
            self._plans.pop(point, None)

    def arm_forever(self, point: str, hits: int = 1, times: int = 1) -> None:
        """Arm ``point`` until :meth:`reset` (the non-scoped form)."""
        if hits < 1 or times < 1:
            raise ValueError("hits and times must be >= 1")
        self._plans[point] = _Plan(hits=hits, times=times)

    def on(self, point: str, hook: Callable[[str], None]) -> None:
        """Run ``hook(point)`` on every visit to ``point``."""
        self._hooks.setdefault(point, []).append(hook)

    def reset(self) -> None:
        """Drop every plan, hook, and recorded visit."""
        self._plans.clear()
        self._hooks.clear()
        self.fired.clear()
        self.visited.clear()

    # -------------------------------------------------------------- #
    # Instrumentation sites

    def is_armed(self, point: str) -> bool:
        """True when a visit to ``point`` *would* fire right now."""
        plan = self._plans.get(point)
        if plan is None:
            return False
        return plan.fired < plan.times and plan.visits + 1 >= plan.hits

    def crashpoint(self, point: str) -> None:
        """Visit ``point``; raise :class:`InjectedCrash` if armed."""
        if self._fires(point):
            raise InjectedCrash(point)

    def should_fail(self, point: str) -> bool:
        """Visit ``point``; report (rather than raise) an armed fault.

        The non-fatal form: callers treat ``True`` as a transient
        failure (an RPC drop, a replica down) and run their own retry
        or degradation logic.
        """
        return self._fires(point)

    def _fires(self, point: str) -> bool:
        self.visited.append(point)
        for hook in self._hooks.get(point, ()):
            hook(point)
        plan = self._plans.get(point)
        if plan is None or not plan.trigger():
            return False
        self.fired.append(point)
        if self.obs is not None:
            self.obs.counter("faults_injected").inc()
        return True


class NullFaultInjector(FaultInjector):
    """The disabled injector: visits cost one no-op call, nothing fires."""

    def __init__(self) -> None:
        super().__init__()

    def crashpoint(self, point: str) -> None:
        pass

    def should_fail(self, point: str) -> bool:
        return False

    def is_armed(self, point: str) -> bool:
        return False

    def arm_forever(self, point: str, hits: int = 1, times: int = 1) -> None:
        raise ValueError("cannot arm the shared NULL_INJECTOR")


#: The process-wide disabled injector; the default for every component.
NULL_INJECTOR = NullFaultInjector()


def active_injector(faults: FaultInjector | None) -> FaultInjector:
    """Normalise an injector argument: ``None`` becomes the shared
    no-op :data:`NULL_INJECTOR`, anything else passes through.
    Components call this once at construction so crashpoints are plain
    method calls with no per-site ``is not None`` guard."""
    return NULL_INJECTOR if faults is None else faults
