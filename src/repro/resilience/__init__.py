"""repro.resilience — serve-time overload protection.

PR 3 made the system survive *crashes*; this package makes it survive
*load*.  The paper itself supplies the degradation knob: Section IV's
query truncation bounds subset enumeration to ``sum C(|Q|, i)`` probes,
trading recall for bounded work — exactly the lever a server should pull
under overload instead of falling over.  Around that knob this package
builds the standard production defences:

* :class:`Deadline` — a per-request budget object propagated end-to-end.
  Index query paths check it between hash probes and return a partial,
  *flagged* result instead of blowing the budget; scatter-gather derives
  per-attempt timeouts from the remaining budget and suppresses retries
  the budget cannot cover.
* :class:`AdmissionController` — a token bucket with priority classes
  and queue-depth load shedding (lowest priority first).  A shed request
  still gets an explicit answer, never a dropped connection.
* :class:`CircuitBreaker` — per-shard closed → open → half-open breakers
  that stop retry storms against a struggling shard (the metastable-
  failure amplification the Dynamo / tail-at-scale literature warns
  about).
* :class:`DegradationPolicy` — an adaptive ladder that responds to
  measured pressure (p95 latency from :mod:`repro.obs` histograms) by
  stepping down query truncation, capping probe plans, and enabling
  stale-cache fallback.
* :class:`FanoutGuard` — breakers + partial-result policy for the
  in-process sharded fan-out paths
  (:class:`~repro.core.sharded.ShardedWordSetIndex`,
  :class:`~repro.segment.ShardedSegmentedIndex`).

Everything is **off by default**: with no resilience objects attached,
every hot path is byte-for-byte the previous behaviour, and fault-free
results are bit-identical to the pre-resilience baseline.

All of it is exercised deterministically by
:mod:`repro.resilience.overload` — a seeded distsim scenario combining a
slow shard, an error burst, deadlines, breakers, and admission control —
which the ``overload-smoke`` CI job gates on.

See ``docs/resilience.md`` for the shed/degrade ladder, the breaker
state machine, and the tuning table.
"""

from repro.resilience.admission import (
    AdmissionConfig,
    AdmissionController,
    AdmissionDecision,
    Priority,
)
from repro.resilience.breaker import (
    BreakerConfig,
    BreakerState,
    CircuitBreaker,
)
from repro.resilience.deadline import (
    Deadline,
    DegradedReason,
    ManualClock,
    monotonic_ms,
)
from repro.resilience.degrade import (
    DEFAULT_LADDER,
    DegradationLevel,
    DegradationPolicy,
)
from repro.resilience.fanout import FanoutGuard, ShardsUnavailableError

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "AdmissionDecision",
    "BreakerConfig",
    "BreakerState",
    "CircuitBreaker",
    "DEFAULT_LADDER",
    "Deadline",
    "DegradationLevel",
    "DegradationPolicy",
    "DegradedReason",
    "FanoutGuard",
    "ManualClock",
    "Priority",
    "ShardsUnavailableError",
    "monotonic_ms",
]
