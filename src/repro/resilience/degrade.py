"""Adaptive degradation: step the paper's truncation knob under pressure.

Section IV of the paper bounds a broad-match query's work to
``sum C(|Q|, i)`` hash probes by truncating long queries to their
``max_words`` rarest words — an explicit recall-for-work trade.  This
module turns that static knob into a feedback loop: when measured
pressure (p95 retrieval latency from the :mod:`repro.obs` histograms)
crosses the high-water mark, the policy steps *down* a ladder of
progressively cheaper serving configurations; when pressure clears the
low-water mark, it steps back up.  Hysteresis (two thresholds) plus a
cooldown (minimum queries between steps) keep it from flapping.

Each ladder level tightens per-request constraints on the
:class:`~repro.resilience.deadline.Deadline` budget object —
``max_query_words`` (harder truncation), ``max_probes`` (a cap the probe
planner applies via :meth:`~repro.perf.prefilter.ProbePlan.capped`) —
and may enable stale-cache fallback so a retrieval error serves
yesterday's answer instead of an empty slate.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

from repro.obs.registry import Histogram, MetricsRegistry, active_or_none
from repro.resilience.deadline import Deadline

__all__ = ["DEFAULT_LADDER", "DegradationLevel", "DegradationPolicy"]


@dataclass(frozen=True, slots=True)
class DegradationLevel:
    """One rung of the degradation ladder.

    ``None`` knobs leave the index's own configuration untouched.
    """

    #: Tighten the query-truncation cutoff to this many words.
    max_query_words: int | None = None
    #: Cap each query's probe plan at this many hash probes.
    max_probes: int | None = None
    #: Serve stale cached results on retrieval error at this level.
    stale_fallback: bool = False

    def __post_init__(self) -> None:
        if self.max_query_words is not None and self.max_query_words < 1:
            raise ValueError("max_query_words must be >= 1")
        if self.max_probes is not None and self.max_probes < 1:
            raise ValueError("max_probes must be >= 1")

    def tighten(self, deadline: Deadline) -> None:
        """Apply this level's constraints to a request budget."""
        deadline.tighten(
            max_probes=self.max_probes,
            max_query_words=self.max_query_words,
        )


#: The default ladder: level 0 is full fidelity; each step roughly
#: quarters the probe budget, and the deep levels accept stale results.
DEFAULT_LADDER: tuple[DegradationLevel, ...] = (
    DegradationLevel(),
    DegradationLevel(max_probes=4_096),
    DegradationLevel(max_query_words=8, max_probes=1_024, stale_fallback=True),
    DegradationLevel(max_query_words=5, max_probes=256, stale_fallback=True),
)


class DegradationPolicy:
    """Pressure-driven ladder walker.

    Parameters
    ----------
    obs:
        Registry whose ``span.<signal>`` histogram supplies the pressure
        reading (and receives the ``resilience.degrade_level`` gauge).
    signal:
        Span name to watch; ``"retrieve"`` is the
        :class:`~repro.serving.server.AdServer` retrieval stage.
    high_ms / low_ms:
        Hysteresis thresholds on the p95 of the signal: step down the
        ladder above ``high_ms``, step back up below ``low_ms``.
    ladder:
        The degradation levels, mildest first; index 0 must be the
        no-degradation level.
    min_samples:
        Ignore the signal until the histogram has this many samples.
    cooldown_queries:
        Minimum :meth:`on_query` calls between pressure evaluations
        (and therefore between steps).
    pressure_fn:
        Override the pressure source entirely (tests, external
        controllers); returns the current pressure in milliseconds.
    """

    def __init__(
        self,
        obs: MetricsRegistry | None = None,
        signal: str = "retrieve",
        high_ms: float = 50.0,
        low_ms: float = 10.0,
        ladder: Sequence[DegradationLevel] = DEFAULT_LADDER,
        min_samples: int = 32,
        cooldown_queries: int = 64,
        pressure_fn: Callable[[], float] | None = None,
    ) -> None:
        if not ladder:
            raise ValueError("ladder needs at least one level")
        if high_ms <= low_ms:
            raise ValueError("high_ms must exceed low_ms (hysteresis)")
        if min_samples < 1:
            raise ValueError("min_samples must be >= 1")
        if cooldown_queries < 1:
            raise ValueError("cooldown_queries must be >= 1")
        self._obs = active_or_none(obs)
        self._signal = "span." + signal
        self.high_ms = high_ms
        self.low_ms = low_ms
        self.ladder = tuple(ladder)
        self.min_samples = min_samples
        self.cooldown_queries = cooldown_queries
        self._pressure_fn = pressure_fn
        self._level = 0
        self._since_step = 0
        self.steps_down = 0
        self.steps_up = 0
        if self._obs is not None:
            self._obs.gauge(
                "resilience.degrade_level",
                help="Current degradation-ladder level (0 = full fidelity)",
            )
            self._obs.counter(
                "resilience.degrade_steps",
                help="Ladder steps taken in either direction",
            )

    # -------------------------------------------------------------- #

    @property
    def level(self) -> int:
        return self._level

    @property
    def current(self) -> DegradationLevel:
        return self.ladder[self._level]

    @property
    def degraded(self) -> bool:
        return self._level > 0

    def stale_fallback_enabled(self) -> bool:
        return self.current.stale_fallback

    def tighten(self, deadline: Deadline) -> None:
        """Apply the current level's constraints to a request budget."""
        self.current.tighten(deadline)

    # -------------------------------------------------------------- #

    def on_query(self) -> None:
        """Per-query tick: every ``cooldown_queries`` calls, read the
        pressure signal and step the ladder."""
        self._since_step += 1
        if self._since_step < self.cooldown_queries:
            return
        self._since_step = 0
        pressure = self._read_pressure()
        if pressure is None:
            return
        if pressure > self.high_ms and self._level < len(self.ladder) - 1:
            self._level += 1
            self.steps_down += 1
            self._record_step()
        elif pressure < self.low_ms and self._level > 0:
            self._level -= 1
            self.steps_up += 1
            self._record_step()

    def _read_pressure(self) -> float | None:
        if self._pressure_fn is not None:
            return self._pressure_fn()
        if self._obs is None:
            return None
        metric = self._obs.get(self._signal)
        if not isinstance(metric, Histogram):
            return None
        if metric.count < self.min_samples:
            return None
        return metric.p95

    def _record_step(self) -> None:
        if self._obs is not None:
            self._obs.gauge("resilience.degrade_level").set(float(self._level))
            self._obs.counter("resilience.degrade_steps").inc()
