"""Per-request deadline budgets and the shared degraded-reason taxonomy.

A :class:`Deadline` is created once per request at the serving edge and
threaded through every layer the request touches: the ad server, the
batch engine, the cache, the sharded fan-outs, and the index probe loops
themselves.  It carries three things:

1. **the time budget** — ``expired()`` / ``remaining_ms()`` against an
   injectable millisecond clock (wall time in production,
   :class:`ManualClock` in tests, simulated time in distsim);
2. **degradation constraints** — optional ``max_probes`` /
   ``max_query_words`` overrides the adaptive
   :class:`~repro.resilience.degrade.DegradationPolicy` tightens under
   pressure, which the probe planner applies on top of the index's own
   configuration (the paper's Section IV truncation knob, pulled at
   request granularity);
3. **the partiality record** — any layer that returns early calls
   :meth:`mark_partial` with a :class:`DegradedReason`, so the caller
   always knows *that* and *why* a result is incomplete.  A partial
   result is never silent.

The clock is read lazily: an unlimited deadline never touches the clock,
so passing ``Deadline.unlimited()`` purely to carry constraints costs
nothing on the probe path.
"""

from __future__ import annotations

import time
from collections.abc import Callable
from enum import Enum

__all__ = ["Deadline", "DegradedReason", "ManualClock", "monotonic_ms"]

#: Millisecond clock signature shared by deadlines, breakers, and
#: admission controllers.
ClockMs = Callable[[], float]


def monotonic_ms() -> float:
    """The default production clock: ``time.monotonic()`` in ms."""
    return time.monotonic() * 1000.0


class ManualClock:
    """A hand-advanced millisecond clock for deterministic tests.

    Call the instance to read the time; :meth:`advance` moves it.  The
    overload scenario and the hypothesis deadline tests drive every
    budget decision through one of these, so expiry is exact and
    repeatable.
    """

    __slots__ = ("now_ms",)

    def __init__(self, now_ms: float = 0.0) -> None:
        self.now_ms = now_ms

    def advance(self, delta_ms: float) -> None:
        if delta_ms < 0:
            raise ValueError("clocks only move forward")
        self.now_ms += delta_ms

    def __call__(self) -> float:
        return self.now_ms


class DegradedReason(Enum):
    """Why a response is not the full-fidelity answer.

    Shared by every degradation path — load shedding, deadline expiry,
    probe capping, stale-cache fallback, partial shard fan-outs, and the
    PR 3 ``degrade_on_error`` empty slate — so a
    :class:`~repro.serving.server.ServeResult` always carries one
    machine-readable cause instead of an inexplicable empty list.
    """

    #: The full-fidelity answer; nothing was degraded.
    NONE = "none"
    #: Retrieval raised and the server degraded to an empty slate.
    RETRIEVAL_ERROR = "retrieval_error"
    #: Admission control shed the request: token bucket empty.
    SHED_CAPACITY = "shed_capacity"
    #: Admission control shed the request: queue too deep.
    SHED_QUEUE = "shed_queue"
    #: The deadline expired mid-query; the result covers only the probes
    #: executed before expiry.
    DEADLINE = "deadline"
    #: The probe plan was capped below the full enumeration.
    PROBES_CAPPED = "probes_capped"
    #: Query truncation was tightened below the index's configuration.
    TRUNCATED = "truncated"
    #: Retrieval failed but a stale cached result was served instead.
    STALE_CACHE = "stale_cache"
    #: Some shards were skipped (open breaker) or failed; the result is
    #: the union of the shards that answered.
    PARTIAL_SHARDS = "partial_shards"


class Deadline:
    """One request's time budget, degradation constraints, and
    partiality record.

    Parameters
    ----------
    expires_at_ms:
        Absolute expiry on ``clock``'s axis; ``None`` means unlimited.
    clock:
        Millisecond clock (default :func:`monotonic_ms`).
    max_probes:
        Optional cap on hash probes per index query (see
        :meth:`~repro.perf.prefilter.ProbePlan.capped`).
    max_query_words:
        Optional tightening of the index's query-truncation cutoff.
    """

    __slots__ = (
        "_expires_at_ms",
        "_clock",
        "max_probes",
        "max_query_words",
        "_partial_reasons",
    )

    def __init__(
        self,
        expires_at_ms: float | None = None,
        clock: ClockMs | None = None,
        max_probes: int | None = None,
        max_query_words: int | None = None,
    ) -> None:
        if max_probes is not None and max_probes < 1:
            raise ValueError("max_probes must be >= 1")
        if max_query_words is not None and max_query_words < 1:
            raise ValueError("max_query_words must be >= 1")
        self._expires_at_ms = expires_at_ms
        self._clock: ClockMs = clock if clock is not None else monotonic_ms
        self.max_probes = max_probes
        self.max_query_words = max_query_words
        self._partial_reasons: list[DegradedReason] = []

    # -------------------------------------------------------------- #
    # Construction

    @classmethod
    def after_ms(
        cls,
        budget_ms: float,
        clock: ClockMs | None = None,
        max_probes: int | None = None,
        max_query_words: int | None = None,
    ) -> Deadline:
        """A deadline ``budget_ms`` from now on ``clock``'s axis."""
        if budget_ms <= 0:
            raise ValueError("budget_ms must be positive")
        clock = clock if clock is not None else monotonic_ms
        return cls(
            expires_at_ms=clock() + budget_ms,
            clock=clock,
            max_probes=max_probes,
            max_query_words=max_query_words,
        )

    @classmethod
    def unlimited(
        cls,
        max_probes: int | None = None,
        max_query_words: int | None = None,
        clock: ClockMs | None = None,
    ) -> Deadline:
        """No time limit — a pure carrier for degradation constraints
        and the partiality record."""
        return cls(
            clock=clock,
            max_probes=max_probes,
            max_query_words=max_query_words,
        )

    # -------------------------------------------------------------- #
    # Budget

    @property
    def timed(self) -> bool:
        """True when this budget carries an actual expiry time.

        Untimed deadlines are pure carriers for degradation constraints
        and the partiality record; the :mod:`repro.kernels` bulk probe
        path engages only for untimed budgets, because a timed budget
        must be checked between individual hash probes.
        """
        return self._expires_at_ms is not None

    def expired(self) -> bool:
        """True once the budget is spent.  Checked between hash probes
        and between shard legs; never raises — callers return what they
        have, flagged."""
        expires = self._expires_at_ms
        return expires is not None and self._clock() >= expires

    def remaining_ms(self) -> float:
        """Budget left; ``inf`` when unlimited, floored at 0."""
        expires = self._expires_at_ms
        if expires is None:
            return float("inf")
        return max(0.0, expires - self._clock())

    def tighten(
        self,
        max_probes: int | None = None,
        max_query_words: int | None = None,
    ) -> None:
        """Apply degradation constraints, keeping the strictest of the
        existing and the new value for each knob."""
        if max_probes is not None:
            if self.max_probes is None:
                self.max_probes = max_probes
            else:
                self.max_probes = min(self.max_probes, max_probes)
        if max_query_words is not None:
            if self.max_query_words is None:
                self.max_query_words = max_query_words
            else:
                self.max_query_words = min(
                    self.max_query_words, max_query_words
                )

    # -------------------------------------------------------------- #
    # Partiality record

    def mark_partial(self, reason: DegradedReason) -> None:
        """Record that some layer returned early and why."""
        self._partial_reasons.append(reason)

    @property
    def partial(self) -> bool:
        """True when any layer returned less than the full answer."""
        return bool(self._partial_reasons)

    @property
    def partial_reasons(self) -> tuple[DegradedReason, ...]:
        """Every recorded reason, in the order layers reported them."""
        return tuple(self._partial_reasons)

    def primary_reason(self) -> DegradedReason:
        """The first recorded reason (the outermost early return), or
        :attr:`DegradedReason.NONE` for a complete result."""
        if self._partial_reasons:
            return self._partial_reasons[0]
        return DegradedReason.NONE

    def __repr__(self) -> str:
        if self._expires_at_ms is None:
            budget = "unlimited"
        else:
            budget = f"{self.remaining_ms():.1f}ms left"
        return f"Deadline({budget}, partial={self.partial})"
