"""A deterministic overload drill for the scatter-gather serving path.

This is the closed-loop exercise the resilience layer exists for: a
seeded :class:`~repro.distsim.scatter.ScatterGatherCluster` run where
one shard is an **error burst** (every leg dropped through the
``server.<shard>`` fault point for a window of visits) and another is a
**straggler** (service time inflated by a constant factor), driven at an
arrival rate the cluster cannot absorb without shedding.

With deadlines, breakers, retries, hedging, and admission control all
engaged, the run must satisfy the overload-smoke gates (enforced by
``tests/resilience/test_overload_smoke.py`` and the CI job of the same
name):

* **no unhandled exceptions** anywhere in the run;
* **admitted queries answer within the deadline** (the deadline
  force-complete makes every completed query's latency <= the budget) —
  at least :data:`WITHIN_DEADLINE_GATE` of them;
* the **shed fraction stays in a band**: admission must engage (load
  really is unsustainable) but must not collapse into shedding
  everything.

Everything is seeded and event-driven — two runs with the same
:class:`OverloadConfig` produce the same report, so the gates are exact
assertions, not flaky thresholds.

Run it directly for a human-readable report::

    python -m repro.resilience.overload
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.queries import Query
from repro.distsim.scatter import ScatterConfig, ScatterGatherCluster
from repro.faults.injector import FaultInjector
from repro.obs.registry import MetricsRegistry
from repro.resilience.admission import AdmissionConfig, AdmissionController
from repro.resilience.breaker import BreakerConfig

__all__ = [
    "SHED_FRACTION_BAND",
    "WITHIN_DEADLINE_GATE",
    "OverloadConfig",
    "OverloadReport",
    "run_overload_drill",
]

#: Minimum fraction of admitted queries that must answer within the
#: deadline budget.
WITHIN_DEADLINE_GATE = 0.99

#: Acceptable shed fraction under the default drill: admission must
#: engage without refusing the majority of traffic.
SHED_FRACTION_BAND = (0.005, 0.60)


@dataclass(frozen=True, slots=True)
class OverloadConfig:
    """Tuning for one drill run (defaults are the CI smoke scenario)."""

    num_shards: int = 4
    cores_per_server: int = 2
    duration_ms: float = 2_000.0
    seed: int = 7
    #: Offered load, deliberately above what admission will sustain.
    arrival_rate_qps: float = 400.0
    #: Base per-shard service time per query.
    service_ms: float = 5.0
    #: The straggler shard and its slowdown factor.
    slow_shard: int = 1
    slow_factor: float = 6.0
    #: The error-burst shard and how many consecutive legs it drops.
    error_shard: int = 2
    error_burst_legs: int = 300
    #: Per-query budget.
    deadline_ms: float = 50.0
    #: Per-shard timeout and bounded retry.
    shard_timeout_ms: float = 25.0
    max_retries: int = 2
    retry_backoff_ms: float = 2.0
    #: Hedge the last straggling leg after this delay.
    hedge_ms: float = 15.0
    #: Admission: sustained rate near capacity, and a queue bound tight
    #: enough that admitted work cannot wait out its own deadline
    #: (cluster-wide depth x service_ms / cores must stay << deadline).
    admission_rate_qps: float = 200.0
    admission_burst: float = 8.0
    max_queue_depth: int = 20

    def __post_init__(self) -> None:
        if not 0 <= self.slow_shard < self.num_shards:
            raise ValueError("slow_shard out of range")
        if not 0 <= self.error_shard < self.num_shards:
            raise ValueError("error_shard out of range")
        if self.slow_factor < 1.0:
            raise ValueError("slow_factor must be >= 1.0")
        if self.error_burst_legs < 0:
            raise ValueError("error_burst_legs must be >= 0")


@dataclass(slots=True)
class OverloadReport:
    """What one drill run did, plus the gate verdicts."""

    arrivals: int = 0
    shed: int = 0
    admitted: int = 0
    completed: int = 0
    failed: int = 0
    partial_results: int = 0
    deadline_completions: int = 0
    retries: int = 0
    retries_suppressed: int = 0
    hedges: int = 0
    breaker_short_circuits: int = 0
    breaker_opened: int = 0
    legs_attempted: list[int] = field(default_factory=list)
    p50_ms: float = 0.0
    p95_ms: float = 0.0
    max_ms: float = 0.0
    within_deadline_fraction: float = 0.0
    shed_fraction: float = 0.0
    unhandled_exceptions: int = 0

    def gates(self) -> dict[str, bool]:
        """The overload-smoke pass/fail verdicts."""
        lo, hi = SHED_FRACTION_BAND
        return {
            "no_unhandled_exceptions": self.unhandled_exceptions == 0,
            "within_deadline": (
                self.within_deadline_fraction >= WITHIN_DEADLINE_GATE
            ),
            "shed_fraction_in_band": lo <= self.shed_fraction <= hi,
        }

    def passed(self) -> bool:
        return all(self.gates().values())

    def as_dict(self) -> dict[str, Any]:
        return {
            "arrivals": self.arrivals,
            "shed": self.shed,
            "admitted": self.admitted,
            "completed": self.completed,
            "failed": self.failed,
            "partial_results": self.partial_results,
            "deadline_completions": self.deadline_completions,
            "retries": self.retries,
            "retries_suppressed": self.retries_suppressed,
            "hedges": self.hedges,
            "breaker_short_circuits": self.breaker_short_circuits,
            "breaker_opened": self.breaker_opened,
            "legs_attempted": list(self.legs_attempted),
            "p50_ms": self.p50_ms,
            "p95_ms": self.p95_ms,
            "max_ms": self.max_ms,
            "within_deadline_fraction": self.within_deadline_fraction,
            "shed_fraction": self.shed_fraction,
            "unhandled_exceptions": self.unhandled_exceptions,
            "gates": self.gates(),
        }


_DRILL_QUERIES = (
    "red running shoes",
    "cheap flights to paris",
    "used cars near me",
    "best laptop deals",
    "home insurance quote",
)


def run_overload_drill(
    config: OverloadConfig = OverloadConfig(),
    obs: MetricsRegistry | None = None,
) -> OverloadReport:
    """Run the seeded overload scenario end to end and score the gates."""
    registry = obs if obs is not None else MetricsRegistry()
    faults = FaultInjector()
    if config.error_burst_legs > 0:
        faults.arm_forever(
            f"server.shard{config.error_shard}",
            hits=1,
            times=config.error_burst_legs,
        )

    def service(shard: int, query: Query) -> float:
        base = config.service_ms + 0.5 * len(query.words)
        if shard == config.slow_shard:
            return base * config.slow_factor
        return base

    scatter_config = ScatterConfig(
        num_shards=config.num_shards,
        cores_per_server=config.cores_per_server,
        duration_ms=config.duration_ms,
        seed=config.seed,
        shard_timeout_ms=config.shard_timeout_ms,
        max_retries=config.max_retries,
        retry_backoff_ms=config.retry_backoff_ms,
        allow_partial=True,
        min_shards=1,
        deadline_ms=config.deadline_ms,
        breaker=BreakerConfig(),
        hedge_ms=config.hedge_ms,
    )
    cluster = ScatterGatherCluster(
        service, scatter_config, obs=registry, faults=faults
    )
    # The admission clock is the *simulated* clock: the cluster exposes
    # its live event queue, so refill tracks event time, deterministically.
    cluster.admission = AdmissionController(
        AdmissionConfig(
            rate_per_s=config.admission_rate_qps,
            burst=config.admission_burst,
            max_queue_depth=config.max_queue_depth,
        ),
        clock=lambda: cluster.events.now if cluster.events else 0.0,
        obs=registry,
    )

    report = OverloadReport()
    queries = [Query.from_text(text) for text in _DRILL_QUERIES]
    try:
        metrics = cluster.run(queries, config.arrival_rate_qps)
    except Exception:
        report.unhandled_exceptions = 1
        raise
    latencies = sorted(metrics.latencies_ms)
    report.completed = len(latencies)
    report.shed = cluster.shed_queries
    report.failed = int(registry.value("scatter.failed_queries"))
    report.admitted = report.completed + report.failed
    report.arrivals = report.admitted + report.shed
    report.partial_results = int(registry.value("partial_results"))
    report.deadline_completions = cluster.deadline_completions
    report.retries = int(registry.value("scatter.retries"))
    report.retries_suppressed = int(
        registry.value("resilience.retries_suppressed")
    )
    report.hedges = int(registry.value("resilience.hedges"))
    report.breaker_short_circuits = int(
        registry.value("resilience.breaker_short_circuits")
    )
    report.breaker_opened = int(registry.value("resilience.breaker_opened"))
    report.legs_attempted = list(cluster.legs_attempted)
    if latencies:
        report.p50_ms = latencies[len(latencies) // 2]
        report.p95_ms = latencies[min(
            len(latencies) - 1, int(len(latencies) * 0.95)
        )]
        report.max_ms = latencies[-1]
    # Force-complete caps every completed query at the budget; the
    # network-hop epsilon covers the gather's final response delay for
    # queries that completed right at the wire.
    epsilon = 1e-9
    within = sum(1 for ms in latencies if ms <= config.deadline_ms + epsilon)
    if report.admitted:
        report.within_deadline_fraction = within / report.admitted
    if report.arrivals:
        report.shed_fraction = report.shed / report.arrivals
    return report


def main() -> int:
    report = run_overload_drill()
    print("overload drill report")
    print("---------------------")
    for key, value in report.as_dict().items():
        if key == "gates":
            continue
        print(f"{key:28s} {value}")
    print("gates:")
    for gate, ok in report.gates().items():
        print(f"  {gate:26s} {'PASS' if ok else 'FAIL'}")
    return 0 if report.passed() else 1


if __name__ == "__main__":
    raise SystemExit(main())
