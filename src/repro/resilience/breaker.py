"""Per-shard circuit breakers: closed → open → half-open.

A wide fan-out with retries *amplifies* an overloaded shard: every query
that times out against it is retried against it, which is exactly the
metastable-failure pattern the tail-at-scale literature describes.  The
breaker is the standard antidote — measure the recent error/timeout rate
per shard over a sliding window, and once it crosses the threshold stop
sending work there at all.  After a cooling-off period a half-open probe
tests whether the shard recovered; one success closes the breaker, one
failure re-opens it.

The clock is injectable so the same breaker runs against wall time in
the live fan-out paths and against simulated time inside
:mod:`repro.distsim.scatter` — which is how the retry-storm regression
test can assert, deterministically, that attempted legs to a dead shard
stay bounded by the breaker window.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from enum import Enum

from repro.obs.registry import MetricsRegistry, active_or_none
from repro.resilience.deadline import ClockMs, monotonic_ms

__all__ = ["BreakerConfig", "BreakerState", "CircuitBreaker"]


class BreakerState(Enum):
    """Where a :class:`CircuitBreaker` is in its recovery cycle."""

    #: Traffic flows; outcomes feed the sliding window.
    CLOSED = "closed"
    #: Failure rate crossed the threshold; all traffic short-circuits.
    OPEN = "open"
    #: Cooling-off elapsed; a bounded number of probes test recovery.
    HALF_OPEN = "half_open"


@dataclass(frozen=True, slots=True)
class BreakerConfig:
    """Tuning for one :class:`CircuitBreaker`.

    Parameters
    ----------
    window:
        Sliding window length, in recorded outcomes.
    failure_threshold:
        Open when ``failures / outcomes`` in the window reaches this.
    min_samples:
        Never open on fewer than this many recorded outcomes (a single
        failure out of one sample is not a trend).
    reset_after_ms:
        Cooling-off before an open breaker admits half-open probes.
    half_open_probes:
        Probe legs allowed through while half-open; the first recorded
        success closes the breaker, the first failure re-opens it.
    """

    window: int = 20
    failure_threshold: float = 0.5
    min_samples: int = 5
    reset_after_ms: float = 1_000.0
    half_open_probes: int = 1

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValueError("window must be >= 1")
        if not 0.0 < self.failure_threshold <= 1.0:
            raise ValueError("failure_threshold must be in (0, 1]")
        if self.min_samples < 1:
            raise ValueError("min_samples must be >= 1")
        if self.reset_after_ms <= 0:
            raise ValueError("reset_after_ms must be positive")
        if self.half_open_probes < 1:
            raise ValueError("half_open_probes must be >= 1")


class CircuitBreaker:
    """One shard's breaker: sliding-window failure rate with a
    half-open recovery probe.

    ``allow()`` is the admission gate callers check before dispatching a
    leg; ``record_success()`` / ``record_failure()`` feed the outcome of
    every *attempted* leg back (a short-circuited leg was never
    attempted and must not be recorded).  State transitions increment
    the shared ``resilience.breaker_opened`` / ``_closed`` /
    ``_half_open`` counters when a registry is attached.
    """

    __slots__ = (
        "config",
        "name",
        "_clock",
        "_obs",
        "_state",
        "_outcomes",
        "_failures",
        "_opened_at_ms",
        "_half_open_issued",
        "short_circuits",
        "opened_count",
    )

    def __init__(
        self,
        config: BreakerConfig | None = None,
        clock: ClockMs | None = None,
        obs: MetricsRegistry | None = None,
        name: str = "",
    ) -> None:
        self.config = config if config is not None else BreakerConfig()
        self.name = name
        self._clock: ClockMs = clock if clock is not None else monotonic_ms
        self._obs = active_or_none(obs)
        self._state = BreakerState.CLOSED
        self._outcomes: deque[bool] = deque(maxlen=self.config.window)
        self._failures = 0
        self._opened_at_ms = 0.0
        self._half_open_issued = 0
        #: Legs rejected while open (this breaker's own tally; the shared
        #: counter aggregates across shards).
        self.short_circuits = 0
        #: Times this breaker transitioned closed/half-open -> open.
        self.opened_count = 0

    # -------------------------------------------------------------- #

    @property
    def state(self) -> BreakerState:
        return self._state

    def failure_rate(self) -> float:
        if not self._outcomes:
            return 0.0
        return self._failures / len(self._outcomes)

    def allow(self) -> bool:
        """May a leg be dispatched to this shard right now?"""
        if self._state is BreakerState.CLOSED:
            return True
        if self._state is BreakerState.OPEN:
            elapsed = self._clock() - self._opened_at_ms
            if elapsed < self.config.reset_after_ms:
                self.short_circuits += 1
                self._count("resilience.breaker_short_circuits")
                return False
            self._transition(BreakerState.HALF_OPEN)
            self._half_open_issued = 0
        # HALF_OPEN: admit a bounded number of probes.
        if self._half_open_issued < self.config.half_open_probes:
            self._half_open_issued += 1
            return True
        self.short_circuits += 1
        self._count("resilience.breaker_short_circuits")
        return False

    def record_success(self) -> None:
        """An attempted leg completed."""
        if self._state is BreakerState.HALF_OPEN:
            self._close()
            return
        self._push(True)

    def record_failure(self) -> None:
        """An attempted leg failed or timed out."""
        if self._state is BreakerState.HALF_OPEN:
            self._open()
            return
        self._push(False)
        if (
            self._state is BreakerState.CLOSED
            and len(self._outcomes) >= self.config.min_samples
            and self.failure_rate() >= self.config.failure_threshold
        ):
            self._open()

    def reset_half_open(self) -> None:
        """External recovery signal: the guarded resource was replaced
        (e.g. a supervised worker respawned), so the recorded window
        describes a process that no longer exists.  Forget it and admit
        half-open probes immediately — the first success closes the
        breaker — instead of waiting out ``reset_after_ms`` against a
        healthy replacement.
        """
        self._outcomes.clear()
        self._failures = 0
        self._half_open_issued = 0
        self._opened_at_ms = self._clock()
        self._transition(BreakerState.HALF_OPEN)

    # -------------------------------------------------------------- #

    def _push(self, success: bool) -> None:
        outcomes = self._outcomes
        if len(outcomes) == outcomes.maxlen:
            if not outcomes[0]:
                self._failures -= 1
        outcomes.append(success)
        if not success:
            self._failures += 1

    def _open(self) -> None:
        self._opened_at_ms = self._clock()
        self.opened_count += 1
        self._transition(BreakerState.OPEN)
        self._count("resilience.breaker_opened")

    def _close(self) -> None:
        self._outcomes.clear()
        self._failures = 0
        self._transition(BreakerState.CLOSED)
        self._count("resilience.breaker_closed")

    def _transition(self, state: BreakerState) -> None:
        self._state = state
        if state is BreakerState.HALF_OPEN:
            self._count("resilience.breaker_half_open")

    def _count(self, counter: str) -> None:
        if self._obs is not None:
            self._obs.counter(counter).inc()

    def __repr__(self) -> str:
        return (
            f"CircuitBreaker({self.name or 'unnamed'}, "
            f"{self._state.value}, rate={self.failure_rate():.2f})"
        )
