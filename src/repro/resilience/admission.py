"""Admission control: token bucket with priority classes and
queue-depth load shedding.

Under overload the worst thing a server can do is accept every request
and let them all time out together.  The controller bounds accepted work
two ways:

* a **token bucket** (``rate_per_s`` sustained, ``burst`` peak) — the
  capacity the operator believes the serving path can actually sustain;
* a **queue-depth limit** — the backlog beyond which even rate-compliant
  work would just wait out its deadline in line.

Both shed the *lowest priority first*: each priority class sees a
reserve carved out of the bucket and a fraction of the depth limit, so
LOW traffic sheds while NORMAL still flows and HIGH is the last to go.
A shed request always gets an explicit
:class:`~repro.resilience.deadline.DegradedReason` — callers turn it
into a flagged empty response, never a dropped connection.

The clock is injectable (wall time in :class:`~repro.serving.server
.AdServer`, simulated time in :mod:`repro.distsim.scatter`), so shed
behaviour is deterministic under test.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum

from repro.obs.registry import MetricsRegistry, active_or_none
from repro.resilience.deadline import ClockMs, DegradedReason, monotonic_ms

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "AdmissionDecision",
    "Priority",
]


class Priority(IntEnum):
    """Request priority class; higher survives overload longer."""

    LOW = 0
    NORMAL = 1
    HIGH = 2

    @classmethod
    def from_name(cls, name: str) -> Priority:
        """Parse ``low``/``normal``/``high`` (the CLI flag values)."""
        try:
            return cls[name.upper()]
        except KeyError:
            raise ValueError(f"unknown priority {name!r}") from None


#: Fraction of ``burst`` a request's priority must leave untouched in
#: the bucket: LOW only draws from a mostly-full bucket, HIGH drains it
#: to the last token.
_TOKEN_RESERVE: dict[Priority, float] = {
    Priority.LOW: 0.30,
    Priority.NORMAL: 0.10,
    Priority.HIGH: 0.0,
}

#: Fraction of ``max_queue_depth`` at which each priority sheds.
_QUEUE_FRACTION: dict[Priority, float] = {
    Priority.LOW: 0.50,
    Priority.NORMAL: 0.80,
    Priority.HIGH: 1.0,
}


@dataclass(frozen=True, slots=True)
class AdmissionConfig:
    """Tuning for one :class:`AdmissionController`.

    Parameters
    ----------
    rate_per_s:
        Sustained admissions per second refilled into the bucket;
        ``None`` disables rate limiting (depth-only shedding).
    burst:
        Bucket capacity — admissions allowed back-to-back from a full
        bucket.
    max_queue_depth:
        Backlog (caller-reported or tracked in-flight) beyond which
        requests shed; ``None`` disables depth shedding.
    """

    rate_per_s: float | None = None
    burst: float = 32.0
    max_queue_depth: int | None = None

    def __post_init__(self) -> None:
        if self.rate_per_s is not None and self.rate_per_s <= 0:
            raise ValueError("rate_per_s must be positive")
        if self.burst < 1:
            raise ValueError("burst must be >= 1")
        if self.max_queue_depth is not None and self.max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")


@dataclass(frozen=True, slots=True)
class AdmissionDecision:
    """What the controller decided for one request."""

    admitted: bool
    #: :attr:`DegradedReason.NONE` when admitted, else the shed cause.
    reason: DegradedReason


_ADMITTED = AdmissionDecision(admitted=True, reason=DegradedReason.NONE)


class AdmissionController:
    """Priority-aware token bucket + queue-depth shedder.

    ``try_admit`` is the only hot-path call: one clock read, one refill,
    two comparisons.  ``release`` returns an in-flight slot when the
    caller tracks depth through the controller itself rather than
    reporting it (``queue_depth=None`` uses the internal in-flight
    count).
    """

    __slots__ = ("config", "_clock", "_obs", "_tokens", "_refilled_at_ms", "_inflight")

    def __init__(
        self,
        config: AdmissionConfig | None = None,
        clock: ClockMs | None = None,
        obs: MetricsRegistry | None = None,
    ) -> None:
        self.config = config if config is not None else AdmissionConfig()
        self._clock: ClockMs = clock if clock is not None else monotonic_ms
        self._obs = active_or_none(obs)
        self._tokens = self.config.burst
        self._refilled_at_ms = self._clock()
        self._inflight = 0
        if self._obs is not None:
            self._obs.counter(
                "resilience.admitted", help="Requests admitted to serving"
            )
            self._obs.counter(
                "resilience.shed", help="Requests shed by admission control"
            )
            self._obs.counter(
                "resilience.shed_capacity",
                help="Requests shed because the token bucket ran dry",
            )
            self._obs.counter(
                "resilience.shed_queue",
                help="Requests shed because the queue was too deep",
            )

    # -------------------------------------------------------------- #

    def try_admit(
        self,
        priority: Priority = Priority.NORMAL,
        queue_depth: int | None = None,
    ) -> AdmissionDecision:
        """Admit or shed one request of ``priority``.

        ``queue_depth`` reports the caller's backlog (e.g. distsim's
        outstanding jobs); ``None`` uses the controller's own in-flight
        count (callers then pair each admit with :meth:`release`).
        """
        config = self.config
        if config.max_queue_depth is not None:
            depth = self._inflight if queue_depth is None else queue_depth
            limit = config.max_queue_depth * _QUEUE_FRACTION[priority]
            if depth > limit:
                return self._shed(DegradedReason.SHED_QUEUE)
        if config.rate_per_s is not None:
            self._refill()
            needed = 1.0 + config.burst * _TOKEN_RESERVE[priority]
            if self._tokens < needed:
                return self._shed(DegradedReason.SHED_CAPACITY)
            self._tokens -= 1.0
        self._inflight += 1
        if self._obs is not None:
            self._obs.counter("resilience.admitted").inc()
        return _ADMITTED

    def release(self) -> None:
        """Return one in-flight slot (pairs with an admitted request)."""
        if self._inflight > 0:
            self._inflight -= 1

    # -------------------------------------------------------------- #

    @property
    def inflight(self) -> int:
        return self._inflight

    def tokens(self) -> float:
        """Current bucket level (after refill) — for tests and gauges."""
        self._refill()
        return self._tokens

    def _refill(self) -> None:
        rate = self.config.rate_per_s
        if rate is None:
            return
        now = self._clock()
        elapsed_ms = now - self._refilled_at_ms
        if elapsed_ms > 0:
            self._tokens = min(
                self.config.burst,
                self._tokens + (elapsed_ms / 1000.0) * rate,
            )
            self._refilled_at_ms = now

    def _shed(self, reason: DegradedReason) -> AdmissionDecision:
        if self._obs is not None:
            self._obs.counter("resilience.shed").inc()
            if reason is DegradedReason.SHED_QUEUE:
                self._obs.counter("resilience.shed_queue").inc()
            else:
                self._obs.counter("resilience.shed_capacity").inc()
        return AdmissionDecision(admitted=False, reason=reason)
