"""Breaker-guarded in-process shard fan-out.

:class:`~repro.core.sharded.ShardedWordSetIndex` and
:class:`~repro.segment.ShardedSegmentedIndex` gather every shard
sequentially in-process, so a shard that starts raising (mid-recovery,
a corrupted segment, an injected fault) would fail every query even
though the other shards hold most of the corpus.  :class:`FanoutGuard`
wraps the gather loop with the same semantics PR 3 gave the simulated
scatter: per-shard :class:`~repro.resilience.breaker.CircuitBreaker`\\ s
short-circuit a failing shard, ``allow_partial``/``min_shards`` decide
whether the surviving union is a usable answer, and every partial result
is flagged on the request's :class:`~repro.resilience.deadline.Deadline`
with :attr:`DegradedReason.PARTIAL_SHARDS` — never returned silently.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from typing import TypeVar

from repro.obs.registry import MetricsRegistry, active_or_none
from repro.resilience.breaker import BreakerConfig, CircuitBreaker
from repro.resilience.deadline import ClockMs, Deadline, DegradedReason

__all__ = ["FanoutGuard", "ShardsUnavailableError"]

_Shard = TypeVar("_Shard")
_Result = TypeVar("_Result")


class ShardsUnavailableError(RuntimeError):
    """Too few shards answered to form a usable (even partial) result."""

    def __init__(self, ok: int, required: int, total: int) -> None:
        super().__init__(
            f"only {ok} of {total} shards answered; need >= {required}"
        )
        self.ok = ok
        self.required = required
        self.total = total


class FanoutGuard:
    """Per-shard breakers + partial-result policy for one sharded index.

    Parameters
    ----------
    num_shards:
        Number of shards the guarded index fans out to.
    breaker:
        Breaker tuning shared by every shard's breaker.
    allow_partial:
        When True, a query completes with the shards that answered; when
        False any shard failure propagates (breakers still record it).
    min_shards:
        Minimum successful shards for a usable partial result
        (default 1).
    clock / obs:
        Millisecond clock for the breakers and the shared metrics
        registry for the ``resilience.*`` counters.
    """

    def __init__(
        self,
        num_shards: int,
        breaker: BreakerConfig | None = None,
        allow_partial: bool = True,
        min_shards: int | None = None,
        clock: ClockMs | None = None,
        obs: MetricsRegistry | None = None,
    ) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if min_shards is not None and not 1 <= min_shards <= num_shards:
            raise ValueError("min_shards must be in [1, num_shards]")
        self.allow_partial = allow_partial
        self.min_shards = 1 if min_shards is None else min_shards
        self._obs = active_or_none(obs)
        self.breakers = [
            CircuitBreaker(
                config=breaker, clock=clock, obs=self._obs, name=f"shard{i}"
            )
            for i in range(num_shards)
        ]
        if self._obs is not None:
            self._obs.counter(
                "resilience.shard_errors",
                help="Shard queries that raised during guarded fan-out",
            )
            self._obs.counter(
                "resilience.partial_fanouts",
                help="Guarded fan-outs answered by fewer than all shards",
            )

    def gather(
        self,
        shards: Sequence[_Shard],
        call: Callable[[_Shard], list[_Result]],
        deadline: Deadline | None = None,
    ) -> list[_Result]:
        """Run ``call`` against every shard under breaker protection.

        Returns the union of the shards that answered.  Raises the
        shard's own exception when ``allow_partial`` is False, or
        :class:`ShardsUnavailableError` when fewer than ``min_shards``
        answered.
        """
        if len(shards) != len(self.breakers):
            raise ValueError(
                f"guard built for {len(self.breakers)} shards, "
                f"got {len(shards)}"
            )
        results: list[_Result] = []
        ok = 0
        degraded = 0
        for shard, breaker in zip(shards, self.breakers):
            if deadline is not None and deadline.expired():
                # Out of budget mid-gather: the shards already answered
                # are the result — flagged, never silent.
                deadline.mark_partial(DegradedReason.DEADLINE)
                if self._obs is not None:
                    self._obs.counter("resilience.partial_fanouts").inc()
                return results
            if not breaker.allow():
                # Fail fast: an open breaker means the shard is known
                # bad; without partial-result permission that fails the
                # query immediately instead of hammering the shard.
                if not self.allow_partial:
                    raise ShardsUnavailableError(
                        ok, len(shards), len(shards)
                    )
                degraded += 1
                continue
            try:
                matched = call(shard)
            except Exception:
                breaker.record_failure()
                degraded += 1
                if self._obs is not None:
                    self._obs.counter("resilience.shard_errors").inc()
                if not self.allow_partial:
                    raise
                continue
            breaker.record_success()
            ok += 1
            results.extend(matched)
        if degraded:
            if ok < self.min_shards:
                raise ShardsUnavailableError(
                    ok, self.min_shards, len(shards)
                )
            if deadline is not None:
                deadline.mark_partial(DegradedReason.PARTIAL_SHARDS)
            if self._obs is not None:
                self._obs.counter("resilience.partial_fanouts").inc()
        return results
