"""Worker supervision: the loop that makes the serving tier self-heal.

A :class:`~repro.netserve.cluster.ServingCluster` without supervision
boots its workers once; a SIGKILL'd or wedged worker then stays dead for
the life of the cluster and the frontend sheds that worker's share of
traffic forever.  :class:`WorkerSupervisor` closes that gap.  It runs a
daemon thread in the cluster-owning process that, every
``poll_interval_s``:

* **detects death** — ``Process.is_alive()`` / exitcode, catching
  SIGKILL, OOM kills, and uncaught exceptions;
* **detects hangs** — a heartbeat ``ping`` frame with a hard timeout,
  so a worker that is *alive but not answering* (SIGSTOP'd, deadlocked,
  spinning) is detected too; after ``hang_misses`` consecutive missed
  pings the worker is SIGKILL'd (SIGKILL terminates stopped processes,
  which ``terminate``'s SIGTERM cannot) and treated as dead;
* **respawns** — with exponential backoff per :class:`RestartBudget`,
  unlinking the dead incarnation's stale ``AF_UNIX`` socket path before
  the rebind so the fresh worker can never collide with the corpse's
  file;
* **re-verifies zero-copy** — every respawned worker is probed for its
  :mod:`repro.netserve.memory` mapping report; a worker whose private
  mapping bytes exceed ``mapping_private_fraction`` of the segment is
  counted in ``supervisor.mapping_violations`` (the PR 7 zero-copy
  claim must survive respawns, not just boots);
* **gives up honestly** — a worker that flaps ``crash_loop_budget``
  times inside ``crash_loop_window_s`` is marked permanently
  :attr:`~WorkerStatus.FAILED`; the frontend is told
  (``on_worker_failed``) so its traffic share is rebalanced onto the
  survivors instead of burning retries against a crash loop.

On every successful respawn the frontend is notified
(``on_worker_ready``) so the worker's circuit breaker resets to
half-open — the first real request closes it — rather than waiting out
the breaker's own cooling-off with a healthy worker idle.

:meth:`rolling_restart` is the planned-maintenance primitive built on
the same machinery: restart workers **one at a time** (graceful
``shutdown`` frame → drain → respawn → ready-gate), so a new manifest
generation or config can be picked up with no capacity gap and no
crash-loop accounting.

Counters (in the supervisor's :mod:`repro.obs` registry, surfaced by
:meth:`WorkerSupervisor.stats` and the chaos report):
``supervisor.deaths_detected``, ``supervisor.hangs_detected``,
``supervisor.respawns``, ``supervisor.rolling_restarts``,
``supervisor.crash_loops``, ``supervisor.mapping_violations``, and the
``supervisor.workers_alive`` gauge.
"""

from __future__ import annotations

import contextlib
import os
import socket
import threading
from collections import deque
from dataclasses import dataclass
from enum import Enum
from multiprocessing.process import BaseProcess
from time import monotonic, sleep
from typing import Any, Callable

from repro.netserve.wire import (
    DEFAULT_MAX_FRAME_BYTES,
    WireError,
    recv_frame,
    send_frame,
)
from repro.obs.registry import MetricsRegistry

__all__ = [
    "RestartBudget",
    "SupervisorConfig",
    "WorkerStatus",
    "WorkerSupervisor",
]


@dataclass(frozen=True, slots=True)
class SupervisorConfig:
    """Tuning for one :class:`WorkerSupervisor`.

    Parameters
    ----------
    poll_interval_s:
        How often the supervision loop wakes to check every worker.
    ping_timeout_s:
        Budget for one heartbeat round trip (connect + ping + pong).
        A worker that cannot answer within it records a miss.
    hang_misses:
        Consecutive heartbeat misses before a live-but-silent worker is
        declared hung and SIGKILL'd.  2 (the default) tolerates one
        unlucky probe landing during a long GC pause or batch.
    backoff_initial_s / backoff_max_s:
        Exponential respawn backoff: the first failure in a window
        respawns after ``backoff_initial_s``, each further failure
        doubles it, capped at ``backoff_max_s``.
    crash_loop_window_s / crash_loop_budget:
        A worker that fails ``crash_loop_budget`` times within
        ``crash_loop_window_s`` is flapping — likely a poisoned segment
        or bad config a respawn cannot fix — and is marked permanently
        FAILED instead of respawned forever.
    ready_timeout_s:
        How long a respawned worker gets to answer its first ping
        before the respawn itself is counted as another failure.
    verify_mapping / mapping_private_fraction:
        After each respawn, probe the worker's ``stats`` frame and
        check its segment-mapping report: private bytes must stay under
        ``mapping_private_fraction`` of the mapped segment (the
        zero-copy gate).  Violations are counted, not fatal.
    """

    poll_interval_s: float = 0.25
    ping_timeout_s: float = 1.0
    hang_misses: int = 2
    backoff_initial_s: float = 0.1
    backoff_max_s: float = 2.0
    crash_loop_window_s: float = 30.0
    crash_loop_budget: int = 5
    ready_timeout_s: float = 10.0
    verify_mapping: bool = True
    mapping_private_fraction: float = 0.25

    def __post_init__(self) -> None:
        if self.poll_interval_s <= 0:
            raise ValueError("poll_interval_s must be positive")
        if self.ping_timeout_s <= 0:
            raise ValueError("ping_timeout_s must be positive")
        if self.hang_misses < 1:
            raise ValueError("hang_misses must be >= 1")
        if self.backoff_initial_s <= 0:
            raise ValueError("backoff_initial_s must be positive")
        if self.backoff_max_s < self.backoff_initial_s:
            raise ValueError("backoff_max_s must be >= backoff_initial_s")
        if self.crash_loop_window_s <= 0:
            raise ValueError("crash_loop_window_s must be positive")
        if self.crash_loop_budget < 1:
            raise ValueError("crash_loop_budget must be >= 1")
        if self.ready_timeout_s <= 0:
            raise ValueError("ready_timeout_s must be positive")
        if not 0.0 < self.mapping_private_fraction <= 1.0:
            raise ValueError(
                "mapping_private_fraction must be in (0, 1]"
            )


class RestartBudget:
    """Crash-loop accounting for one worker: pure and clock-free, so
    the flap/backoff arithmetic is unit-testable without processes.

    Each failure inside the sliding window doubles the backoff;
    exhausting ``budget`` failures within ``window_s`` means the worker
    is flapping and :meth:`note_failure` returns ``None`` — give up.
    A worker that stays healthy long enough for its failures to age out
    of the window earns its fast initial backoff back.
    """

    __slots__ = ("budget", "window_s", "initial_s", "max_s", "_failures")

    def __init__(
        self,
        budget: int,
        window_s: float,
        initial_s: float,
        max_s: float,
    ) -> None:
        if budget < 1:
            raise ValueError("budget must be >= 1")
        self.budget = budget
        self.window_s = window_s
        self.initial_s = initial_s
        self.max_s = max_s
        self._failures: deque[float] = deque()

    def _prune(self, now: float) -> None:
        cutoff = now - self.window_s
        while self._failures and self._failures[0] <= cutoff:
            self._failures.popleft()

    def failures_in_window(self, now: float) -> int:
        self._prune(now)
        return len(self._failures)

    def note_failure(self, now: float) -> float | None:
        """Record one failure; the backoff before the next respawn, or
        ``None`` when the budget is exhausted (stop respawning)."""
        self._prune(now)
        self._failures.append(now)
        if len(self._failures) >= self.budget:
            return None
        return min(
            self.initial_s * (2.0 ** (len(self._failures) - 1)),
            self.max_s,
        )


class WorkerStatus(Enum):
    """Where one supervised worker is in its lifecycle."""

    #: Alive and answering heartbeats; traffic flows.
    RUNNING = "running"
    #: Dead or hung; a respawn is scheduled after backoff.
    BACKOFF = "backoff"
    #: Crash-loop budget exhausted; never respawned again, traffic
    #: share rebalanced onto the survivors.
    FAILED = "failed"


class _Supervised:
    """One worker's supervision state."""

    __slots__ = (
        "worker_id",
        "socket_path",
        "proc",
        "status",
        "budget",
        "ping_misses",
        "next_spawn_at",
        "restarts",
        "rolling_restarts",
        "last_exitcode",
        "last_failure",
        "mapping_ok",
    )

    def __init__(
        self,
        worker_id: int,
        socket_path: str,
        proc: BaseProcess,
        budget: RestartBudget,
    ) -> None:
        self.worker_id = worker_id
        self.socket_path = socket_path
        self.proc: BaseProcess | None = proc
        self.status = WorkerStatus.RUNNING
        self.budget = budget
        self.ping_misses = 0
        self.next_spawn_at = 0.0
        self.restarts = 0
        self.rolling_restarts = 0
        self.last_exitcode: int | None = None
        self.last_failure: str | None = None
        self.mapping_ok: bool | None = None


class WorkerSupervisor:
    """The supervision loop (see module docstring).

    ``spawn(worker_id) -> BaseProcess`` is supplied by the cluster: it
    forks a fresh worker for that id (same :class:`WorkerConfig`, same
    segment) and keeps the cluster's own process table in sync.  The
    supervisor owns *when* to call it, never *how* a worker is built.
    """

    def __init__(
        self,
        spawn: Callable[[int], BaseProcess],
        config: SupervisorConfig | None = None,
        obs: MetricsRegistry | None = None,
        on_worker_ready: Callable[[int], None] | None = None,
        on_worker_failed: Callable[[int], None] | None = None,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    ) -> None:
        self.config = config if config is not None else SupervisorConfig()
        self.obs = obs if obs is not None else MetricsRegistry()
        self._spawn = spawn
        self._on_worker_ready = on_worker_ready
        self._on_worker_failed = on_worker_failed
        self._max_frame_bytes = max_frame_bytes
        self._entries: list[_Supervised] = []
        self._lock = threading.RLock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        for name, help_text in (
            ("supervisor.deaths_detected", "Workers found exited"),
            ("supervisor.hangs_detected", "Workers alive but not answering"),
            ("supervisor.respawns", "Successful crash-recovery respawns"),
            ("supervisor.rolling_restarts", "Planned one-at-a-time restarts"),
            ("supervisor.crash_loops", "Workers retired for flapping"),
            ("supervisor.respawn_failures", "Respawns that never got ready"),
            ("supervisor.mapping_violations", "Respawns that lost zero-copy"),
        ):
            self.obs.counter(name, help=help_text)
        self.obs.gauge(
            "supervisor.workers_alive", help="Workers currently RUNNING"
        )

    # ---------------------------------------------------------- #
    # Lifecycle

    def watch(
        self, worker_id: int, socket_path: str, proc: BaseProcess
    ) -> None:
        """Register one already-running worker for supervision."""
        config = self.config
        with self._lock:
            self._entries.append(
                _Supervised(
                    worker_id,
                    socket_path,
                    proc,
                    RestartBudget(
                        config.crash_loop_budget,
                        config.crash_loop_window_s,
                        config.backoff_initial_s,
                        config.backoff_max_s,
                    ),
                )
            )

    def start(self) -> None:
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="netserve-supervisor", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop supervising.  Must run before cluster teardown, or the
        loop would faithfully resurrect every worker being stopped."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=self.config.ready_timeout_s + 5.0)
            self._thread = None

    def _run(self) -> None:
        while not self._stop.wait(self.config.poll_interval_s):
            self._tick()

    # ---------------------------------------------------------- #
    # The supervision tick

    def _tick(self) -> None:
        with self._lock:
            if self._stop.is_set():
                return
            now = monotonic()
            for entry in self._entries:
                if entry.status is WorkerStatus.FAILED:
                    continue
                if entry.status is WorkerStatus.BACKOFF:
                    if now >= entry.next_spawn_at:
                        self._respawn(entry)
                    continue
                proc = entry.proc
                if proc is None or not proc.is_alive():
                    entry.last_exitcode = (
                        proc.exitcode if proc is not None else None
                    )
                    self.obs.counter("supervisor.deaths_detected").inc()
                    self._note_failure(entry, "exit")
                    continue
                if self._ping(entry.socket_path, self.config.ping_timeout_s):
                    entry.ping_misses = 0
                    continue
                entry.ping_misses += 1
                if entry.ping_misses >= self.config.hang_misses:
                    # Alive but silent: SIGSTOP'd, deadlocked, or
                    # spinning.  SIGKILL is the only signal a stopped
                    # process cannot ignore or defer.
                    self.obs.counter("supervisor.hangs_detected").inc()
                    self._kill(entry)
                    self._note_failure(entry, "hang")
            self.obs.gauge("supervisor.workers_alive").set(
                float(
                    sum(
                        1
                        for entry in self._entries
                        if entry.status is WorkerStatus.RUNNING
                    )
                )
            )

    def _ping(self, path: str, timeout_s: float) -> bool:
        try:
            with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as probe:
                probe.settimeout(timeout_s)
                probe.connect(path)
                send_frame(probe, {"type": "ping"}, self._max_frame_bytes)
                reply = recv_frame(probe, self._max_frame_bytes)
            return reply is not None and reply.get("type") == "pong"
        except (OSError, WireError):
            return False

    def _kill(self, entry: _Supervised) -> None:
        proc = entry.proc
        if proc is None:
            return
        with contextlib.suppress(OSError, ValueError):
            proc.kill()
        proc.join(timeout=5.0)
        entry.last_exitcode = proc.exitcode

    def _note_failure(self, entry: _Supervised, reason: str) -> None:
        entry.last_failure = reason
        entry.ping_misses = 0
        delay = entry.budget.note_failure(monotonic())
        if delay is None:
            entry.status = WorkerStatus.FAILED
            self.obs.counter("supervisor.crash_loops").inc()
            self._notify(self._on_worker_failed, entry.worker_id)
            return
        entry.status = WorkerStatus.BACKOFF
        entry.next_spawn_at = monotonic() + delay

    def _respawn(self, entry: _Supervised) -> None:
        # The dead incarnation's socket file would make the fresh bind
        # fail (and meanwhile routes frontend connects into ECONNREFUSED
        # against a corpse) — unlink it before the rebind.
        with contextlib.suppress(OSError):
            os.unlink(entry.socket_path)
        try:
            proc = self._spawn(entry.worker_id)
        except OSError:
            self.obs.counter("supervisor.respawn_failures").inc()
            self._note_failure(entry, "spawn")
            return
        entry.proc = proc
        if not self._await_ready(entry):
            self.obs.counter("supervisor.respawn_failures").inc()
            self._kill(entry)
            self._note_failure(entry, "boot")
            return
        entry.status = WorkerStatus.RUNNING
        entry.ping_misses = 0
        entry.restarts += 1
        self.obs.counter("supervisor.respawns").inc()
        self._verify_mapping(entry)
        self._notify(self._on_worker_ready, entry.worker_id)

    def _await_ready(self, entry: _Supervised) -> bool:
        deadline = monotonic() + self.config.ready_timeout_s
        while monotonic() < deadline and not self._stop.is_set():
            proc = entry.proc
            if proc is None or not proc.is_alive():
                # Died before ever answering: no point waiting out the
                # whole ready window against a corpse.
                if proc is not None:
                    entry.last_exitcode = proc.exitcode
                return False
            if self._ping(entry.socket_path, self.config.ping_timeout_s):
                return True
            sleep(0.05)
        return False

    def _verify_mapping(self, entry: _Supervised) -> None:
        """Re-assert the zero-copy claim on the respawned worker."""
        if not self.config.verify_mapping:
            return
        stats = self._probe_stats(entry.socket_path)
        if stats is None:
            return
        mapping = stats.get("segment_mapping")
        segment_bytes = stats.get("segment_bytes")
        if not isinstance(mapping, dict) or not isinstance(
            segment_bytes, (int, float)
        ):
            entry.mapping_ok = None  # smaps unavailable on this platform
            return
        private = mapping.get("private", 0)
        budget = self.config.mapping_private_fraction * float(segment_bytes)
        entry.mapping_ok = bool(private <= budget)
        if not entry.mapping_ok:
            self.obs.counter("supervisor.mapping_violations").inc()

    def _probe_stats(self, path: str) -> dict[str, Any] | None:
        try:
            with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as probe:
                probe.settimeout(self.config.ping_timeout_s)
                probe.connect(path)
                send_frame(probe, {"type": "stats"}, self._max_frame_bytes)
                return recv_frame(probe, self._max_frame_bytes)
        except (OSError, WireError):
            return None

    def _notify(
        self, callback: Callable[[int], None] | None, worker_id: int
    ) -> None:
        if callback is None:
            return
        try:
            callback(worker_id)
        except Exception:  # noqa: BLE001 — a frontend that cannot be
            # told is degraded, not fatal: its breaker recovers on its
            # own after reset_after_ms.
            pass

    # ---------------------------------------------------------- #
    # Planned restarts

    def restart_worker(self, worker_id: int, graceful: bool = True) -> int:
        """Restart one worker deliberately; returns the new pid.

        A planned restart does **not** count against the crash-loop
        budget: restarting every worker to pick up a new manifest
        generation must not retire the fleet.
        """
        with self._lock:
            entry = self._entry(worker_id)
            if entry.status is WorkerStatus.FAILED:
                raise RuntimeError(
                    f"worker {worker_id} is permanently failed"
                )
            proc = entry.proc
            if graceful and proc is not None and proc.is_alive():
                with contextlib.suppress(OSError, WireError):
                    with socket.socket(
                        socket.AF_UNIX, socket.SOCK_STREAM
                    ) as sock:
                        sock.settimeout(self.config.ping_timeout_s)
                        sock.connect(entry.socket_path)
                        send_frame(
                            sock, {"type": "shutdown"}, self._max_frame_bytes
                        )
                        recv_frame(sock, self._max_frame_bytes)
            if proc is not None:
                proc.join(timeout=self.config.ready_timeout_s)
                if proc.is_alive():
                    proc.terminate()
                    proc.join(timeout=5.0)
                if proc.is_alive():  # pragma: no cover — escalation
                    proc.kill()
                    proc.join(timeout=5.0)
            with contextlib.suppress(OSError):
                os.unlink(entry.socket_path)
            entry.proc = self._spawn(worker_id)
            if not self._await_ready(entry):
                self._kill(entry)
                self._note_failure(entry, "boot")
                raise RuntimeError(
                    f"worker {worker_id} did not come back after a "
                    "planned restart"
                )
            entry.status = WorkerStatus.RUNNING
            entry.ping_misses = 0
            entry.rolling_restarts += 1
            self.obs.counter("supervisor.rolling_restarts").inc()
            self._verify_mapping(entry)
            self._notify(self._on_worker_ready, worker_id)
            proc = entry.proc
            assert proc is not None and proc.pid is not None
            return proc.pid

    def rolling_restart(self) -> list[int]:
        """Restart every non-failed worker one at a time; new pids.

        At most one worker is down at any moment, so capacity never
        drops by more than one worker's share — the primitive a
        zero-gap manifest or binary rollout builds on.
        """
        pids = []
        for worker_id in [e.worker_id for e in self._entries]:
            with self._lock:
                if self._entry(worker_id).status is WorkerStatus.FAILED:
                    continue
            pids.append(self.restart_worker(worker_id, graceful=True))
        return pids

    # ---------------------------------------------------------- #
    # Introspection

    def _entry(self, worker_id: int) -> _Supervised:
        for entry in self._entries:
            if entry.worker_id == worker_id:
                return entry
        raise KeyError(f"no supervised worker {worker_id}")

    def running_workers(self) -> list[tuple[int, int]]:
        """``(worker_id, pid)`` for every RUNNING worker (chaos targets)."""
        with self._lock:
            return [
                (entry.worker_id, entry.proc.pid)
                for entry in self._entries
                if entry.status is WorkerStatus.RUNNING
                and entry.proc is not None
                and entry.proc.pid is not None
                and entry.proc.is_alive()
            ]

    def all_running(self) -> bool:
        """True when every supervised worker is RUNNING (none failed,
        none waiting out a backoff)."""
        with self._lock:
            return bool(self._entries) and all(
                entry.status is WorkerStatus.RUNNING
                and entry.proc is not None
                and entry.proc.is_alive()
                for entry in self._entries
            )

    def stats(self) -> dict[str, Any]:
        """Supervision counters + per-worker state, for reports."""
        with self._lock:
            counters = {
                metric.name: metric.value
                for metric in self.obs.collect()
                if metric.name.startswith("supervisor.")
            }
            workers = [
                {
                    "worker_id": entry.worker_id,
                    "status": entry.status.value,
                    "pid": entry.proc.pid if entry.proc is not None else None,
                    "restarts": entry.restarts,
                    "rolling_restarts": entry.rolling_restarts,
                    "last_exitcode": entry.last_exitcode,
                    "last_failure": entry.last_failure,
                    "mapping_ok": entry.mapping_ok,
                }
                for entry in self._entries
            ]
        return {"counters": counters, "workers": workers}
