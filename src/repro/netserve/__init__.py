"""``repro.netserve`` — the real network serving tier.

The in-process stack ends at :class:`~repro.serving.server.AdServer`;
this package puts a network in front of it, reusing every layer built
so far rather than inventing parallel ones:

* **workers** (:mod:`~repro.netserve.worker`) — forked per-core
  processes, each an ``AdServer`` over a
  :class:`~repro.segment.PackedSegmentIndex` mapping the **same**
  segment file, so N workers share one copy of the index bytes; serve
  frames flow through a micro-batching dispatcher (bounded queue →
  ``serve_batch`` → per-connection fan-out) so the PR 6 batch kernels
  engage under concurrent load;
* **frontend** (:mod:`~repro.netserve.frontend`) — one asyncio process
  doing admission (PR 5's priority token bucket), per-worker circuit
  breakers, and raw-frame relay, with opt-in singleflight coalescing
  and a generation-aware result cache (:mod:`~repro.netserve.coalesce`)
  for duplicate-heavy traffic;
* **wire** (:mod:`~repro.netserve.wire`) — 4-byte length-prefixed
  compact JSON; the payloads are exactly
  :meth:`~repro.serving.request.ServeRequest.to_dict` and
  :meth:`~repro.serving.server.ServeResult.to_dict`, so the redesigned
  request/result dataclasses *are* the wire schema;
* **cluster** (:mod:`~repro.netserve.cluster`) — boot/supervise/stop,
  as a context manager, with graceful drain on stop and a rolling
  restart primitive;
* **supervisor** (:mod:`~repro.netserve.supervisor`) — the self-healing
  loop: liveness + heartbeat hang detection, backoff respawns with a
  crash-loop budget, zero-copy re-verification on every respawn, and
  frontend breaker resets so a recovered worker takes traffic again
  immediately;
* **chaos** (:mod:`~repro.netserve.chaos`) — the kill-driven drill
  (SIGKILL / SIGSTOP / torn connections under closed-loop load) that
  gates the resilience claims in CI and persists ``BENCH_PR10.json``;
* **client** (:mod:`~repro.netserve.client`) — the blocking client
  whose ``serve(ServeRequest) -> ServeResult`` reads identically to
  the in-process call;
* **loadgen** (:mod:`~repro.netserve.loadgen`) — closed-loop driving
  (round-robin or duplicate-heavy Zipf traffic) plus the SLO report
  (QPS, p50/p95/p99, shed rate, coalescing/cache hit rates, per-worker
  QPS and memory) that :mod:`~repro.netserve.bench` persists to
  ``BENCH_PR7.json`` / ``BENCH_PR9.json`` and
  :mod:`~repro.netserve.smoke` gates in CI.
"""

from repro.netserve.chaos import ChaosConfig, run_chaos
from repro.netserve.client import (
    RemoteServeError,
    ServeClient,
    ServeConnectionError,
)
from repro.netserve.cluster import ClusterConfig, ServingCluster
from repro.netserve.coalesce import (
    GenerationalLRUCache,
    canonical_serve_key,
    restamp_result,
)
from repro.netserve.frontend import Frontend, FrontendConfig
from repro.netserve.loadgen import LoadGenConfig, run_loadgen
from repro.netserve.memory import (
    memory_report,
    private_resident_bytes,
    resident_bytes,
    segment_mapping_report,
)
from repro.netserve.wire import (
    DEFAULT_MAX_FRAME_BYTES,
    FrameFormatError,
    FrameTooLarge,
    TornFrame,
    WireError,
    decode_payload,
    encode_frame,
    recv_frame,
    send_frame,
)
from repro.netserve.supervisor import (
    RestartBudget,
    SupervisorConfig,
    WorkerStatus,
    WorkerSupervisor,
)
from repro.netserve.worker import WorkerConfig, run_worker

__all__ = [
    "DEFAULT_MAX_FRAME_BYTES",
    "ChaosConfig",
    "ClusterConfig",
    "FrameFormatError",
    "FrameTooLarge",
    "Frontend",
    "FrontendConfig",
    "GenerationalLRUCache",
    "LoadGenConfig",
    "RemoteServeError",
    "RestartBudget",
    "ServeClient",
    "ServeConnectionError",
    "ServingCluster",
    "SupervisorConfig",
    "TornFrame",
    "WireError",
    "WorkerConfig",
    "WorkerStatus",
    "WorkerSupervisor",
    "canonical_serve_key",
    "decode_payload",
    "encode_frame",
    "memory_report",
    "private_resident_bytes",
    "recv_frame",
    "resident_bytes",
    "restamp_result",
    "run_chaos",
    "run_loadgen",
    "run_worker",
    "segment_mapping_report",
    "send_frame",
]
