"""Kill-driven chaos drill for the supervised serving cluster.

The smoke gate proves the tier works when nothing goes wrong; this
module proves the *resilience* claims hold when things do.  It boots a
supervised cluster (frontend in its own process, workers over one
shared segment), drives it with the closed-loop generator, and — while
traffic is in flight — injects the failures PR 10 is about:

* **SIGKILL** random running workers (crash: the supervisor must see
  the death and respawn);
* **SIGSTOP** one worker (hang: alive but silent — the heartbeat must
  catch it, SIGKILL the frozen process, and respawn);
* **tear client connections** mid-frame (a half-written request then an
  abrupt close must not wedge the frontend).

Gates, evaluated after a post-recovery quiet phase:

1. **Zero hangs** — every request issued during chaos got a reply or a
   typed error inside the client budget (``timeouts == 0`` in both
   phases).  Errors during a kill are acceptable; silence never is.
2. **Recovery** — the supervisor reports every worker RUNNING within
   ``recovery_window_s`` of the last injection, and its ``respawns``
   counter covers every injected failure.
3. **No retirements** — nothing tripped the crash-loop budget; the
   frontend reports no permanently failed workers and its breakers
   came back (reset to half-open on respawn, closed by real traffic).
4. **SLO outside the kill window** — quiet-phase p99 within
   ``p99_slo_ms`` and zero quiet-phase errors.

The report (persisted with ``--out``, like the ``BENCH_*.json``
artifacts) records the injection schedule, both loadgen reports, the
supervision counters, and the frontend's failover/breaker counters —
the chaos run's SLO statement.  Run it as CI does::

    PYTHONPATH=src python -m repro.netserve.chaos --out BENCH_PR10.json
"""

from __future__ import annotations

import argparse
import contextlib
import json
import os
import random
import signal
import socket
import struct
import tempfile
import threading
from dataclasses import dataclass
from pathlib import Path
from time import monotonic, sleep
from typing import Any

from repro.core.wordset_index import WordSetIndex
from repro.datagen.corpus import CorpusConfig, generate_corpus
from repro.datagen.querygen import QueryConfig, generate_workload
from repro.netserve.client import ServeClient
from repro.netserve.cluster import ClusterConfig, ServingCluster
from repro.netserve.loadgen import LoadGenConfig, run_loadgen
from repro.netserve.supervisor import SupervisorConfig
from repro.netserve.wire import HEADER
from repro.perf.bench import make_long_queries
from repro.segment.builder import SegmentBuilder

__all__ = ["ChaosConfig", "run_chaos"]


@dataclass(frozen=True, slots=True)
class ChaosConfig:
    """One chaos drill.

    The defaults are sized for CI: a few seconds of traffic, two
    SIGKILLs and one SIGSTOP, a recovery window generous enough for a
    loaded runner but tight enough that a supervisor that *isn't*
    respawning fails the gate rather than timing out the job.
    """

    num_ads: int = 3_000
    num_workers: int = 3
    concurrency: int = 8
    chaos_duration_s: float = 6.0
    quiet_duration_s: float = 2.0
    deadline_ms: float = 500.0
    kills: int = 2
    sigstops: int = 1
    conn_teardowns: int = 3
    recovery_window_s: float = 15.0
    p99_slo_ms: float = 250.0
    client_timeout_s: float = 5.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_workers < 2:
            raise ValueError(
                "chaos needs >= 2 workers (failover requires a survivor)"
            )
        if self.kills < 0 or self.sigstops < 0 or self.conn_teardowns < 0:
            raise ValueError("injection counts must be >= 0")
        if self.chaos_duration_s <= 0 or self.quiet_duration_s <= 0:
            raise ValueError("phase durations must be positive")
        if self.recovery_window_s <= 0:
            raise ValueError("recovery_window_s must be positive")


def _injection_schedule(config: ChaosConfig) -> list[tuple[float, str]]:
    """``(at_fraction, kind)`` events, spread across the chaos window.

    The schedule is deterministic (only *victim selection* uses the
    seeded RNG): injections sit between 15% and 70% of the window so
    the last respawn has in-window traffic to prove itself against.
    """
    events = [("kill",)] * config.kills + [("sigstop",)] * config.sigstops
    events += [("teardown",)] * config.conn_teardowns
    if not events:
        return []
    span = 0.70 - 0.15
    step = span / len(events)
    return [
        (0.15 + i * step, kind)
        for i, (kind,) in enumerate(events)
    ]


def _tear_connection(host: str, port: int) -> None:
    """Write half a frame, then vanish — the rudest client possible."""
    with contextlib.suppress(OSError):
        with socket.create_connection((host, port), timeout=2.0) as sock:
            # A header promising 64 bytes, then only 8 of them.
            sock.sendall(HEADER.pack(64) + b'{"type":"')
            # linger on, timeout 0 → close sends RST instead of FIN.
            sock.setsockopt(
                socket.SOL_SOCKET, socket.SO_LINGER, struct.pack("ii", 1, 0)
            )


def run_chaos(config: ChaosConfig | None = None) -> tuple[dict, list[str]]:
    """One chaos drill; returns ``(report, failures)``."""
    config = config if config is not None else ChaosConfig()
    rng = random.Random(config.seed)
    generated = generate_corpus(
        CorpusConfig(num_ads=config.num_ads, seed=config.seed)
    )
    workload = generate_workload(
        generated,
        QueryConfig(
            num_distinct=200, total_frequency=2_000, seed=config.seed + 1
        ),
    )
    queries = make_long_queries(
        generated, workload, 32, 10, seed=config.seed + 2
    )
    index = WordSetIndex.from_corpus(generated.corpus)
    events: list[dict[str, Any]] = []
    failures: list[str] = []
    with tempfile.TemporaryDirectory(prefix="netserve-chaos-") as tmp:
        segment_path = Path(tmp) / "chaos.seg"
        SegmentBuilder(index).write(segment_path)
        cluster_config = ClusterConfig(
            segment_path=str(segment_path),
            num_workers=config.num_workers,
            frontend_process=True,
            default_deadline_ms=config.deadline_ms,
            # Fail fast past a frozen worker: the frontend's per-attempt
            # budget must be well under the client's, so even a request
            # that burns one attempt on a SIGSTOP'd worker and fails
            # over still answers inside client_timeout_s.
            worker_timeout_s=1.0,
            supervise=True,
            supervisor=SupervisorConfig(
                poll_interval_s=0.1,
                ping_timeout_s=0.5,
                hang_misses=2,
                backoff_initial_s=0.05,
                backoff_max_s=0.5,
            ),
        )
        with ServingCluster(cluster_config) as cluster:
            host, port = cluster.address
            supervisor = cluster.supervisor
            assert supervisor is not None  # supervise=True above

            loadgen_config = LoadGenConfig(
                host=host,
                port=port,
                duration_s=config.chaos_duration_s,
                concurrency=config.concurrency,
                deadline_ms=config.deadline_ms,
                timeout_s=config.client_timeout_s,
            )
            chaos_report: dict[str, Any] = {}

            def _drive() -> None:
                try:
                    chaos_report.update(run_loadgen(loadgen_config, queries))
                except Exception as exc:  # noqa: BLE001 — gate below
                    chaos_report["driver_error"] = repr(exc)

            stopped_pids: list[int] = []
            driver = threading.Thread(target=_drive, name="chaos-loadgen")
            phase_started = monotonic()
            driver.start()
            for fraction, kind in _injection_schedule(config):
                at = phase_started + fraction * config.chaos_duration_s
                delay = at - monotonic()
                if delay > 0:
                    sleep(delay)
                now = monotonic() - phase_started
                if kind == "teardown":
                    _tear_connection(host, port)
                    events.append({"t_s": now, "kind": "teardown"})
                    continue
                victims = supervisor.running_workers()
                if not victims:
                    events.append(
                        {"t_s": now, "kind": kind, "skipped": "no victims"}
                    )
                    failures.append(
                        f"{kind} injection found no running worker to target"
                    )
                    continue
                worker_id, pid = rng.choice(victims)
                sig = (
                    signal.SIGKILL if kind == "kill" else signal.SIGSTOP
                )
                with contextlib.suppress(ProcessLookupError):
                    os.kill(pid, sig)
                if kind == "sigstop":
                    stopped_pids.append(pid)
                events.append(
                    {"t_s": now, "kind": kind, "worker_id": worker_id,
                     "pid": pid}
                )
            driver.join(timeout=config.chaos_duration_s + 30.0)
            if driver.is_alive():  # pragma: no cover — harness bug
                failures.append("chaos loadgen never finished")

            # The supervisor SIGKILLs frozen workers itself; SIGCONT is
            # belt-and-braces for a pid it already replaced.
            for pid in stopped_pids:
                with contextlib.suppress(ProcessLookupError, OSError):
                    os.kill(pid, signal.SIGCONT)

            # ---- recovery gate -------------------------------------
            # "Recovered" needs both halves: every worker RUNNING *and*
            # the respawn counters covering every injected failure —
            # all_running() alone is vacuously true in the race window
            # before the supervisor's next tick notices a fresh corpse.
            injected_failures = config.kills + config.sigstops
            recovery_started = monotonic()
            recovered_in_s: float | None = None
            while monotonic() - recovery_started < config.recovery_window_s:
                counters_now = supervisor.stats()["counters"]
                handled = counters_now.get(
                    "supervisor.respawns", 0
                ) + counters_now.get("supervisor.crash_loops", 0)
                if handled >= injected_failures and supervisor.all_running():
                    recovered_in_s = monotonic() - recovery_started
                    break
                sleep(0.1)
            if recovered_in_s is None:
                failures.append(
                    "cluster did not recover to full worker count within "
                    f"{config.recovery_window_s}s"
                )

            # ---- quiet phase ---------------------------------------
            quiet_report = run_loadgen(
                LoadGenConfig(
                    host=host,
                    port=port,
                    duration_s=config.quiet_duration_s,
                    concurrency=config.concurrency,
                    deadline_ms=config.deadline_ms,
                    timeout_s=config.client_timeout_s,
                ),
                queries,
            )
            supervision = supervisor.stats()
            with ServeClient(
                host, port, config.client_timeout_s
            ) as probe:
                frontend_stats = probe.stats().get("frontend")

    # ---- gates (evaluated off live state, after teardown) ----------
    injected = config.kills + config.sigstops
    if "sent" not in chaos_report:
        # An empty report must not pass the timeout gate vacuously.
        failures.append(
            "chaos loadgen produced no report"
            + (
                f" ({chaos_report['driver_error']})"
                if "driver_error" in chaos_report
                else ""
            )
        )
    for phase, report in (("chaos", chaos_report), ("quiet", quiet_report)):
        timeouts = report.get("timeouts", 0)
        if timeouts:
            failures.append(
                f"{phase} phase: {timeouts} client timeouts — a request "
                "was left hanging instead of answered or errored"
            )
    counters = supervision["counters"]
    if counters.get("supervisor.respawns", 0) < injected:
        failures.append(
            f"supervisor respawned {counters.get('supervisor.respawns', 0)} "
            f"workers but {injected} failures were injected"
        )
    if config.sigstops and not counters.get("supervisor.hangs_detected", 0):
        failures.append(
            "a worker was SIGSTOP'd but no hang was ever detected"
        )
    if counters.get("supervisor.crash_loops", 0):
        failures.append(
            f"{counters['supervisor.crash_loops']} workers were retired "
            "as crash loops during a survivable drill"
        )
    for worker in supervision["workers"]:
        if worker["status"] != "running":
            failures.append(
                f"worker {worker['worker_id']} ended the drill "
                f"{worker['status']} (last failure: {worker['last_failure']})"
            )
        if worker["mapping_ok"] is False:
            failures.append(
                f"worker {worker['worker_id']} lost zero-copy after respawn"
            )
    frontend_counters = (frontend_stats or {}).get("counters", {})
    failed_workers = (frontend_stats or {}).get("failed_workers", [])
    if failed_workers:
        failures.append(
            f"frontend still routes around workers {failed_workers} "
            "after recovery"
        )
    if config.kills and not frontend_counters.get(
        "frontend.breaker_resets", 0
    ):
        failures.append(
            "workers respawned but no breaker was ever reset to half-open"
        )
    if quiet_report.get("errors", 0):
        failures.append(
            f"quiet phase saw {quiet_report['errors']} errors after "
            "recovery was declared"
        )
    quiet_p99 = quiet_report.get("latency_ms", {}).get("p99")
    if quiet_p99 is not None and quiet_p99 > config.p99_slo_ms:
        failures.append(
            f"quiet-phase p99 {quiet_p99:.1f}ms exceeds the "
            f"{config.p99_slo_ms}ms SLO"
        )
    if quiet_report.get("degenerate"):
        failures.append(
            "quiet-phase run is degenerate: "
            + ", ".join(quiet_report.get("degenerate_reasons", []))
        )

    report = {
        "config": {
            "num_ads": config.num_ads,
            "num_workers": config.num_workers,
            "concurrency": config.concurrency,
            "chaos_duration_s": config.chaos_duration_s,
            "quiet_duration_s": config.quiet_duration_s,
            "kills": config.kills,
            "sigstops": config.sigstops,
            "conn_teardowns": config.conn_teardowns,
            "recovery_window_s": config.recovery_window_s,
            "p99_slo_ms": config.p99_slo_ms,
            "seed": config.seed,
        },
        "events": events,
        "recovered_in_s": recovered_in_s,
        "chaos": chaos_report,
        "quiet": quiet_report,
        "supervision": supervision,
        "frontend": frontend_stats,
        "failures": failures,
        "passed": not failures,
    }
    return report, failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--num-ads", type=int, default=3_000)
    parser.add_argument("--workers", type=int, default=3)
    parser.add_argument("--concurrency", type=int, default=8)
    parser.add_argument("--chaos-duration-s", type=float, default=6.0)
    parser.add_argument("--quiet-duration-s", type=float, default=2.0)
    parser.add_argument("--kills", type=int, default=2)
    parser.add_argument("--sigstops", type=int, default=1)
    parser.add_argument("--conn-teardowns", type=int, default=3)
    parser.add_argument("--recovery-window-s", type=float, default=15.0)
    parser.add_argument("--p99-slo-ms", type=float, default=250.0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--out", type=str, default=None,
        help="persist the drill report as JSON (like BENCH_*.json)",
    )
    args = parser.parse_args(argv)
    report, failures = run_chaos(
        ChaosConfig(
            num_ads=args.num_ads,
            num_workers=args.workers,
            concurrency=args.concurrency,
            chaos_duration_s=args.chaos_duration_s,
            quiet_duration_s=args.quiet_duration_s,
            kills=args.kills,
            sigstops=args.sigstops,
            conn_teardowns=args.conn_teardowns,
            recovery_window_s=args.recovery_window_s,
            p99_slo_ms=args.p99_slo_ms,
            seed=args.seed,
        )
    )
    text = json.dumps(report, indent=2, sort_keys=True)
    if args.out:
        Path(args.out).write_text(text + "\n")
    print(text)
    if failures:
        print("chaos drill FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("chaos drill passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
