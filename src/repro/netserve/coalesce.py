"""Singleflight + result-cache primitives for the batched frontend.

Sponsored-search traffic is heavily skewed (the Zipf workloads of the
paper's Figs 1/2/7), so at any instant the frontend is usually carrying
many in-flight copies of the *same* query.  Two pure building blocks
exploit that:

* :func:`canonical_serve_key` — the identity under which two ``serve``
  frames are interchangeable: the query's folded **word set** (broad
  match is word-set based, so token order and duplicates don't change
  the answer) plus every field that *can* change the answer (user id
  for frequency caps, priority for admission, deadline budget).  The
  ``request_id`` is deliberately excluded — it addresses the reply, it
  never changes it.
* :func:`restamp_result` — given one shared worker response, the
  per-client reply: ``request_id`` re-addressed and the result's query
  echo restored to the client's own token order.  Everything else
  (awards, prices, candidate counts, degradation flags) is shared
  verbatim, which is exactly why sharing is legal.
* :class:`GenerationalLRUCache` — a bounded LRU of decoded result
  frames keyed by canonical key, invalidated **wholesale** whenever the
  serving generation moves (workers stamp their segment/manifest
  generation into every result frame; a tiered manifest commit bumps
  it, so a cache can never serve across a data swap).

Everything here is pure logic — no sockets, no asyncio — so the
coalescing/caching semantics are property-testable in isolation; the
asyncio singleflight plumbing lives in
:class:`~repro.netserve.frontend.Frontend`.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Hashable

__all__ = [
    "GenerationalLRUCache",
    "canonical_serve_key",
    "restamp_result",
]


def canonical_serve_key(request: dict[str, Any]) -> tuple[Any, ...] | None:
    """The coalescing/cache identity of one decoded ``serve`` request.

    Returns ``None`` when the request is not safely shareable — a
    malformed query, a non-scalar user id, a non-numeric deadline — in
    which case the frontend bypasses coalescing and the cache entirely
    and relays the frame as-is (the worker will answer it with a typed
    schema error of its own).
    """
    tokens = request.get("query")
    if not isinstance(tokens, list):
        return None
    if not all(isinstance(token, str) for token in tokens):
        return None
    user_id = request.get("user_id")
    if user_id is not None and not isinstance(user_id, (str, int)):
        return None
    priority = request.get("priority", "normal")
    if not isinstance(priority, str):
        return None
    deadline_ms = request.get("deadline_ms")
    if deadline_ms is not None and not isinstance(deadline_ms, (int, float)):
        return None
    words = tuple(sorted(set(tokens)))
    return (
        words,
        user_id,
        priority,
        float(deadline_ms) if deadline_ms is not None else None,
    )


def restamp_result(
    payload: dict[str, Any], request: dict[str, Any]
) -> dict[str, Any]:
    """One client's reply, derived from a shared worker response.

    Exactly two fields are per-client: the frame-level ``request_id``
    (re-addressed to this client's id, or removed when it sent none)
    and the result's ``query`` echo (restored to this client's own
    token order — retrieval folds to the word set, so the coalesced
    answer is identical apart from the echo).  The shared payload is
    never mutated; sub-dicts are copied only when they actually differ.
    """
    out = dict(payload)
    request_id = request.get("request_id")
    if isinstance(request_id, str):
        out["request_id"] = request_id
    else:
        out.pop("request_id", None)
    result = payload.get("result")
    tokens = request.get("query")
    if isinstance(result, dict) and isinstance(tokens, list):
        if result.get("query") != tokens:
            result = dict(result)
            result["query"] = list(tokens)
        out["result"] = result
    return out


class GenerationalLRUCache:
    """Bounded LRU of shared result payloads, generation-invalidated.

    The ``generation`` is whatever the workers stamp into their result
    frames: 0 forever for a frozen packed segment, the manifest
    generation for a tiered index.  The discipline is monotonic:

    * :meth:`observe_generation` advances the cache's generation and
      flushes every entry when it moves forward (a manifest commit
      swapped the data under the tier — nothing cached before it may be
      served after it);
    * :meth:`put` refuses payloads from any *other* generation, so a
      straggler worker still serving the previous manifest can never
      repopulate the cache with stale answers;
    * :meth:`get` therefore only ever returns current-generation
      entries.

    Not thread-safe by design: the frontend drives it from one event
    loop.
    """

    __slots__ = (
        "max_entries",
        "generation",
        "hits",
        "misses",
        "invalidations",
        "_entries",
    )

    def __init__(self, max_entries: int) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self.generation = 0
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self._entries: OrderedDict[Hashable, dict[str, Any]] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def observe_generation(self, generation: int) -> bool:
        """Advance to a newer serving generation.

        Returns True when the bump actually flushed entries (the signal
        the frontend counts as ``frontend.cache_invalidations``).  An
        older or equal generation is a no-op — generations only move
        forward, so a straggler worker cannot roll the cache back.
        """
        if generation <= self.generation:
            return False
        self.generation = generation
        if not self._entries:
            return False
        self._entries.clear()
        self.invalidations += 1
        return True

    def get(self, key: Hashable) -> dict[str, Any] | None:
        """The cached shared payload for ``key``, freshest-generation
        only (older generations were flushed on observation)."""
        payload = self._entries.get(key)
        if payload is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return payload

    def put(
        self, key: Hashable, generation: int, payload: dict[str, Any]
    ) -> bool:
        """Store one shared payload; refused (False) when ``generation``
        is not the cache's current one."""
        if generation != self.generation:
            return False
        self._entries[key] = payload
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
        return True

    def stats(self) -> dict[str, int]:
        """Counters for stats payloads and tests."""
        return {
            "entries": len(self._entries),
            "max_entries": self.max_entries,
            "generation": self.generation,
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
        }
