"""The asyncio frontend: admission, routing, and clean shedding.

The frontend owns the TCP listener clients speak to.  Per request it
does exactly three things — **admit** (PR 5's priority token bucket,
so overload sheds lowest-priority first, at the door, before any
worker sees the request), **route** (pick a healthy worker connection;
a per-worker :class:`~repro.resilience.breaker.CircuitBreaker` tracks
transport health so a wedged worker stops receiving traffic), and
**relay** (forward the client's already-encoded ``serve`` frame bytes
verbatim and stream the worker's ``result`` frame bytes back — the
frontend decodes the request JSON once for admission and never
re-encodes either side).

Failure policy is *shed clean, never hang*:

* a shed request is answered immediately with an empty ``result``
  frame flagged with the shed reason — same schema as a full answer;
* a torn/oversized/garbage client frame ends that client connection
  (oversized gets a typed ``error`` frame first; a torn frame has no
  trustworthy framing left to answer into);
* a worker transport fault feeds the breaker, the frame is retried on
  the next worker, and only when every worker is unavailable does the
  client get a ``retrieval_error``-degraded empty result.

Two opt-in layers exploit duplicate-heavy (Zipf) traffic, both OFF by
default so the relay path above stays byte-for-byte what PR 7 shipped:

* **singleflight coalescing** (``coalesce=True``): identical in-flight
  serve frames — same :func:`~repro.netserve.coalesce.canonical_serve_key`
  — share one worker round trip; every client still receives its own
  ``request_id``-stamped reply (``frontend.coalesced`` counts the
  followers);
* **result cache** (``cache_entries>0``): a bounded
  :class:`~repro.netserve.coalesce.GenerationalLRUCache` of decoded
  result payloads, invalidated wholesale when the worker-stamped
  segment/manifest ``generation`` in a result frame moves — a tiered
  manifest commit can never be served stale (``frontend.cache_hits`` /
  ``frontend.cache_invalidations``).

Requests whose canonical key is ``None`` (malformed in any way) bypass
both layers and relay raw, so the worker's own schema errors stay
authoritative.

**Supervision integration** (PR 10): a worker transport fault no longer
just feeds the breaker — the request is retried exactly **once**, on a
*different* worker (counted in ``frontend.worker_failovers``).  The
retry is always safe because the frontend buffers a worker's complete
``result`` frame before relaying any of it: a reply torn by worker
death mid-read has sent the client **zero** bytes, so the failover can
never duplicate output.  (With a single worker the one retry goes back
to that worker's other channel, which covers reconnect-after-restart.)
The :class:`~repro.netserve.supervisor.WorkerSupervisor` feeds recovery
state back through :meth:`Frontend.mark_worker_ready` /
:meth:`Frontend.mark_worker_failed` (directly in thread mode, via
``admin`` frames when the frontend runs as its own process): a respawn
resets that worker's breaker to half-open so the first live request
closes it, and a crash-looped worker is removed from routing entirely
so its traffic share rebalances onto the survivors.  Per-worker breaker
state is exported as the ``frontend.breaker_state.w<id>`` gauge
(0 closed / 1 half-open / 2 open / 3 permanently failed) so a chaos
drill can assert breakers actually reopen after respawns.
"""

from __future__ import annotations

import asyncio
import contextlib
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any

from repro.netserve.coalesce import (
    GenerationalLRUCache,
    canonical_serve_key,
    restamp_result,
)
from repro.netserve.wire import (
    DEFAULT_MAX_FRAME_BYTES,
    HEADER,
    FrameTooLarge,
    TornFrame,
    WireError,
    decode_payload,
    encode_frame,
    read_raw_frame,
)
from repro.obs.registry import MetricsRegistry, active_or_none
from repro.resilience.admission import (
    AdmissionConfig,
    AdmissionController,
    Priority,
)
from repro.resilience.breaker import (
    BreakerConfig,
    BreakerState,
    CircuitBreaker,
)
from repro.resilience.deadline import DegradedReason

__all__ = ["Frontend", "FrontendConfig"]

#: Numeric encoding of breaker state for the per-worker gauge.
_BREAKER_GAUGE = {
    BreakerState.CLOSED: 0.0,
    BreakerState.HALF_OPEN: 1.0,
    BreakerState.OPEN: 2.0,
}

#: Gauge value for a worker removed from routing (crash-looped).
_GAUGE_FAILED = 3.0


@dataclass(frozen=True, slots=True)
class FrontendConfig:
    """Tuning for one :class:`Frontend`.

    Parameters
    ----------
    host / port:
        TCP bind address; port 0 picks an ephemeral port (read it back
        from :attr:`Frontend.port` after :meth:`Frontend.start`).
    conns_per_worker:
        Pooled connections per worker — the worker-side concurrency.
    worker_timeout_s:
        Budget for one worker round trip; a slower worker counts as a
        breaker failure and the request moves on.
    client_idle_timeout_s:
        Optional budget for reading one client frame; a client that
        stalls mid-frame is disconnected instead of pinning the
        connection forever (``None`` waits indefinitely).
    max_frame_bytes:
        Per-frame wire budget, both directions.
    reserve_micros:
        Reserve price echoed in frontend-built (shed/error) results so
        they decode with the same schema as worker results.
    admission:
        Token-bucket / queue-depth config; ``None`` admits everything.
    breaker:
        Per-worker breaker tuning (defaults are fine for tests).
    coalesce:
        Singleflight identical in-flight serve frames (default off —
        off is bit-identical to the plain relay path).
    cache_entries:
        Result-cache capacity; 0 (default) disables the cache.
    """

    host: str = "127.0.0.1"
    port: int = 0
    conns_per_worker: int = 1
    worker_timeout_s: float = 10.0
    client_idle_timeout_s: float | None = None
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES
    reserve_micros: int = 1
    admission: AdmissionConfig | None = None
    breaker: BreakerConfig = field(default_factory=BreakerConfig)
    coalesce: bool = False
    cache_entries: int = 0


class _Channel:
    """One pooled frontend→worker connection (lazily (re)connected)."""

    __slots__ = ("worker_id", "path", "reader", "writer")

    def __init__(self, worker_id: int, path: str) -> None:
        self.worker_id = worker_id
        self.path = path
        self.reader: asyncio.StreamReader | None = None
        self.writer: asyncio.StreamWriter | None = None

    async def ensure_connected(self) -> None:
        if self.writer is not None and not self.writer.is_closing():
            return
        self.reader, self.writer = await asyncio.open_unix_connection(
            self.path
        )

    def mark_dead(self) -> None:
        if self.writer is not None:
            self.writer.close()
        self.reader = None
        self.writer = None


class Frontend:
    """Admission + routing over a pool of worker connections."""

    def __init__(
        self,
        worker_sockets: list[str],
        config: FrontendConfig | None = None,
        obs: MetricsRegistry | None = None,
    ) -> None:
        if not worker_sockets:
            raise ValueError("need at least one worker socket")
        self.config = config if config is not None else FrontendConfig()
        self.obs = obs if obs is not None else MetricsRegistry()
        self.worker_sockets = list(worker_sockets)
        self.admission = (
            AdmissionController(self.config.admission, obs=active_or_none(self.obs))
            if self.config.admission is not None
            else None
        )
        self.breakers = {
            worker_id: CircuitBreaker(
                self.config.breaker,
                obs=active_or_none(self.obs),
                name=f"worker-{worker_id}",
            )
            for worker_id in range(len(worker_sockets))
        }
        self._pool: asyncio.Queue[_Channel] = asyncio.Queue()
        self._num_channels = 0
        self._control: dict[int, tuple[_Channel, asyncio.Lock]] = {}
        self._clients: set[asyncio.StreamWriter] = set()
        self._server: asyncio.base_events.Server | None = None
        self.port: int | None = None
        self.cache = (
            GenerationalLRUCache(self.config.cache_entries)
            if self.config.cache_entries > 0
            else None
        )
        self._inflight: dict[Any, asyncio.Task[dict[str, Any] | None]] = {}
        self._failed_workers: set[int] = set()
        for name, help_text in (
            ("frontend.requests", "Serve frames accepted from clients"),
            ("frontend.shed", "Requests shed at the frontend door"),
            ("frontend.wire_errors", "Client frames that violated framing"),
            ("frontend.worker_errors", "Worker transport faults observed"),
            ("frontend.worker_failovers", "Requests retried on another worker"),
            ("frontend.unrouted", "Requests no worker could answer"),
            ("frontend.client_timeouts", "Clients disconnected for stalling"),
            ("frontend.breaker_resets", "Breakers reset half-open on respawn"),
            ("frontend.workers_failed", "Workers removed from routing"),
            ("frontend.coalesced", "Serve frames that joined an in-flight twin"),
            ("frontend.cache_hits", "Serve frames answered from the result cache"),
            ("frontend.cache_misses", "Cache lookups that went to a worker"),
            ("frontend.cache_invalidations", "Cache flushes on generation bumps"),
        ):
            self.obs.counter(name, help=help_text)
        for worker_id in range(len(worker_sockets)):
            self._observe_breaker(worker_id)

    # ---------------------------------------------------------- #
    # Lifecycle

    async def start(self) -> None:
        """Connect the worker pool and start accepting clients."""
        for worker_id, path in enumerate(self.worker_sockets):
            control = _Channel(worker_id, path)
            await control.ensure_connected()
            self._control[worker_id] = (control, asyncio.Lock())
            for _ in range(self.config.conns_per_worker):
                channel = _Channel(worker_id, path)
                await channel.ensure_connected()
                self._pool.put_nowait(channel)
                self._num_channels += 1
        self._server = await asyncio.start_server(
            self._handle_client, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        """Stop accepting, close every pooled and control connection."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for writer in list(self._clients):
            with contextlib.suppress(OSError):
                writer.close()
        self._clients.clear()
        while not self._pool.empty():
            self._pool.get_nowait().mark_dead()
        for control, _ in self._control.values():
            control.mark_dead()
        self._control.clear()

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    # ---------------------------------------------------------- #
    # Client side

    async def _read_client_frame(
        self, reader: asyncio.StreamReader
    ) -> bytes | None:
        if self.config.client_idle_timeout_s is None:
            return await read_raw_frame(reader, self.config.max_frame_bytes)
        return await asyncio.wait_for(
            read_raw_frame(reader, self.config.max_frame_bytes),
            timeout=self.config.client_idle_timeout_s,
        )

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._clients.add(writer)
        try:
            while True:
                try:
                    frame = await self._read_client_frame(reader)
                except FrameTooLarge as exc:
                    self.obs.counter("frontend.wire_errors").inc()
                    await self._reply(
                        writer,
                        {"type": "error", "error": str(exc), "retryable": False},
                    )
                    return
                except (TornFrame, WireError):
                    self.obs.counter("frontend.wire_errors").inc()
                    return
                except (asyncio.TimeoutError, TimeoutError):
                    self.obs.counter("frontend.client_timeouts").inc()
                    return
                except (OSError, ConnectionResetError):
                    return
                if frame is None:
                    return
                try:
                    payload = decode_payload(frame[HEADER.size:])
                except WireError as exc:
                    self.obs.counter("frontend.wire_errors").inc()
                    await self._reply(
                        writer,
                        {"type": "error", "error": str(exc), "retryable": False},
                    )
                    return
                if not await self._route(frame, payload, writer):
                    return
        finally:
            self._clients.discard(writer)
            with contextlib.suppress(OSError):
                writer.close()
                await writer.wait_closed()

    async def _route(
        self,
        frame: bytes,
        payload: dict[str, Any],
        writer: asyncio.StreamWriter,
    ) -> bool:
        """One decoded client frame; False ends the connection."""
        msg_type = payload.get("type")
        if msg_type == "ping":
            await self._reply(writer, {"type": "pong"})
            return True
        if msg_type == "stats":
            await self._reply(writer, await self.stats_payload())
            return True
        if msg_type == "serve":
            await self._serve(frame, payload, writer)
            return True
        if msg_type == "admin":
            await self._reply(writer, self._admin(payload))
            return True
        self.obs.counter("frontend.wire_errors").inc()
        await self._reply(
            writer,
            {
                "type": "error",
                "error": f"unknown frame type {msg_type!r}",
                "retryable": False,
            },
        )
        return False

    async def _serve(
        self,
        frame: bytes,
        payload: dict[str, Any],
        writer: asyncio.StreamWriter,
    ) -> None:
        self.obs.counter("frontend.requests").inc()
        request = payload.get("request")
        if not isinstance(request, dict):
            self.obs.counter("frontend.wire_errors").inc()
            await self._reply(
                writer,
                {
                    "type": "error",
                    "error": "serve frame carries no request object",
                    "retryable": False,
                },
            )
            return
        started = perf_counter()
        try:
            priority = Priority.from_name(request.get("priority", "normal"))
        except (ValueError, AttributeError):
            priority = Priority.NORMAL
        if self.admission is not None:
            decision = self.admission.try_admit(priority)
            if not decision.admitted:
                self.obs.counter("frontend.shed").inc()
                await self._reply(
                    writer,
                    self._local_result(request, decision.reason, payload),
                )
                return
        try:
            key = (
                canonical_serve_key(request)
                if (self.config.coalesce or self.cache is not None)
                else None
            )
            if key is not None:
                shared = await self._serve_shared(key, frame)
                if shared is None:
                    self.obs.counter("frontend.unrouted").inc()
                    await self._reply(
                        writer,
                        self._local_result(
                            request, DegradedReason.RETRIEVAL_ERROR, payload
                        ),
                    )
                else:
                    await self._reply(writer, restamp_result(shared, request))
            else:
                response = await self._dispatch(frame)
                if response is None:
                    self.obs.counter("frontend.unrouted").inc()
                    await self._reply(
                        writer,
                        self._local_result(
                            request, DegradedReason.RETRIEVAL_ERROR, payload
                        ),
                    )
                else:
                    writer.write(response)
                    with contextlib.suppress(OSError, ConnectionResetError):
                        await writer.drain()
        finally:
            if self.admission is not None:
                self.admission.release()
        self.obs.histogram("span.frontend").observe(
            (perf_counter() - started) * 1e3
        )

    def _local_result(
        self,
        request: dict[str, Any],
        reason: DegradedReason,
        payload: dict[str, Any],
    ) -> dict[str, Any]:
        """A frontend-built empty result: same schema as a worker's."""
        tokens = request.get("query")
        if not isinstance(tokens, list):
            tokens = []
        result: dict[str, Any] = {
            "type": "result",
            "result": {
                "query": [t for t in tokens if isinstance(t, str)],
                "degraded_reason": reason.value,
                "outcome": {
                    "reserve_micros": self.config.reserve_micros,
                    "candidates": 0,
                    "awards": [],
                },
            },
        }
        request_id = request.get("request_id")
        if isinstance(request_id, str):
            result["request_id"] = request_id
        return result

    async def _reply(
        self, writer: asyncio.StreamWriter, payload: dict[str, Any]
    ) -> None:
        with contextlib.suppress(OSError, ConnectionResetError):
            writer.write(encode_frame(payload, self.config.max_frame_bytes))
            await writer.drain()

    # ---------------------------------------------------------- #
    # Supervision hooks (called directly in thread mode, via ``admin``
    # frames when the frontend runs as its own process)

    def _observe_breaker(self, worker_id: int) -> None:
        """Export one worker's routing health as a gauge."""
        value = (
            _GAUGE_FAILED
            if worker_id in self._failed_workers
            else _BREAKER_GAUGE[self.breakers[worker_id].state]
        )
        self.obs.gauge(
            f"frontend.breaker_state.w{worker_id}",
            help="0 closed / 1 half-open / 2 open / 3 failed",
        ).set(value)

    def mark_worker_ready(self, worker_id: int) -> None:
        """A supervised worker respawned: put it back in routing with
        its breaker half-open, so the first live request closes it
        instead of waiting out the breaker's own cooling-off."""
        if worker_id not in self.breakers:
            raise KeyError(f"unknown worker {worker_id}")
        self._failed_workers.discard(worker_id)
        self.breakers[worker_id].reset_half_open()
        self.obs.counter("frontend.breaker_resets").inc()
        self._observe_breaker(worker_id)

    def mark_worker_failed(self, worker_id: int) -> None:
        """A worker crash-looped out of its restart budget: stop
        routing to it at all; its share rebalances onto the survivors."""
        if worker_id not in self.breakers:
            raise KeyError(f"unknown worker {worker_id}")
        if worker_id not in self._failed_workers:
            self._failed_workers.add(worker_id)
            self.obs.counter("frontend.workers_failed").inc()
        self._observe_breaker(worker_id)

    def _admin(self, payload: dict[str, Any]) -> dict[str, Any]:
        """The supervisor's control surface when the frontend runs as
        its own process.  Worker ids are validated; unknown ops get a
        typed error (the frames are trusted-network control plane, like
        the worker ``shutdown`` frame)."""
        op = payload.get("op")
        worker_id = payload.get("worker_id")
        if not isinstance(worker_id, int) or worker_id not in self.breakers:
            return {
                "type": "error",
                "error": f"unknown worker {worker_id!r}",
                "retryable": False,
            }
        if op == "worker_ready":
            self.mark_worker_ready(worker_id)
            return {"type": "ok"}
        if op == "worker_failed":
            self.mark_worker_failed(worker_id)
            return {"type": "ok"}
        return {
            "type": "error",
            "error": f"unknown admin op {op!r}",
            "retryable": False,
        }

    # ---------------------------------------------------------- #
    # Worker side

    async def _dispatch(self, frame: bytes) -> bytes | None:
        """Relay ``frame`` to a healthy worker; the raw response frame,
        or ``None`` when every attempt failed or short-circuited.

        A failed attempt (worker died mid-reply, transport fault,
        timeout) is retried exactly once, on a worker we have not yet
        tried — counted in ``frontend.worker_failovers``.  The retry
        can never duplicate client output: the complete response frame
        is buffered here before a single byte is relayed back, so a
        torn reply means the client has received nothing.  With only
        one worker the retry may revisit it (covers the
        reconnect-after-restart case); beyond two failed attempts the
        caller sheds with a typed degraded result rather than storming
        every worker.
        """
        attempts = 0
        failover_counted = False
        tried_workers: set[int] = set()
        single_worker = len(self.worker_sockets) == 1
        for _ in range(max(self._num_channels, 1)):
            channel = await self._pool.get()
            worker_id = channel.worker_id
            if worker_id in self._failed_workers:
                self._pool.put_nowait(channel)
                continue
            if worker_id in tried_workers and not single_worker:
                self._pool.put_nowait(channel)
                continue
            breaker = self.breakers[worker_id]
            if not breaker.allow():
                self._observe_breaker(worker_id)
                self._pool.put_nowait(channel)
                continue
            if attempts == 1 and not failover_counted:
                self.obs.counter("frontend.worker_failovers").inc()
                failover_counted = True
            try:
                await channel.ensure_connected()
                assert channel.reader is not None
                assert channel.writer is not None
                channel.writer.write(frame)
                await channel.writer.drain()
                response = await asyncio.wait_for(
                    read_raw_frame(
                        channel.reader, self.config.max_frame_bytes
                    ),
                    timeout=self.config.worker_timeout_s,
                )
                if response is None:
                    raise TornFrame("worker closed between frames")
            except (
                WireError,
                OSError,
                ConnectionError,
                asyncio.TimeoutError,
                TimeoutError,
            ):
                self.obs.counter("frontend.worker_errors").inc()
                breaker.record_failure()
                self._observe_breaker(worker_id)
                channel.mark_dead()
                self._pool.put_nowait(channel)
                tried_workers.add(worker_id)
                attempts += 1
                if attempts >= 2:
                    return None
                continue
            # The worker answered: transport is healthy regardless of
            # whether the payload is a result or a typed error.
            breaker.record_success()
            self._observe_breaker(worker_id)
            self._pool.put_nowait(channel)
            return response
        return None

    # ---------------------------------------------------------- #
    # Coalescing + result cache (both opt-in)

    async def _serve_shared(
        self, key: Any, frame: bytes
    ) -> dict[str, Any] | None:
        """Answer one canonical-keyed serve: cache, then singleflight.

        Returns the *shared* decoded response payload (the caller
        restamps it per client), or ``None`` when no worker answered.
        """
        if self.cache is not None:
            hit = self.cache.get(key)
            if hit is not None:
                self.obs.counter("frontend.cache_hits").inc()
                return hit
            self.obs.counter("frontend.cache_misses").inc()
        if not self.config.coalesce:
            return await self._dispatch_decoded(key, frame)
        inflight = self._inflight.get(key)
        if inflight is not None and not inflight.done():
            self.obs.counter("frontend.coalesced").inc()
            # shield: a follower's disconnect must not cancel the
            # leader's round trip out from under the other followers.
            return await asyncio.shield(inflight)
        task = asyncio.ensure_future(self._dispatch_decoded(key, frame))
        self._inflight[key] = task

        def _clear(done: asyncio.Task[dict[str, Any] | None]) -> None:
            if self._inflight.get(key) is done:
                del self._inflight[key]

        task.add_done_callback(_clear)
        return await asyncio.shield(task)

    async def _dispatch_decoded(
        self, key: Any, frame: bytes
    ) -> dict[str, Any] | None:
        """One worker round trip, decoded, generation-observed, cached."""
        raw = await self._dispatch(frame)
        if raw is None:
            return None
        try:
            response = decode_payload(raw[HEADER.size:])
        except WireError:
            self.obs.counter("frontend.worker_errors").inc()
            return None
        if self.cache is not None and response.get("type") == "result":
            generation = response.get("generation")
            if not isinstance(generation, int):
                generation = 0
            if self.cache.observe_generation(generation):
                self.obs.counter("frontend.cache_invalidations").inc()
            result = response.get("result")
            if (
                isinstance(result, dict)
                and result.get("degraded_reason", "none") == "none"
            ):
                # Only full-fidelity answers are worth remembering —
                # a degraded slate would otherwise outlive the overload
                # that produced it.
                self.cache.put(key, generation, response)
        return response

    # ---------------------------------------------------------- #
    # Stats

    async def stats_payload(self) -> dict[str, Any]:
        """Frontend counters plus a fresh ``stats`` probe per worker."""
        workers: list[dict[str, Any]] = []
        probe = encode_frame({"type": "stats"}, self.config.max_frame_bytes)
        for worker_id, (control, lock) in sorted(self._control.items()):
            async with lock:
                try:
                    await control.ensure_connected()
                    assert control.reader is not None
                    assert control.writer is not None
                    control.writer.write(probe)
                    await control.writer.drain()
                    raw = await asyncio.wait_for(
                        read_raw_frame(
                            control.reader, self.config.max_frame_bytes
                        ),
                        timeout=self.config.worker_timeout_s,
                    )
                    if raw is None:
                        raise TornFrame("worker closed between frames")
                    workers.append(decode_payload(raw[HEADER.size:]))
                except (
                    WireError,
                    OSError,
                    ConnectionError,
                    asyncio.TimeoutError,
                    TimeoutError,
                ):
                    control.mark_dead()
                    workers.append(
                        {"worker_id": worker_id, "unreachable": True}
                    )
        counters = {
            metric.name: metric.value
            for metric in self.obs.collect()
            if metric.kind == "counter"
            and metric.name.startswith(("frontend.", "resilience."))
        }
        return {
            "type": "stats",
            "frontend": {
                "port": self.port,
                "num_workers": len(self.worker_sockets),
                "conns_per_worker": self.config.conns_per_worker,
                "coalesce": self.config.coalesce,
                "cache": self.cache.stats() if self.cache is not None else None,
                "counters": counters,
                "breakers": {
                    str(worker_id): (
                        "failed"
                        if worker_id in self._failed_workers
                        else breaker.state.value
                    )
                    for worker_id, breaker in self.breakers.items()
                },
                "failed_workers": sorted(self._failed_workers),
            },
            "workers": workers,
        }
