"""``ServingCluster`` — boot, supervise, and tear down the whole tier.

One cluster is: N worker processes (each :func:`~repro.netserve.worker
.run_worker` over the **same** packed segment file), one
:class:`~repro.netserve.frontend.Frontend`, and the runtime directory
holding the workers' Unix sockets.  Workers are started with the
``fork`` start method where available, so the segment mapping
established by the parent's build step is shared copy-on-write and the
mmap'd file pages are shared, period.

The frontend can run two ways:

* **in-process** (default) — on a daemon thread with its own event
  loop.  Right for tests: one process to debug, nothing to orphan.
* **as a process** (``frontend_process=True``) — forked like a worker,
  publishing its bound port through a file in the runtime directory.
  Right for benchmarks: the load generator's client loop and the
  frontend's relay loop stop sharing one GIL, so measured scaling is
  the workers', not the harness's.

``ServingCluster`` is a context manager; ``stop()`` is idempotent and
**graceful by design**: stop supervising (so nothing resurrects what is
being torn down), stop admitting (frontend down first), then drain —
every worker gets a ``shutdown`` frame, serves what its dispatch queue
already holds, flushes the replies, and exits; ``terminate``/``kill``
are escalation for processes that ignore all of that, never the first
move.

With ``supervise=True`` (the default) the cluster runs a
:class:`~repro.netserve.supervisor.WorkerSupervisor` that detects dead
*and hung* workers, respawns them with backoff, retires crash-loopers,
and feeds recovery state back into the frontend's per-worker circuit
breakers — the self-healing layer the chaos harness
(:mod:`repro.netserve.chaos`) drives under fire.
:meth:`ServingCluster.rolling_restart` restarts workers one at a time
(e.g. to pick up a new manifest generation) with no capacity gap.
"""

from __future__ import annotations

import contextlib
import multiprocessing
import os
import shutil
import socket
import tempfile
import threading
import time
from dataclasses import dataclass, field
from typing import Any

from repro.netserve.frontend import Frontend, FrontendConfig
from repro.netserve.supervisor import SupervisorConfig, WorkerSupervisor
from repro.netserve.wire import (
    DEFAULT_MAX_FRAME_BYTES,
    recv_frame,
    send_frame,
)
from repro.netserve.worker import (
    DEFAULT_RELOAD_CHECK_INTERVAL_S,
    WorkerConfig,
    run_worker,
)
from repro.resilience.admission import AdmissionConfig
from repro.resilience.breaker import BreakerConfig
from repro.segment.packed import DEFAULT_CACHE_BYTES

__all__ = ["ClusterConfig", "ServingCluster"]


@dataclass(frozen=True, slots=True)
class ClusterConfig:
    """Shape of one serving cluster (see class docstring)."""

    segment_path: str
    num_workers: int = 2
    host: str = "127.0.0.1"
    port: int = 0
    conns_per_worker: int = 2
    worker_timeout_s: float = 10.0
    client_idle_timeout_s: float | None = 30.0
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES
    slots: int = 4
    reserve_micros: int = 1
    cache_bytes: int = DEFAULT_CACHE_BYTES
    default_deadline_ms: float | None = None
    admission: AdmissionConfig | None = None
    breaker: BreakerConfig = field(default_factory=BreakerConfig)
    runtime_dir: str | None = None
    boot_timeout_s: float = 30.0
    frontend_process: bool = False
    # Batched-pipeline knobs (PR 9), all off-by-default-equivalent:
    # max_batch=1 serves every request on the scalar path, coalesce off
    # and cache_entries=0 keep the frontend a pure relay.
    max_batch: int = 1
    batch_wait_us: float = 500.0
    worker_queue_depth: int = 1024
    reload_check_interval_s: float = DEFAULT_RELOAD_CHECK_INTERVAL_S
    coalesce: bool = False
    cache_entries: int = 0
    # Self-healing (PR 10): supervise by default — a production tier
    # that cannot survive a worker death is not a tier.  supervisor
    # None means SupervisorConfig() defaults; drain_timeout_s bounds
    # the graceful flush of each worker's queue at stop().
    supervise: bool = True
    supervisor: SupervisorConfig | None = None
    drain_timeout_s: float = 5.0

    def __post_init__(self) -> None:
        if self.num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if self.drain_timeout_s < 0:
            raise ValueError("drain_timeout_s must be >= 0")

    def worker_config(self, worker_id: int, socket_path: str) -> WorkerConfig:
        return WorkerConfig(
            segment_path=self.segment_path,
            socket_path=socket_path,
            worker_id=worker_id,
            slots=self.slots,
            reserve_micros=self.reserve_micros,
            cache_bytes=self.cache_bytes,
            default_deadline_ms=self.default_deadline_ms,
            max_frame_bytes=self.max_frame_bytes,
            max_batch=self.max_batch,
            batch_wait_us=self.batch_wait_us,
            queue_depth=self.worker_queue_depth,
            reload_check_interval_s=self.reload_check_interval_s,
            drain_timeout_s=self.drain_timeout_s,
        )

    def frontend_config(self) -> FrontendConfig:
        return FrontendConfig(
            host=self.host,
            port=self.port,
            conns_per_worker=self.conns_per_worker,
            worker_timeout_s=self.worker_timeout_s,
            client_idle_timeout_s=self.client_idle_timeout_s,
            max_frame_bytes=self.max_frame_bytes,
            reserve_micros=self.reserve_micros,
            admission=self.admission,
            breaker=self.breaker,
            coalesce=self.coalesce,
            cache_entries=self.cache_entries,
        )


def _mp_context() -> multiprocessing.context.BaseContext:
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover — non-POSIX fallback
        return multiprocessing.get_context("spawn")


def _run_frontend_process(
    config: ClusterConfig, worker_sockets: list[str], port_path: str
) -> None:
    """Child entry: run the frontend forever, publishing its port.

    SIGTERM (the cluster's graceful-stop signal) closes the listener
    and every connection through :meth:`Frontend.stop` — stop admitting
    first is what makes the workers' queue drain finite.
    """
    import asyncio
    import signal

    async def main() -> None:
        frontend = Frontend(worker_sockets, config.frontend_config())
        await frontend.start()
        tmp = port_path + ".tmp"
        with open(tmp, "w", encoding="ascii") as fh:
            fh.write(str(frontend.port))
        os.replace(tmp, port_path)
        loop = asyncio.get_running_loop()
        stopped = asyncio.Event()
        with contextlib.suppress(NotImplementedError, ValueError):
            loop.add_signal_handler(signal.SIGTERM, stopped.set)
        serve = asyncio.ensure_future(frontend.serve_forever())
        stop_wait = asyncio.ensure_future(stopped.wait())
        try:
            await asyncio.wait(
                {serve, stop_wait}, return_when=asyncio.FIRST_COMPLETED
            )
        finally:
            serve.cancel()
            stop_wait.cancel()
            await asyncio.gather(serve, stop_wait, return_exceptions=True)
            await frontend.stop()

    with contextlib.suppress(KeyboardInterrupt):
        asyncio.run(main())


class ServingCluster:
    """Lifecycle owner for workers + frontend (see module docstring)."""

    def __init__(self, config: ClusterConfig) -> None:
        self.config = config
        self.processes: list[multiprocessing.process.BaseProcess] = []
        self.worker_sockets: list[str] = []
        self.port: int | None = None
        self.frontend: Frontend | None = None
        self.supervisor: WorkerSupervisor | None = None
        self._ctx: multiprocessing.context.BaseContext | None = None
        self._frontend_proc: multiprocessing.process.BaseProcess | None = None
        self._loop: Any = None
        self._thread: threading.Thread | None = None
        self._runtime_dir: str | None = None
        self._owns_runtime_dir = False
        self._started = False

    # ---------------------------------------------------------- #

    def __enter__(self) -> ServingCluster:
        self.start()
        return self

    def __exit__(self, *exc: object) -> None:
        self.stop()

    @property
    def address(self) -> tuple[str, int]:
        assert self.port is not None, "cluster not started"
        return (self.config.host, self.port)

    def start(self) -> None:
        """Boot workers, wait until each answers ``ping``, then the
        frontend; returns with :attr:`port` bound and serving."""
        if self._started:
            return
        config = self.config
        if config.runtime_dir is not None:
            self._runtime_dir = config.runtime_dir
            os.makedirs(self._runtime_dir, exist_ok=True)
        else:
            self._runtime_dir = tempfile.mkdtemp(prefix="netserve-")
            self._owns_runtime_dir = True
        ctx = _mp_context()
        self._ctx = ctx
        deadline = time.monotonic() + config.boot_timeout_s
        try:
            for worker_id in range(config.num_workers):
                path = os.path.join(self._runtime_dir, f"w{worker_id}.sock")
                # A previous incarnation (crashed cluster, SIGKILL'd
                # worker) may have left its socket file behind in a
                # caller-provided runtime dir; the fresh worker's bind
                # must never collide with the corpse's path.
                with contextlib.suppress(OSError):
                    os.unlink(path)
                self.worker_sockets.append(path)
                self.processes.append(self._spawn_worker(worker_id))
            for worker_id, path in enumerate(self.worker_sockets):
                self._await_worker(worker_id, path, deadline)
            if config.frontend_process:
                self._start_frontend_process(ctx, deadline)
            else:
                self._start_frontend_thread()
            if config.supervise:
                self._start_supervisor()
            self._started = True
        except BaseException:
            # A mid-boot failure must not leak already-forked workers
            # or their socket files: stop() reaps both.
            self.stop()
            raise

    def _spawn_worker(
        self, worker_id: int
    ) -> multiprocessing.process.BaseProcess:
        """Fork one worker (boot and every supervised respawn)."""
        assert self._ctx is not None
        proc = self._ctx.Process(
            target=run_worker,
            args=(
                self.config.worker_config(
                    worker_id, self.worker_sockets[worker_id]
                ),
            ),
            name=f"netserve-worker-{worker_id}",
            daemon=True,
        )
        proc.start()
        if worker_id < len(self.processes):
            self.processes[worker_id] = proc
        return proc

    def _await_worker(
        self,
        worker_id: int,
        path: str,
        deadline: float,
    ) -> None:
        proc = self.processes[worker_id]
        while True:
            try:
                with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as s:
                    s.settimeout(2.0)
                    s.connect(path)
                    send_frame(s, {"type": "ping"})
                    reply = recv_frame(s)
                if reply is not None and reply.get("type") == "pong":
                    return
            except OSError:
                pass
            if not proc.is_alive():
                # Dead before its ping gate: a clear boot error now,
                # not a TimeoutError after the whole boot deadline.
                raise RuntimeError(
                    f"worker {worker_id} died during boot "
                    f"(exitcode {proc.exitcode}) before answering ping"
                )
            if time.monotonic() > deadline:
                raise TimeoutError(f"worker socket {path} never became ready")
            time.sleep(0.05)

    def _start_frontend_thread(self) -> None:
        import asyncio

        loop = asyncio.new_event_loop()
        started = threading.Event()
        failure: list[BaseException] = []

        def runner() -> None:
            asyncio.set_event_loop(loop)
            frontend = Frontend(
                self.worker_sockets, self.config.frontend_config()
            )
            try:
                loop.run_until_complete(frontend.start())
            except BaseException as exc:  # noqa: BLE001 — reported to caller
                failure.append(exc)
                started.set()
                return
            self.frontend = frontend
            self.port = frontend.port
            started.set()
            try:
                loop.run_forever()
            finally:
                loop.run_until_complete(frontend.stop())
                pending = asyncio.all_tasks(loop)
                for task in pending:
                    task.cancel()
                if pending:
                    loop.run_until_complete(
                        asyncio.gather(*pending, return_exceptions=True)
                    )
                loop.close()

        self._loop = loop
        self._thread = threading.Thread(
            target=runner, name="netserve-frontend", daemon=True
        )
        self._thread.start()
        started.wait(self.config.boot_timeout_s)
        if failure:
            raise failure[0]
        if self.port is None:
            raise TimeoutError("frontend never bound its port")

    # ---------------------------------------------------------- #
    # Supervision

    def _start_supervisor(self) -> None:
        supervisor = WorkerSupervisor(
            spawn=self._spawn_worker,
            config=self.config.supervisor,
            on_worker_ready=self._notify_worker_ready,
            on_worker_failed=self._notify_worker_failed,
            max_frame_bytes=self.config.max_frame_bytes,
        )
        for worker_id, (path, proc) in enumerate(
            zip(self.worker_sockets, self.processes)
        ):
            supervisor.watch(worker_id, path, proc)
        supervisor.start()
        self.supervisor = supervisor

    def _notify_worker_ready(self, worker_id: int) -> None:
        self._notify_frontend("worker_ready", worker_id)

    def _notify_worker_failed(self, worker_id: int) -> None:
        self._notify_frontend("worker_failed", worker_id)

    def _notify_frontend(self, op: str, worker_id: int) -> None:
        """Tell the frontend about a worker state change — a direct
        call onto its loop in thread mode, an ``admin`` frame over TCP
        when it runs as its own process.  Best-effort either way: a
        frontend that cannot be told still recovers through the
        breaker's own half-open cycle."""
        frontend = self.frontend
        if frontend is not None and self._loop is not None:
            method = (
                frontend.mark_worker_ready
                if op == "worker_ready"
                else frontend.mark_worker_failed
            )
            with contextlib.suppress(RuntimeError):
                self._loop.call_soon_threadsafe(method, worker_id)
            return
        if self.port is None:
            return
        with contextlib.suppress(OSError, Exception):
            with socket.create_connection(
                (self.config.host, self.port), timeout=2.0
            ) as conn:
                send_frame(
                    conn,
                    {"type": "admin", "op": op, "worker_id": worker_id},
                )
                recv_frame(conn)

    def rolling_restart(self) -> list[int]:
        """Restart workers one at a time (graceful drain each); the new
        pids.  Requires supervision — the restart machinery is the
        supervisor's."""
        if self.supervisor is None:
            raise RuntimeError(
                "rolling_restart requires a supervised cluster "
                "(ClusterConfig.supervise=True)"
            )
        return self.supervisor.rolling_restart()

    def _start_frontend_process(
        self, ctx: multiprocessing.context.BaseContext, deadline: float
    ) -> None:
        assert self._runtime_dir is not None
        port_path = os.path.join(self._runtime_dir, "frontend.port")
        proc = ctx.Process(
            target=_run_frontend_process,
            args=(self.config, self.worker_sockets, port_path),
            name="netserve-frontend",
            daemon=True,
        )
        proc.start()
        self._frontend_proc = proc
        while True:
            if os.path.exists(port_path):
                with open(port_path, encoding="ascii") as fh:
                    self.port = int(fh.read().strip())
                return
            if not proc.is_alive():
                raise RuntimeError("frontend process died during boot")
            if time.monotonic() > deadline:
                raise TimeoutError("frontend never published its port")
            time.sleep(0.05)

    # ---------------------------------------------------------- #

    def stop(self) -> None:
        """Graceful drain, then teardown; safe to call twice.

        Ordering is the whole point: (1) stop supervising, or the loop
        would resurrect the workers being stopped; (2) stop admitting —
        the frontend goes down first (SIGTERM is its graceful-stop
        signal in process mode), so no new work reaches a worker;
        (3) drain — each worker gets a ``shutdown`` frame, serves what
        its dispatch queue already holds, flushes the replies, and
        exits; (4) escalate — ``terminate`` then ``kill`` only for
        processes that ignored all of that; (5) sweep socket files the
        escalation path could not let workers unlink themselves.
        """
        if self.supervisor is not None:
            self.supervisor.stop()
            self.supervisor = None
        if self._thread is not None and self._loop is not None:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=10.0)
            self._thread = None
            self._loop = None
            self.frontend = None
        if self._frontend_proc is not None:
            self._frontend_proc.terminate()
            self._frontend_proc.join(timeout=5.0)
            if self._frontend_proc.is_alive():  # pragma: no cover
                self._frontend_proc.kill()
                self._frontend_proc.join(timeout=5.0)
            self._frontend_proc = None
        for path in self.worker_sockets:
            with contextlib.suppress(OSError, Exception):
                with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as s:
                    s.settimeout(1.0)
                    s.connect(path)
                    send_frame(s, {"type": "shutdown"})
                    recv_frame(s)
        drain_grace = self.config.drain_timeout_s + 5.0
        for proc in self.processes:
            proc.join(timeout=drain_grace)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover
                proc.kill()
                proc.join(timeout=5.0)
        # Workers unlink their own socket on a clean exit; sweep what
        # the escalation path (or a SIGKILL'd incarnation) left behind.
        for path in self.worker_sockets:
            with contextlib.suppress(OSError):
                os.unlink(path)
        self.processes.clear()
        self.worker_sockets.clear()
        self.port = None
        if self._owns_runtime_dir and self._runtime_dir is not None:
            shutil.rmtree(self._runtime_dir, ignore_errors=True)
        self._runtime_dir = None
        self._owns_runtime_dir = False
        self._started = False
        self._ctx = None
