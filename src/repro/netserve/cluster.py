"""``ServingCluster`` — boot, supervise, and tear down the whole tier.

One cluster is: N worker processes (each :func:`~repro.netserve.worker
.run_worker` over the **same** packed segment file), one
:class:`~repro.netserve.frontend.Frontend`, and the runtime directory
holding the workers' Unix sockets.  Workers are started with the
``fork`` start method where available, so the segment mapping
established by the parent's build step is shared copy-on-write and the
mmap'd file pages are shared, period.

The frontend can run two ways:

* **in-process** (default) — on a daemon thread with its own event
  loop.  Right for tests: one process to debug, nothing to orphan.
* **as a process** (``frontend_process=True``) — forked like a worker,
  publishing its bound port through a file in the runtime directory.
  Right for benchmarks: the load generator's client loop and the
  frontend's relay loop stop sharing one GIL, so measured scaling is
  the workers', not the harness's.

``ServingCluster`` is a context manager; ``stop()`` is idempotent,
sends every worker a ``shutdown`` frame, and escalates to
``terminate``/``kill`` only for processes that ignore it.
"""

from __future__ import annotations

import contextlib
import multiprocessing
import os
import shutil
import socket
import tempfile
import threading
import time
from dataclasses import dataclass, field
from typing import Any

from repro.netserve.frontend import Frontend, FrontendConfig
from repro.netserve.wire import (
    DEFAULT_MAX_FRAME_BYTES,
    recv_frame,
    send_frame,
)
from repro.netserve.worker import (
    DEFAULT_RELOAD_CHECK_INTERVAL_S,
    WorkerConfig,
    run_worker,
)
from repro.resilience.admission import AdmissionConfig
from repro.resilience.breaker import BreakerConfig
from repro.segment.packed import DEFAULT_CACHE_BYTES

__all__ = ["ClusterConfig", "ServingCluster"]


@dataclass(frozen=True, slots=True)
class ClusterConfig:
    """Shape of one serving cluster (see class docstring)."""

    segment_path: str
    num_workers: int = 2
    host: str = "127.0.0.1"
    port: int = 0
    conns_per_worker: int = 2
    worker_timeout_s: float = 10.0
    client_idle_timeout_s: float | None = 30.0
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES
    slots: int = 4
    reserve_micros: int = 1
    cache_bytes: int = DEFAULT_CACHE_BYTES
    default_deadline_ms: float | None = None
    admission: AdmissionConfig | None = None
    breaker: BreakerConfig = field(default_factory=BreakerConfig)
    runtime_dir: str | None = None
    boot_timeout_s: float = 30.0
    frontend_process: bool = False
    # Batched-pipeline knobs (PR 9), all off-by-default-equivalent:
    # max_batch=1 serves every request on the scalar path, coalesce off
    # and cache_entries=0 keep the frontend a pure relay.
    max_batch: int = 1
    batch_wait_us: float = 500.0
    worker_queue_depth: int = 1024
    reload_check_interval_s: float = DEFAULT_RELOAD_CHECK_INTERVAL_S
    coalesce: bool = False
    cache_entries: int = 0

    def __post_init__(self) -> None:
        if self.num_workers < 1:
            raise ValueError("num_workers must be >= 1")

    def worker_config(self, worker_id: int, socket_path: str) -> WorkerConfig:
        return WorkerConfig(
            segment_path=self.segment_path,
            socket_path=socket_path,
            worker_id=worker_id,
            slots=self.slots,
            reserve_micros=self.reserve_micros,
            cache_bytes=self.cache_bytes,
            default_deadline_ms=self.default_deadline_ms,
            max_frame_bytes=self.max_frame_bytes,
            max_batch=self.max_batch,
            batch_wait_us=self.batch_wait_us,
            queue_depth=self.worker_queue_depth,
            reload_check_interval_s=self.reload_check_interval_s,
        )

    def frontend_config(self) -> FrontendConfig:
        return FrontendConfig(
            host=self.host,
            port=self.port,
            conns_per_worker=self.conns_per_worker,
            worker_timeout_s=self.worker_timeout_s,
            client_idle_timeout_s=self.client_idle_timeout_s,
            max_frame_bytes=self.max_frame_bytes,
            reserve_micros=self.reserve_micros,
            admission=self.admission,
            breaker=self.breaker,
            coalesce=self.coalesce,
            cache_entries=self.cache_entries,
        )


def _mp_context() -> multiprocessing.context.BaseContext:
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover — non-POSIX fallback
        return multiprocessing.get_context("spawn")


def _run_frontend_process(
    config: ClusterConfig, worker_sockets: list[str], port_path: str
) -> None:
    """Child entry: run the frontend forever, publishing its port."""
    import asyncio

    async def main() -> None:
        frontend = Frontend(worker_sockets, config.frontend_config())
        await frontend.start()
        tmp = port_path + ".tmp"
        with open(tmp, "w", encoding="ascii") as fh:
            fh.write(str(frontend.port))
        os.replace(tmp, port_path)
        await frontend.serve_forever()

    with contextlib.suppress(KeyboardInterrupt):
        asyncio.run(main())


class ServingCluster:
    """Lifecycle owner for workers + frontend (see module docstring)."""

    def __init__(self, config: ClusterConfig) -> None:
        self.config = config
        self.processes: list[multiprocessing.process.BaseProcess] = []
        self.worker_sockets: list[str] = []
        self.port: int | None = None
        self.frontend: Frontend | None = None
        self._frontend_proc: multiprocessing.process.BaseProcess | None = None
        self._loop: Any = None
        self._thread: threading.Thread | None = None
        self._runtime_dir: str | None = None
        self._owns_runtime_dir = False
        self._started = False

    # ---------------------------------------------------------- #

    def __enter__(self) -> ServingCluster:
        self.start()
        return self

    def __exit__(self, *exc: object) -> None:
        self.stop()

    @property
    def address(self) -> tuple[str, int]:
        assert self.port is not None, "cluster not started"
        return (self.config.host, self.port)

    def start(self) -> None:
        """Boot workers, wait until each answers ``ping``, then the
        frontend; returns with :attr:`port` bound and serving."""
        if self._started:
            return
        config = self.config
        if config.runtime_dir is not None:
            self._runtime_dir = config.runtime_dir
            os.makedirs(self._runtime_dir, exist_ok=True)
        else:
            self._runtime_dir = tempfile.mkdtemp(prefix="netserve-")
            self._owns_runtime_dir = True
        ctx = _mp_context()
        deadline = time.monotonic() + config.boot_timeout_s
        try:
            for worker_id in range(config.num_workers):
                path = os.path.join(self._runtime_dir, f"w{worker_id}.sock")
                self.worker_sockets.append(path)
                proc = ctx.Process(
                    target=run_worker,
                    args=(config.worker_config(worker_id, path),),
                    name=f"netserve-worker-{worker_id}",
                    daemon=True,
                )
                proc.start()
                self.processes.append(proc)
            for path in self.worker_sockets:
                self._await_worker(path, deadline)
            if config.frontend_process:
                self._start_frontend_process(ctx, deadline)
            else:
                self._start_frontend_thread()
            self._started = True
        except BaseException:
            self.stop()
            raise

    def _await_worker(self, path: str, deadline: float) -> None:
        while True:
            try:
                with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as s:
                    s.settimeout(2.0)
                    s.connect(path)
                    send_frame(s, {"type": "ping"})
                    reply = recv_frame(s)
                if reply is not None and reply.get("type") == "pong":
                    return
            except OSError:
                pass
            if time.monotonic() > deadline:
                raise TimeoutError(f"worker socket {path} never became ready")
            time.sleep(0.05)

    def _start_frontend_thread(self) -> None:
        import asyncio

        loop = asyncio.new_event_loop()
        started = threading.Event()
        failure: list[BaseException] = []

        def runner() -> None:
            asyncio.set_event_loop(loop)
            frontend = Frontend(
                self.worker_sockets, self.config.frontend_config()
            )
            try:
                loop.run_until_complete(frontend.start())
            except BaseException as exc:  # noqa: BLE001 — reported to caller
                failure.append(exc)
                started.set()
                return
            self.frontend = frontend
            self.port = frontend.port
            started.set()
            try:
                loop.run_forever()
            finally:
                loop.run_until_complete(frontend.stop())
                pending = asyncio.all_tasks(loop)
                for task in pending:
                    task.cancel()
                if pending:
                    loop.run_until_complete(
                        asyncio.gather(*pending, return_exceptions=True)
                    )
                loop.close()

        self._loop = loop
        self._thread = threading.Thread(
            target=runner, name="netserve-frontend", daemon=True
        )
        self._thread.start()
        started.wait(self.config.boot_timeout_s)
        if failure:
            raise failure[0]
        if self.port is None:
            raise TimeoutError("frontend never bound its port")

    def _start_frontend_process(
        self, ctx: multiprocessing.context.BaseContext, deadline: float
    ) -> None:
        assert self._runtime_dir is not None
        port_path = os.path.join(self._runtime_dir, "frontend.port")
        proc = ctx.Process(
            target=_run_frontend_process,
            args=(self.config, self.worker_sockets, port_path),
            name="netserve-frontend",
            daemon=True,
        )
        proc.start()
        self._frontend_proc = proc
        while True:
            if os.path.exists(port_path):
                with open(port_path, encoding="ascii") as fh:
                    self.port = int(fh.read().strip())
                return
            if not proc.is_alive():
                raise RuntimeError("frontend process died during boot")
            if time.monotonic() > deadline:
                raise TimeoutError("frontend never published its port")
            time.sleep(0.05)

    # ---------------------------------------------------------- #

    def stop(self) -> None:
        """Tear everything down; safe to call twice."""
        if self._thread is not None and self._loop is not None:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=10.0)
            self._thread = None
            self._loop = None
            self.frontend = None
        if self._frontend_proc is not None:
            self._frontend_proc.terminate()
            self._frontend_proc.join(timeout=5.0)
            if self._frontend_proc.is_alive():  # pragma: no cover
                self._frontend_proc.kill()
                self._frontend_proc.join(timeout=5.0)
            self._frontend_proc = None
        for path in self.worker_sockets:
            with contextlib.suppress(OSError, Exception):
                with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as s:
                    s.settimeout(1.0)
                    s.connect(path)
                    send_frame(s, {"type": "shutdown"})
                    recv_frame(s)
        for proc in self.processes:
            proc.join(timeout=5.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover
                proc.kill()
                proc.join(timeout=5.0)
        self.processes.clear()
        self.worker_sockets.clear()
        self.port = None
        if self._owns_runtime_dir and self._runtime_dir is not None:
            shutil.rmtree(self._runtime_dir, ignore_errors=True)
        self._runtime_dir = None
        self._owns_runtime_dir = False
        self._started = False
