"""Per-process memory accounting for the zero-copy sharing gate.

The whole point of serving :class:`~repro.segment.PackedSegmentIndex`
from N forked workers is that the segment's bytes live in **one** set of
file-backed page-cache pages, mapped into every worker: adding a worker
adds interpreter state, not another copy of the index.  Proving that
needs two measurements, both read from ``/proc`` (Linux only; every
helper degrades to ``None`` elsewhere so callers can flag, not crash):

* :func:`private_resident_bytes` — the process's ``Private_Clean +
  Private_Dirty`` from ``smaps_rollup``: resident pages *not* shared
  with any other process.  Shared file-backed mappings are excluded by
  the kernel's own accounting.
* :func:`segment_mapping_report` — the private/shared/PSS split of the
  mapping of one specific file (the segment).  With a single mapper the
  kernel counts resident file pages as ``Private_Clean``; the moment a
  second worker maps the same file they flip to ``Shared_Clean``.  The
  bench gate is therefore on the *multi-worker* run: each worker's
  private bytes attributable to the segment mapping must stay a small
  fraction of the packed size, or the workers are secretly copying.
"""

from __future__ import annotations

import os
from typing import Any

__all__ = [
    "memory_report",
    "private_resident_bytes",
    "resident_bytes",
    "segment_mapping_report",
]

_SMAPS_ROLLUP = "/proc/self/smaps_rollup"
_SMAPS = "/proc/self/smaps"
_STATUS = "/proc/self/status"


def _parse_kb_fields(text: str, fields: tuple[str, ...]) -> dict[str, int]:
    """``Field: 123 kB`` lines summed per field name, in bytes."""
    totals = dict.fromkeys(fields, 0)
    for line in text.splitlines():
        name, _, rest = line.partition(":")
        if name in totals:
            parts = rest.split()
            if parts and parts[0].isdigit():
                totals[name] += int(parts[0]) * 1024
    return totals


def private_resident_bytes() -> int | None:
    """Resident bytes private to this process (``None`` off-Linux)."""
    try:
        with open(_SMAPS_ROLLUP, encoding="ascii", errors="replace") as fh:
            text = fh.read()
    except OSError:
        return None
    totals = _parse_kb_fields(text, ("Private_Clean", "Private_Dirty"))
    return totals["Private_Clean"] + totals["Private_Dirty"]


def resident_bytes() -> int | None:
    """Whole-process resident set (``VmRSS``; ``None`` off-Linux)."""
    try:
        with open(_STATUS, encoding="ascii", errors="replace") as fh:
            text = fh.read()
    except OSError:
        return None
    return _parse_kb_fields(text, ("VmRSS",))["VmRSS"] or None


def segment_mapping_report(path: str | os.PathLike[str]) -> dict[str, int] | None:
    """Resident accounting of this process's mappings of ``path``.

    Returns ``{"rss", "pss", "private", "shared"}`` in bytes summed over
    every mapping whose pathname matches, or ``None`` when ``/proc``
    is unavailable or the file is not mapped.
    """
    target = os.path.realpath(os.fspath(path))
    try:
        with open(_SMAPS, encoding="ascii", errors="replace") as fh:
            lines = fh.read().splitlines()
    except OSError:
        return None
    totals = {"rss": 0, "pss": 0, "private": 0, "shared": 0}
    matched = False
    in_target = False
    for line in lines:
        # Mapping headers look like "7f.. r--p .. 08:01 123  /path"; the
        # attribute lines that follow are "Field:  12 kB".
        if "-" in line.split(" ", 1)[0] and ":" not in line.split(" ", 1)[0]:
            in_target = line.endswith(target)
            matched = matched or in_target
            continue
        if not in_target:
            continue
        name, _, rest = line.partition(":")
        parts = rest.split()
        if not parts or not parts[0].isdigit():
            continue
        amount = int(parts[0]) * 1024
        if name == "Rss":
            totals["rss"] += amount
        elif name == "Pss":
            totals["pss"] += amount
        elif name in ("Private_Clean", "Private_Dirty"):
            totals["private"] += amount
        elif name in ("Shared_Clean", "Shared_Dirty"):
            totals["shared"] += amount
    return totals if matched else None


def memory_report(segment_path: str | os.PathLike[str] | None = None) -> dict[str, Any]:
    """One JSON-ready memory snapshot (worker ``stats`` frames embed it)."""
    report: dict[str, Any] = {
        "rss_bytes": resident_bytes(),
        "private_bytes": private_resident_bytes(),
    }
    if segment_path is not None:
        report["segment_mapping"] = segment_mapping_report(segment_path)
    return report
