"""``ServeClient`` — the blocking client the CLI and tests speak.

One TCP connection to the frontend, one frame in flight at a time.
``serve`` takes and returns the real dataclasses
(:class:`~repro.serving.request.ServeRequest` in,
:class:`~repro.serving.server.ServeResult` out), so calling a remote
cluster reads exactly like calling an in-process
:class:`~repro.serving.server.AdServer` — the API redesign's point.
"""

from __future__ import annotations

import socket
from typing import Any

from repro.netserve.wire import (
    DEFAULT_MAX_FRAME_BYTES,
    TornFrame,
    recv_frame,
    send_frame,
)
from repro.serving.request import ServeRequest, WireSchemaError
from repro.serving.server import ServeResult

__all__ = ["RemoteServeError", "ServeClient", "ServeConnectionError"]


class RemoteServeError(RuntimeError):
    """The remote side answered with a typed ``error`` frame."""

    def __init__(self, message: str, retryable: bool = False) -> None:
        super().__init__(message)
        self.retryable = retryable


class ServeConnectionError(ConnectionError):
    """The *transport* failed: refused connect, reset mid-frame, torn
    reply.  Distinct from :class:`RemoteServeError` (the server spoke,
    and said no) and from a plain timeout — callers counting failure
    modes (the load generator, the chaos harness) need to tell "the
    network/process died" apart from "the server was slow or unhappy".

    The raw ``OSError``/``TornFrame`` is preserved as ``__cause__``.
    """

    def __init__(self, message: str, cause: BaseException | None = None) -> None:
        super().__init__(message)
        self.__cause__ = cause


class ServeClient:
    """Blocking request/response client for one frontend connection."""

    def __init__(
        self,
        host: str,
        port: int,
        timeout_s: float = 10.0,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    ) -> None:
        self.max_frame_bytes = max_frame_bytes
        try:
            self._sock = socket.create_connection(
                (host, port), timeout=timeout_s
            )
        except TimeoutError:
            raise
        except OSError as exc:
            raise ServeConnectionError(
                f"connect to {host}:{port} failed: {exc}", exc
            ) from exc

    def __enter__(self) -> ServeClient:
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def close(self) -> None:
        self._sock.close()

    # ---------------------------------------------------------- #

    def request(self, payload: dict[str, Any]) -> dict[str, Any]:
        """One raw frame round trip (payload dicts both ways).

        Transport faults surface as :class:`ServeConnectionError`;
        timeouts stay ``TimeoutError`` so callers can count the two
        failure modes separately.
        """
        try:
            send_frame(self._sock, payload, self.max_frame_bytes)
            reply = recv_frame(self._sock, self.max_frame_bytes)
        except TimeoutError:
            raise
        except TornFrame as exc:
            raise ServeConnectionError(f"torn reply frame: {exc}", exc) from exc
        except OSError as exc:
            raise ServeConnectionError(
                f"connection to frontend failed: {exc}", exc
            ) from exc
        if reply is None:
            raise ServeConnectionError("frontend closed before answering")
        return reply

    def serve(self, request: ServeRequest) -> ServeResult:
        """Serve one request remotely; same types as the local API."""
        reply = self.request({"type": "serve", "request": request.to_dict()})
        if reply.get("type") == "error":
            raise RemoteServeError(
                str(reply.get("error")), bool(reply.get("retryable"))
            )
        if reply.get("type") != "result":
            raise WireSchemaError(
                f"expected a result frame, got {reply.get('type')!r}"
            )
        return ServeResult.from_dict(reply.get("result"))

    def ping(self) -> bool:
        """Liveness round trip."""
        return self.request({"type": "ping"}).get("type") == "pong"

    def stats(self) -> dict[str, Any]:
        """The frontend's aggregated stats payload (frontend counters
        plus one fresh per-worker probe)."""
        return self.request({"type": "stats"})
