"""One serving worker process: a packed segment behind a Unix socket.

A worker is forked by :class:`~repro.netserve.cluster.ServingCluster`
(or run directly via :func:`run_worker`).  It opens the **same** segment
file every sibling opens — ``mmap`` of one file means one set of page
cache pages shared across all of them — wraps it in the standard
:class:`~repro.serving.server.AdServer` pipeline, and answers
length-prefixed JSON frames (:mod:`repro.netserve.wire`) on an
``AF_UNIX`` listener:

* ``{"type": "serve", "request": {...}}`` → ``{"type": "result",
  "result": {...}, "generation": N}`` — the payloads are exactly
  :meth:`ServeRequest.to_dict` / :meth:`ServeResult.to_dict`; the
  ``generation`` stamp is the serving data generation (the tiered
  manifest generation, or 0 forever for a frozen packed segment) and
  is what lets the frontend's result cache invalidate on manifest
  swaps.
* ``{"type": "stats"}`` → served/error counters, serve-latency and
  batching percentiles from the worker's own :mod:`repro.obs`
  registry, and the :mod:`repro.netserve.memory` report that powers
  the zero-copy gate.
* ``{"type": "ping"}`` → ``{"type": "pong"}`` (the readiness probe).
* ``{"type": "shutdown"}`` → acked, then the process **drains**: new
  serves are refused with a retryable error, but everything already on
  the dispatch queue is served and its reply flushed (bounded by
  ``drain_timeout_s``) before the process exits — a planned shutdown
  must not turn admitted requests into visible failures.

Serving is **micro-batched**: connection threads decode and validate
``serve`` frames, then enqueue the :class:`ServeRequest` (with a reply
slot) on a bounded dispatch queue.  A single dispatcher thread drains
up to ``max_batch`` requests — waiting at most ``batch_wait_us`` for
stragglers once it has one — and routes the whole batch through
:meth:`AdServer.serve_batch`, which engages the
:class:`~repro.index.batch.BatchQueryEngine` word-set dedup and the
vectorized probe kernels.  Each :class:`ServeResult` fans back to its
originating connection thread via its reply slot.  There is **no
global serve lock**: the dispatcher owns the index between batches,
which is also the only place the tiered manifest hot-reload swap
happens (throttled to ``reload_check_interval_s`` so the hot path
never stats the filesystem per request).  ``stats``/``ping`` are
answered directly on the connection thread and can never queue behind
an in-flight batch.

The worker **never dies on a bad request**: schema errors and pipeline
exceptions are answered with typed ``error`` frames and counted; only a
transport-level fault ends that one connection.  The frontend keeps a
pool of long-lived connections, so accept volume is tiny; each accepted
connection is served by a daemon thread.
"""

from __future__ import annotations

import contextlib
import os
import queue
import signal
import socket
import threading
from dataclasses import dataclass
from time import monotonic, perf_counter
from typing import Any

from repro.netserve.memory import memory_report
from repro.netserve.wire import (
    DEFAULT_MAX_FRAME_BYTES,
    WireError,
    recv_frame,
    send_frame,
)
from repro.obs.registry import MetricsRegistry
from repro.segment.format import SegmentFormatError
from repro.segment.packed import DEFAULT_CACHE_BYTES, PackedSegmentIndex
from repro.segment.tiered import (
    TieredConfig,
    TieredSegmentedIndex,
    manifest_fingerprint,
)
from repro.serving.request import ServeRequest, WireSchemaError
from repro.serving.server import AdServer, ServeResult

__all__ = ["WorkerConfig", "run_worker"]

DEFAULT_RELOAD_CHECK_INTERVAL_S = 0.25

# Dispatch-queue sentinel: wakes the dispatcher for a clean drain.
_SHUTDOWN = object()


@dataclass(frozen=True, slots=True)
class WorkerConfig:
    """Everything one worker process needs, picklable for fork/spawn.

    Parameters
    ----------
    segment_path:
        The packed segment every worker maps (the shared bytes).
    socket_path:
        This worker's ``AF_UNIX`` listener path.
    worker_id:
        Stable id used in stats and frontend routing.
    slots / reserve_micros:
        Auction shape, passed through to :class:`AdServer`.
    cache_bytes:
        Per-worker decoded-node cache budget.  This is *private* memory
        by design — the gate on shared bytes covers the mapping, not
        the cache.
    default_deadline_ms:
        Server-side budget applied when a request carries none.
    max_frame_bytes:
        Per-frame wire budget.
    max_batch:
        Most requests one dispatcher batch may carry.  1 (the default)
        serves every request through the scalar path — bit-identical to
        the pre-batching worker.
    batch_wait_us:
        Once the dispatcher holds one request, how long it waits for
        batch-mates before serving short.  Latency floor the batch adds
        under light load; irrelevant once the queue runs hot.
    queue_depth:
        Bound on the dispatch queue.  A full queue answers a typed
        retryable ``error`` frame instead of blocking the connection
        thread forever (backpressure, not deadlock).
    reload_check_interval_s:
        Tiered mode: how often the dispatcher is allowed to stat the
        manifest between batches.  0 probes before every batch (tests).
    drain_timeout_s:
        Graceful-drain budget at shutdown: requests already accepted
        onto the dispatch queue are *served* (their clients are blocked
        on those replies) for up to this long; only what the budget
        cannot cover is answered with a retryable error.  0 restores
        the old error-everything drain.
    """

    segment_path: str
    socket_path: str
    worker_id: int = 0
    slots: int = 4
    reserve_micros: int = 1
    cache_bytes: int = DEFAULT_CACHE_BYTES
    default_deadline_ms: float | None = None
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES
    max_batch: int = 1
    batch_wait_us: float = 500.0
    queue_depth: int = 1024
    reload_check_interval_s: float = DEFAULT_RELOAD_CHECK_INTERVAL_S
    drain_timeout_s: float = 5.0

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.batch_wait_us < 0:
            raise ValueError("batch_wait_us must be >= 0")
        if self.queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        if self.reload_check_interval_s < 0:
            raise ValueError("reload_check_interval_s must be >= 0")
        if self.drain_timeout_s < 0:
            raise ValueError("drain_timeout_s must be >= 0")


class _PendingServe:
    """One enqueued request plus the slot its reply comes back in."""

    __slots__ = ("request", "enqueued_at", "done", "response")

    def __init__(self, request: ServeRequest) -> None:
        self.request = request
        self.enqueued_at = perf_counter()
        self.done = threading.Event()
        self.response: dict[str, Any] | None = None

    def resolve(self, response: dict[str, Any]) -> None:
        if self.done.is_set():  # idempotent: shutdown drain may race
            return
        self.response = response
        self.done.set()


class _Worker:
    """The in-process state behind one worker's accept loop."""

    def __init__(self, config: WorkerConfig) -> None:
        self.config = config
        self.obs = MetricsRegistry()
        # A directory is a tiered index (manifest + segment tiers); a
        # file is the classic single packed segment.
        self._tiered = os.path.isdir(config.segment_path)
        self.index: PackedSegmentIndex | TieredSegmentedIndex
        if self._tiered:
            self.index = self._open_tiered()
            self._manifest_fp = manifest_fingerprint(config.segment_path)
            self._generation = self.index.generation
        else:
            self.index = PackedSegmentIndex(
                config.segment_path,
                cache_bytes=config.cache_bytes,
                obs=self.obs,
            )
            self._manifest_fp = None
            self._generation = 0
        self.server = AdServer(
            self.index,
            slots=config.slots,
            reserve_micros=config.reserve_micros,
            default_deadline_ms=config.default_deadline_ms,
            obs=self.obs,
        )
        self.served = 0
        self.errors = 0
        self.wire_errors = 0
        self.manifest_reloads = 0
        self.batches = 0
        self.queue_rejects = 0
        self.drained = 0
        self.drain_errors = 0
        self._last_reload_probe = monotonic()
        self._stop = threading.Event()
        self._queue: queue.Queue[Any] = queue.Queue(maxsize=config.queue_depth)
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop,
            daemon=True,
            name=f"netserve-worker-{config.worker_id}-dispatch",
        )
        self._dispatcher.start()

    # ---------------------------------------------------------- #

    def _open_tiered(self) -> TieredSegmentedIndex:
        return TieredSegmentedIndex(
            self.config.segment_path,
            config=TieredConfig(cache_bytes=self.config.cache_bytes),
            obs=self.obs,
            read_only=True,
        )

    def _maybe_reload(self) -> None:
        """Pick up a manifest swap between batches (tiered mode only).

        Runs on the dispatcher thread, which is the only thread that
        touches the index — so the swap needs no lock at all.  The
        filesystem probe is throttled to ``reload_check_interval_s``;
        the atomic rename commit means the fingerprint moves exactly
        when a new generation lands, so a throttled probe can only
        delay pickup by the interval, never miss it.  A reload that
        races a writer's post-commit victim unlink fails to open and
        simply retries at the next probe — the old generation keeps
        serving meanwhile.
        """
        if not self._tiered:
            return
        interval = self.config.reload_check_interval_s
        now = monotonic()
        if interval > 0 and now - self._last_reload_probe < interval:
            return
        self._last_reload_probe = now
        fingerprint = manifest_fingerprint(self.config.segment_path)
        if fingerprint is None or fingerprint == self._manifest_fp:
            return
        try:
            fresh = self._open_tiered()
        except (OSError, SegmentFormatError):
            return
        old = self.index
        self.index = fresh
        self.server.index = fresh
        self._manifest_fp = fingerprint
        self._generation = fresh.generation
        self.manifest_reloads += 1
        old.close()

    # ------------------------- dispatcher --------------------- #

    def _dispatch_loop(self) -> None:
        """Drain the queue in micro-batches until shutdown."""
        while True:
            try:
                first = self._queue.get(timeout=0.2)
            except queue.Empty:
                if self._stop.is_set():
                    self._drain_shutdown()
                    return
                continue
            if first is _SHUTDOWN:
                self._drain_shutdown()
                return
            batch: list[_PendingServe] = [first]
            saw_shutdown = self._collect(batch)
            self._serve_batch(batch)
            if saw_shutdown:
                self._drain_shutdown()
                return

    def _collect(self, batch: list[_PendingServe]) -> bool:
        """Top up ``batch`` to ``max_batch`` within the wait budget.

        Returns True when the shutdown sentinel surfaced mid-collect
        (the batch in hand is still served before draining).
        """
        config = self.config
        if config.max_batch <= 1:
            return False
        deadline = perf_counter() + config.batch_wait_us / 1e6
        while len(batch) < config.max_batch:
            remaining = deadline - perf_counter()
            try:
                if remaining <= 0:
                    item = self._queue.get_nowait()
                else:
                    item = self._queue.get(timeout=remaining)
            except queue.Empty:
                return False
            if item is _SHUTDOWN:
                return True
            batch.append(item)
        return False

    def _serve_batch(self, batch: list[_PendingServe]) -> None:
        """One dispatcher turn: reload window, serve, fan out replies."""
        self._maybe_reload()
        now = perf_counter()
        queue_wait = self.obs.histogram("span.worker_queue_wait")
        for item in batch:
            queue_wait.observe((now - item.enqueued_at) * 1e3)
        self.obs.histogram("worker.batch_size").observe(float(len(batch)))
        self.batches += 1
        batch_started = perf_counter()
        results: list[ServeResult | None]
        try:
            if len(batch) == 1:
                # The scalar path, exactly as the pre-batching worker
                # ran it — a size-1 batch must stay bit-identical.
                results = [self.server.serve(batch[0].request)]
            else:
                results = list(
                    self.server.serve_batch(
                        [item.request for item in batch]
                    )
                )
        except Exception as exc:  # noqa: BLE001 — the worker never dies
            if len(batch) == 1:
                self.errors += 1
                batch[0].resolve(
                    self._error_frame(
                        f"{type(exc).__name__}: {exc}",
                        batch[0].request.request_id,
                        retryable=True,
                    )
                )
                return
            # One poisoned request must not fail its batch-mates: fall
            # back to per-request serving so only the bad item errors.
            results = []
            for item in batch:
                try:
                    results.append(self.server.serve(item.request))
                except Exception as item_exc:  # noqa: BLE001
                    self.errors += 1
                    item.resolve(
                        self._error_frame(
                            f"{type(item_exc).__name__}: {item_exc}",
                            item.request.request_id,
                            retryable=True,
                        )
                    )
                    results.append(None)
        self.obs.histogram("span.worker_batch").observe(
            (perf_counter() - batch_started) * 1e3
        )
        finished = perf_counter()
        latency = self.obs.histogram("span.worker_serve")
        for item, result in zip(batch, results):
            if result is None:
                continue  # already answered with an error frame
            latency.observe((finished - item.enqueued_at) * 1e3)
            self.served += 1
            response: dict[str, Any] = {
                "type": "result",
                "result": result.to_dict(),
                "generation": self._generation,
            }
            if item.request.request_id is not None:
                response["request_id"] = item.request.request_id
            item.resolve(response)

    def _drain_shutdown(self) -> None:
        """Graceful drain: flush replies for everything already queued.

        The clients behind those reply slots were *admitted* — erroring
        them now would turn a planned shutdown into visible failures.
        Serve them within the ``drain_timeout_s`` budget; only what the
        budget cannot cover gets the retryable shutdown error.  New
        work is already refused at the door (``_serve`` checks
        ``_stop`` before enqueueing), so the queue can only shrink.
        """
        deadline = monotonic() + self.config.drain_timeout_s
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                return
            if item is _SHUTDOWN:
                continue
            if monotonic() >= deadline:
                self.drain_errors += 1
                item.resolve(
                    self._error_frame(
                        "worker shutting down",
                        item.request.request_id,
                        retryable=True,
                    )
                )
                continue
            try:
                result = self.server.serve(item.request)
            except Exception as exc:  # noqa: BLE001 — drain never dies
                self.errors += 1
                item.resolve(
                    self._error_frame(
                        f"{type(exc).__name__}: {exc}",
                        item.request.request_id,
                        retryable=True,
                    )
                )
                continue
            self.served += 1
            self.drained += 1
            response: dict[str, Any] = {
                "type": "result",
                "result": result.to_dict(),
                "generation": self._generation,
            }
            if item.request.request_id is not None:
                response["request_id"] = item.request.request_id
            item.resolve(response)

    # ------------------------ frame handling ------------------ #

    def handle(self, payload: dict[str, Any]) -> dict[str, Any] | None:
        """One request frame → one response payload (``None`` = exit).

        Only ``serve`` goes through the dispatch queue; control frames
        (``ping``/``stats``/``shutdown``) are answered right here on
        the calling thread so they never wait behind a serve batch.
        """
        msg_type = payload.get("type")
        if msg_type == "serve":
            return self._serve(payload)
        if msg_type == "ping":
            return {"type": "pong", "worker_id": self.config.worker_id}
        if msg_type == "stats":
            return self.stats_payload()
        if msg_type == "shutdown":
            self._stop.set()
            with contextlib.suppress(queue.Full):
                self._queue.put_nowait(_SHUTDOWN)
            return {"type": "ok"}
        self.wire_errors += 1
        return {
            "type": "error",
            "error": f"unknown frame type {msg_type!r}",
            "retryable": False,
        }

    def _serve(self, payload: dict[str, Any]) -> dict[str, Any]:
        """Connection-thread half of a serve: validate, enqueue, wait."""
        try:
            request = ServeRequest.from_dict(payload.get("request"))
        except WireSchemaError as exc:
            self.wire_errors += 1
            return self._error_frame(str(exc), None, retryable=False)
        if self._stop.is_set():
            return self._error_frame(
                "worker shutting down", request.request_id, retryable=True
            )
        item = _PendingServe(request)
        try:
            self._queue.put(item, timeout=1.0)
        except queue.Full:
            self.queue_rejects += 1
            return self._error_frame(
                "worker dispatch queue full",
                request.request_id,
                retryable=True,
            )
        while not item.done.wait(timeout=0.5):
            if not self._dispatcher.is_alive():
                # Enqueued after the dispatcher's final drain: answer
                # here rather than hang the connection forever.
                item.resolve(
                    self._error_frame(
                        "worker shutting down",
                        request.request_id,
                        retryable=True,
                    )
                )
        response = item.response
        assert response is not None  # resolve() always sets it
        return response

    def _error_frame(
        self, message: str, request_id: str | None, retryable: bool
    ) -> dict[str, Any]:
        frame: dict[str, Any] = {
            "type": "error",
            "error": message,
            "retryable": retryable,
        }
        if request_id is not None:
            frame["request_id"] = request_id
        return frame

    def stats_payload(self) -> dict[str, Any]:
        latency = self.obs.histogram("span.worker_serve")
        batch_size = self.obs.histogram("worker.batch_size")
        queue_wait = self.obs.histogram("span.worker_queue_wait")
        payload: dict[str, Any] = {
            "type": "stats",
            "worker_id": self.config.worker_id,
            "pid": os.getpid(),
            "served": self.served,
            "errors": self.errors,
            "wire_errors": self.wire_errors,
            "shed": self.server.stats.shed,
            "degraded": self.server.stats.degraded,
            "generation": self._generation,
            "serve_ms": {
                "count": latency.count,
                "mean": latency.mean(),
                "p50": latency.p50,
                "p95": latency.p95,
                "p99": latency.p99,
            },
            "batching": {
                "max_batch": self.config.max_batch,
                "batch_wait_us": self.config.batch_wait_us,
                "queue_depth": self.config.queue_depth,
                "batches": self.batches,
                "queue_rejects": self.queue_rejects,
                "batch_size": {
                    "count": batch_size.count,
                    "mean": batch_size.mean(),
                    "p95": batch_size.p95,
                    "max": batch_size.snapshot()["max"],
                },
                "queue_wait_ms": {
                    "p50": queue_wait.p50,
                    "p95": queue_wait.p95,
                    "p99": queue_wait.p99,
                },
            },
            "drain": {
                "drain_timeout_s": self.config.drain_timeout_s,
                "drained": self.drained,
                "drain_errors": self.drain_errors,
            },
            "segment_bytes": self.index.segment_bytes(),
        }
        if self._tiered:
            assert isinstance(self.index, TieredSegmentedIndex)
            payload["tiered"] = {
                "generation": self.index.generation,
                "segments": len(self.index.segments),
                "read_amplification": self.index.read_amplification(),
                "manifest_reloads": self.manifest_reloads,
            }
            # The mapping report keys off one file; tiered workers map
            # many, so report process-level memory only.
            payload.update(memory_report(None))
        else:
            payload.update(memory_report(self.config.segment_path))
        return payload

    # ---------------------------------------------------------- #

    def serve_connection(self, conn: socket.socket) -> None:
        """Frames until EOF; transport faults end only this connection."""
        max_bytes = self.config.max_frame_bytes
        with contextlib.closing(conn):
            while not self._stop.is_set():
                try:
                    payload = recv_frame(conn, max_bytes)
                except WireError:
                    self.wire_errors += 1
                    return
                except OSError:
                    return
                if payload is None:
                    return
                response = self.handle(payload)
                if response is None:
                    return
                try:
                    send_frame(conn, response, max_bytes)
                except (WireError, OSError):
                    self.wire_errors += 1
                    return
                if self._stop.is_set():
                    return

    def close(self) -> None:
        """Stop the dispatcher, drain stragglers, release the index."""
        self._stop.set()
        with contextlib.suppress(queue.Full):
            self._queue.put_nowait(_SHUTDOWN)
        self._dispatcher.join(timeout=5.0)
        self._drain_shutdown()
        self.index.close()

    def run(self) -> None:
        path = self.config.socket_path
        with contextlib.suppress(OSError):
            os.unlink(path)
        listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            listener.bind(path)
            listener.listen(16)
            listener.settimeout(0.2)
            while not self._stop.is_set():
                try:
                    conn, _ = listener.accept()
                except socket.timeout:
                    continue
                except OSError:
                    break
                thread = threading.Thread(
                    target=self.serve_connection,
                    args=(conn,),
                    daemon=True,
                    name=f"netserve-worker-{self.config.worker_id}-conn",
                )
                thread.start()
        finally:
            listener.close()
            with contextlib.suppress(OSError):
                os.unlink(path)
            self.close()


def run_worker(config: WorkerConfig) -> None:
    """Process entry point: serve until ``shutdown`` or ``SIGTERM``."""
    worker = _Worker(config)

    def _terminate(signum: int, frame: object) -> None:
        worker._stop.set()

    with contextlib.suppress(ValueError):  # non-main thread (tests)
        signal.signal(signal.SIGTERM, _terminate)
        signal.signal(signal.SIGINT, _terminate)
    worker.run()
