"""One serving worker process: a packed segment behind a Unix socket.

A worker is forked by :class:`~repro.netserve.cluster.ServingCluster`
(or run directly via :func:`run_worker`).  It opens the **same** segment
file every sibling opens — ``mmap`` of one file means one set of page
cache pages shared across all of them — wraps it in the standard
:class:`~repro.serving.server.AdServer` pipeline, and answers
length-prefixed JSON frames (:mod:`repro.netserve.wire`) on an
``AF_UNIX`` listener:

* ``{"type": "serve", "request": {...}}`` → ``{"type": "result",
  "result": {...}}`` — the payloads are exactly
  :meth:`ServeRequest.to_dict` / :meth:`ServeResult.to_dict`.
* ``{"type": "stats"}`` → served/error counters, serve-latency
  percentiles from the worker's own :mod:`repro.obs` registry, and the
  :mod:`repro.netserve.memory` report that powers the zero-copy gate.
* ``{"type": "ping"}`` → ``{"type": "pong"}`` (the readiness probe).
* ``{"type": "shutdown"}`` → acked, then the process exits cleanly.

The worker **never dies on a bad request**: schema errors and pipeline
exceptions are answered with typed ``error`` frames and counted; only a
transport-level fault ends that one connection.  The frontend keeps a
pool of long-lived connections, so accept volume is tiny; each accepted
connection is served by a daemon thread.
"""

from __future__ import annotations

import contextlib
import os
import signal
import socket
import threading
from dataclasses import dataclass
from time import perf_counter
from typing import Any

from repro.netserve.memory import memory_report
from repro.netserve.wire import (
    DEFAULT_MAX_FRAME_BYTES,
    WireError,
    recv_frame,
    send_frame,
)
from repro.obs.registry import MetricsRegistry
from repro.segment.format import SegmentFormatError
from repro.segment.packed import DEFAULT_CACHE_BYTES, PackedSegmentIndex
from repro.segment.tiered import (
    TieredConfig,
    TieredSegmentedIndex,
    manifest_fingerprint,
)
from repro.serving.request import ServeRequest, WireSchemaError
from repro.serving.server import AdServer

__all__ = ["WorkerConfig", "run_worker"]


@dataclass(frozen=True, slots=True)
class WorkerConfig:
    """Everything one worker process needs, picklable for fork/spawn.

    Parameters
    ----------
    segment_path:
        The packed segment every worker maps (the shared bytes).
    socket_path:
        This worker's ``AF_UNIX`` listener path.
    worker_id:
        Stable id used in stats and frontend routing.
    slots / reserve_micros:
        Auction shape, passed through to :class:`AdServer`.
    cache_bytes:
        Per-worker decoded-node cache budget.  This is *private* memory
        by design — the gate on shared bytes covers the mapping, not
        the cache.
    default_deadline_ms:
        Server-side budget applied when a request carries none.
    max_frame_bytes:
        Per-frame wire budget.
    """

    segment_path: str
    socket_path: str
    worker_id: int = 0
    slots: int = 4
    reserve_micros: int = 1
    cache_bytes: int = DEFAULT_CACHE_BYTES
    default_deadline_ms: float | None = None
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES


class _Worker:
    """The in-process state behind one worker's accept loop."""

    def __init__(self, config: WorkerConfig) -> None:
        self.config = config
        self.obs = MetricsRegistry()
        # A directory is a tiered index (manifest + segment tiers); a
        # file is the classic single packed segment.
        self._tiered = os.path.isdir(config.segment_path)
        self.index: PackedSegmentIndex | TieredSegmentedIndex
        if self._tiered:
            self.index = self._open_tiered()
            self._manifest_fp = manifest_fingerprint(config.segment_path)
        else:
            self.index = PackedSegmentIndex(
                config.segment_path,
                cache_bytes=config.cache_bytes,
                obs=self.obs,
            )
            self._manifest_fp = None
        self.server = AdServer(
            self.index,
            slots=config.slots,
            reserve_micros=config.reserve_micros,
            default_deadline_ms=config.default_deadline_ms,
            obs=self.obs,
        )
        self.served = 0
        self.errors = 0
        self.wire_errors = 0
        self.manifest_reloads = 0
        self._lock = threading.Lock()
        self._stop = threading.Event()

    # ---------------------------------------------------------- #

    def _open_tiered(self) -> TieredSegmentedIndex:
        return TieredSegmentedIndex(
            self.config.segment_path,
            config=TieredConfig(cache_bytes=self.config.cache_bytes),
            obs=self.obs,
            read_only=True,
        )

    def _maybe_reload(self) -> None:
        """Pick up a manifest swap between requests (tiered mode only).

        The atomic rename commit means the fingerprint moves exactly
        when a new generation lands; a reload that races a writer's
        post-commit victim unlink fails to open and simply retries on
        the next request — the old generation keeps serving meanwhile.
        Caller holds ``self._lock``.
        """
        if not self._tiered:
            return
        fingerprint = manifest_fingerprint(self.config.segment_path)
        if fingerprint is None or fingerprint == self._manifest_fp:
            return
        try:
            fresh = self._open_tiered()
        except (OSError, SegmentFormatError):
            return
        old = self.index
        self.index = fresh
        self.server.index = fresh
        self._manifest_fp = fingerprint
        self.manifest_reloads += 1
        old.close()

    def handle(self, payload: dict[str, Any]) -> dict[str, Any] | None:
        """One request frame → one response payload (``None`` = exit)."""
        msg_type = payload.get("type")
        if msg_type == "serve":
            return self._serve(payload)
        if msg_type == "ping":
            return {"type": "pong", "worker_id": self.config.worker_id}
        if msg_type == "stats":
            return self.stats_payload()
        if msg_type == "shutdown":
            self._stop.set()
            return {"type": "ok"}
        self.wire_errors += 1
        return {
            "type": "error",
            "error": f"unknown frame type {msg_type!r}",
            "retryable": False,
        }

    def _serve(self, payload: dict[str, Any]) -> dict[str, Any]:
        request_id = None
        started = perf_counter()
        try:
            request = ServeRequest.from_dict(payload.get("request"))
            request_id = request.request_id
            with self._lock:
                self._maybe_reload()
                result = self.server.serve(request)
        except WireSchemaError as exc:
            self.wire_errors += 1
            return self._error_frame(str(exc), request_id, retryable=False)
        except Exception as exc:  # noqa: BLE001 — the worker never dies
            self.errors += 1
            return self._error_frame(
                f"{type(exc).__name__}: {exc}", request_id, retryable=True
            )
        elapsed_ms = (perf_counter() - started) * 1e3
        self.obs.histogram("span.worker_serve").observe(elapsed_ms)
        self.served += 1
        response: dict[str, Any] = {
            "type": "result",
            "result": result.to_dict(),
        }
        if request_id is not None:
            response["request_id"] = request_id
        return response

    def _error_frame(
        self, message: str, request_id: str | None, retryable: bool
    ) -> dict[str, Any]:
        frame: dict[str, Any] = {
            "type": "error",
            "error": message,
            "retryable": retryable,
        }
        if request_id is not None:
            frame["request_id"] = request_id
        return frame

    def stats_payload(self) -> dict[str, Any]:
        latency = self.obs.histogram("span.worker_serve")
        payload: dict[str, Any] = {
            "type": "stats",
            "worker_id": self.config.worker_id,
            "pid": os.getpid(),
            "served": self.served,
            "errors": self.errors,
            "wire_errors": self.wire_errors,
            "shed": self.server.stats.shed,
            "degraded": self.server.stats.degraded,
            "serve_ms": {
                "count": latency.count,
                "mean": latency.mean(),
                "p50": latency.p50,
                "p95": latency.p95,
                "p99": latency.p99,
            },
            "segment_bytes": self.index.segment_bytes(),
        }
        if self._tiered:
            assert isinstance(self.index, TieredSegmentedIndex)
            payload["tiered"] = {
                "generation": self.index.generation,
                "segments": len(self.index.segments),
                "read_amplification": self.index.read_amplification(),
                "manifest_reloads": self.manifest_reloads,
            }
            # The mapping report keys off one file; tiered workers map
            # many, so report process-level memory only.
            payload.update(memory_report(None))
        else:
            payload.update(memory_report(self.config.segment_path))
        return payload

    # ---------------------------------------------------------- #

    def serve_connection(self, conn: socket.socket) -> None:
        """Frames until EOF; transport faults end only this connection."""
        max_bytes = self.config.max_frame_bytes
        with contextlib.closing(conn):
            while not self._stop.is_set():
                try:
                    payload = recv_frame(conn, max_bytes)
                except WireError:
                    self.wire_errors += 1
                    return
                except OSError:
                    return
                if payload is None:
                    return
                response = self.handle(payload)
                if response is None:
                    return
                try:
                    send_frame(conn, response, max_bytes)
                except (WireError, OSError):
                    self.wire_errors += 1
                    return
                if self._stop.is_set():
                    return

    def run(self) -> None:
        path = self.config.socket_path
        with contextlib.suppress(OSError):
            os.unlink(path)
        listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            listener.bind(path)
            listener.listen(16)
            listener.settimeout(0.2)
            while not self._stop.is_set():
                try:
                    conn, _ = listener.accept()
                except socket.timeout:
                    continue
                except OSError:
                    break
                thread = threading.Thread(
                    target=self.serve_connection,
                    args=(conn,),
                    daemon=True,
                    name=f"netserve-worker-{self.config.worker_id}-conn",
                )
                thread.start()
        finally:
            listener.close()
            with contextlib.suppress(OSError):
                os.unlink(path)
            self.index.close()


def run_worker(config: WorkerConfig) -> None:
    """Process entry point: serve until ``shutdown`` or ``SIGTERM``."""
    worker = _Worker(config)

    def _terminate(signum: int, frame: object) -> None:
        worker._stop.set()

    with contextlib.suppress(ValueError):  # non-main thread (tests)
        signal.signal(signal.SIGTERM, _terminate)
        signal.signal(signal.SIGINT, _terminate)
    worker.run()
