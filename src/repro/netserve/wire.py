"""Length-prefixed JSON framing — the serving tier's wire protocol.

One frame is a 4-byte big-endian unsigned length followed by exactly
that many bytes of compact UTF-8 JSON encoding a single object.  The
object's ``"type"`` key routes it: ``serve``/``stats``/``ping``/
``shutdown`` travel frontend→worker (and client→frontend), ``result``/
``stats``/``pong``/``error`` travel back.  A ``serve`` frame's
``"request"`` value is exactly :meth:`~repro.serving.request
.ServeRequest.to_dict`; a ``result`` frame's ``"result"`` value is
exactly :meth:`~repro.serving.server.ServeResult.to_dict` — the
dataclass schema *is* the wire format.  A worker ``result`` frame also
carries a ``"generation"`` int: the serving data generation (tiered
manifest generation, or 0 for a frozen packed segment) that the
frontend's result cache keys its invalidation on.

Fault taxonomy (every subclass of :class:`WireError`):

* :class:`FrameTooLarge` — the length prefix exceeds the frame budget.
  Read **before** allocating, so an adversarial prefix cannot balloon
  memory.
* :class:`TornFrame` — the peer disconnected mid-frame (a partial
  header or a payload shorter than its prefix promised).  Clean EOF
  *between* frames is not an error: readers return ``None``.
* :class:`FrameFormatError` — the payload is not a JSON object.

Both a blocking-socket codec (workers, the sync client) and an asyncio
codec (the frontend) are provided, plus raw-bytes variants the frontend
uses to relay frames without re-encoding them.
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct
from typing import Any

__all__ = [
    "DEFAULT_MAX_FRAME_BYTES",
    "FrameFormatError",
    "FrameTooLarge",
    "TornFrame",
    "WireError",
    "decode_payload",
    "encode_frame",
    "read_raw_frame",
    "recv_frame",
    "recv_raw_frame",
    "send_frame",
    "write_raw_frame",
]

#: 4-byte big-endian unsigned frame length.
HEADER = struct.Struct(">I")

#: Default per-frame size budget.  Generous for ad slates (a full
#: 4-slot result is a few KiB) while bounding what a corrupt or
#: malicious length prefix can make a reader allocate.
DEFAULT_MAX_FRAME_BYTES = 1 << 20


class WireError(Exception):
    """Base class for every framing fault."""


class FrameTooLarge(WireError):
    """A length prefix exceeds the configured frame budget."""


class TornFrame(WireError):
    """The connection ended mid-frame (partial header or payload)."""


class FrameFormatError(WireError):
    """A complete frame's payload is not a JSON object."""


def encode_frame(
    payload: dict[str, Any],
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
) -> bytes:
    """One header+payload frame for ``payload`` (compact JSON)."""
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if len(body) > max_frame_bytes:
        raise FrameTooLarge(
            f"frame of {len(body)} bytes exceeds budget {max_frame_bytes}"
        )
    return HEADER.pack(len(body)) + body


def decode_payload(body: bytes) -> dict[str, Any]:
    """Decode one frame body; the payload must be a JSON object."""
    try:
        payload = json.loads(body)
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise FrameFormatError(f"frame is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise FrameFormatError("frame payload must be a JSON object")
    return payload


def _check_length(length: int, max_frame_bytes: int) -> None:
    if length > max_frame_bytes:
        raise FrameTooLarge(
            f"frame of {length} bytes exceeds budget {max_frame_bytes}"
        )


# ------------------------------------------------------------------ #
# Blocking-socket codec (workers, the sync client)


def _recv_exact(sock: socket.socket, length: int) -> bytes | None:
    """Exactly ``length`` bytes, ``None`` on EOF before the first byte,
    :class:`TornFrame` on EOF after it."""
    chunks: list[bytes] = []
    remaining = length
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if not chunks:
                return None
            raise TornFrame(
                f"peer closed mid-read: got {length - remaining} "
                f"of {length} bytes"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks) if len(chunks) != 1 else chunks[0]


def recv_raw_frame(
    sock: socket.socket,
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
) -> bytes | None:
    """One frame body (undecoded), ``None`` on clean EOF between frames."""
    header = _recv_exact(sock, HEADER.size)
    if header is None:
        return None
    (length,) = HEADER.unpack(header)
    _check_length(length, max_frame_bytes)
    if length == 0:
        return b""
    body = _recv_exact(sock, length)
    if body is None:
        raise TornFrame(
            f"peer closed after header: got 0 of {length} payload bytes"
        )
    return body


def recv_frame(
    sock: socket.socket,
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
) -> dict[str, Any] | None:
    """One decoded payload, ``None`` on clean EOF between frames."""
    body = recv_raw_frame(sock, max_frame_bytes)
    if body is None:
        return None
    return decode_payload(body)


def send_frame(
    sock: socket.socket,
    payload: dict[str, Any],
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
) -> None:
    """Encode and send one frame."""
    sock.sendall(encode_frame(payload, max_frame_bytes))


# ------------------------------------------------------------------ #
# Asyncio codec (the frontend)


async def read_raw_frame(
    reader: asyncio.StreamReader,
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
) -> bytes | None:
    """One full frame **including its header** (relay-ready bytes),
    ``None`` on clean EOF between frames."""
    try:
        header = await reader.readexactly(HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise TornFrame(
            f"peer closed mid-header: got {len(exc.partial)} "
            f"of {HEADER.size} bytes"
        ) from exc
    (length,) = HEADER.unpack(header)
    _check_length(length, max_frame_bytes)
    if length == 0:
        return header
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise TornFrame(
            f"peer closed mid-frame: got {len(exc.partial)} "
            f"of {length} payload bytes"
        ) from exc
    return header + body


def write_raw_frame(writer: asyncio.StreamWriter, frame: bytes) -> None:
    """Queue one already-framed byte string (caller drains)."""
    writer.write(frame)
