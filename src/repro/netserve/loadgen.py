"""Closed-loop load generator + the SLO report it emits.

``concurrency`` client connections each keep exactly one request in
flight (closed-loop: the next request leaves when the previous answer
lands), for ``duration_s`` wall seconds, cycling a fixed query list.
Latency lands in a :mod:`repro.obs` histogram and every response is
classified — ``ok`` (served, undegraded), ``shed`` (admission refused
it), ``degraded`` (served but flagged), ``errors`` (typed error frames
and transport faults).  Errors are further bucketed into ``timeouts``
(no reply inside ``timeout_s`` — a *hang*, the one thing a resilient
cluster must never do), ``connection_errors`` (refused/reset/torn
transport) and ``error_frames`` (the server answered, with an error);
the chaos harness gates on the first bucket staying at zero.

The report is the serving tier's SLO statement: sustained QPS, latency
percentiles from the registry histogram, shed rate, the fraction of OK
answers inside the request deadline, and — from frontend ``stats``
probes taken before and after the run — per-worker QPS and the memory
split (:mod:`repro.netserve.memory`) the zero-copy gate reads.

Two traffic modes pick the next query per client:

* **roundrobin** (default) — clients interleave across the pool, every
  query equally hot; the PR 7 behaviour, unchanged.
* **zipf** (``zipf_s`` set) — ranks drawn from
  :class:`~repro.datagen.zipf.ZipfSampler`, making the pool
  duplicate-heavy the way real sponsored-search traffic is.  The report
  then carries the realized ``unique_query_fraction`` plus the
  frontend's coalescing/cache-hit deltas, so singleflight and cache
  effectiveness are measurable numbers, not vibes.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
from dataclasses import dataclass
from time import perf_counter
from typing import Any, Sequence

from repro.core.queries import Query
from repro.datagen.zipf import ZipfSampler
from repro.netserve.client import ServeClient
from repro.netserve.wire import (
    DEFAULT_MAX_FRAME_BYTES,
    HEADER,
    WireError,
    encode_frame,
    read_raw_frame,
)
from repro.obs.registry import MetricsRegistry
from repro.resilience.admission import Priority
from repro.serving.request import ServeRequest

__all__ = ["LoadGenConfig", "build_report", "run_loadgen"]

#: Floor for rate denominators.  A degenerate run (instant crash, zero
#: connections accepted, a clock that barely moved) can report an
#: ``elapsed_s`` of microseconds; dividing by it would print absurd
#: QPS figures — and a hard zero would divide-by-zero.  Rates are
#: computed against ``max(elapsed_s, _MIN_ELAPSED_S)`` and the clamp is
#: called out in ``degenerate_reasons``.
_MIN_ELAPSED_S = 1e-3

#: Shed reasons (vs other degradations) for response classification.
_SHED_REASONS = frozenset({"shed_capacity", "shed_queue"})

#: Exponential-ish latency buckets, 0.25 ms – 4 s.
_LATENCY_BUCKETS_MS = (
    0.25, 0.5, 1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0, 24.0, 32.0,
    48.0, 64.0, 96.0, 128.0, 192.0, 256.0, 384.0, 512.0, 768.0,
    1024.0, 2048.0, 4096.0,
)


@dataclass(frozen=True, slots=True)
class LoadGenConfig:
    """One load-generation run.

    Parameters
    ----------
    host / port:
        The frontend to drive.
    duration_s:
        Wall-clock run length.
    concurrency:
        Closed-loop client connections (in-flight requests).
    deadline_ms:
        Per-request budget stamped into every ``ServeRequest`` (and the
        bar for the report's ``within_deadline`` fraction).
    priority:
        Admission class stamped into every request.
    user_ids:
        When positive, requests carry ``u0..u{n-1}`` user ids
        round-robin (exercises the frequency-cap path end to end).
    timeout_s:
        Client-side budget for one response before the connection is
        counted failed and reopened.
    zipf_s:
        When set, queries are drawn Zipf(s)-distributed over the pool
        (rank 1 hottest) instead of round-robin — the duplicate-heavy
        mode that makes coalescing/cache hit rates measurable.
    zipf_seed:
        Base seed for the per-client Zipf streams (deterministic runs).
    """

    host: str
    port: int
    duration_s: float = 5.0
    concurrency: int = 8
    deadline_ms: float | None = None
    priority: Priority = Priority.NORMAL
    user_ids: int = 0
    timeout_s: float = 30.0
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES
    zipf_s: float | None = None
    zipf_seed: int = 0


def _encode_requests(
    config: LoadGenConfig, queries: Sequence[Query]
) -> list[bytes]:
    """Every request frame, pre-encoded once — the generator's own CPU
    cost per request is one dict decode, not an encode+decode."""
    frames = []
    for i, query in enumerate(queries):
        request = ServeRequest(
            query=query,
            user_id=f"u{i % config.user_ids}" if config.user_ids else None,
            priority=config.priority,
            deadline_ms=config.deadline_ms,
        )
        frames.append(
            encode_frame(
                {"type": "serve", "request": request.to_dict()},
                config.max_frame_bytes,
            )
        )
    return frames


async def _client_loop(
    client_id: int,
    config: LoadGenConfig,
    frames: list[bytes],
    end_at: float,
    registry: MetricsRegistry,
    counts: dict[str, int],
    used: set[int],
) -> None:
    latency = registry.histogram(
        "loadgen.latency_ms", bounds=_LATENCY_BUCKETS_MS
    )
    if config.zipf_s is not None:
        sampler = ZipfSampler(
            len(frames),
            exponent=config.zipf_s,
            seed=config.zipf_seed * 10_007 + client_id,
        )

        def next_index() -> int:
            return sampler.sample() - 1  # rank 1 (hottest) → frame 0

    else:
        cursor = [client_id]  # interleave clients across the query list

        def next_index() -> int:
            i = cursor[0]
            cursor[0] = i + config.concurrency
            return i % len(frames)

    while perf_counter() < end_at:
        try:
            reader, writer = await asyncio.open_connection(
                config.host, config.port
            )
        except OSError:
            counts["errors"] += 1
            counts["connection_errors"] += 1
            await asyncio.sleep(0.05)
            continue
        try:
            while perf_counter() < end_at:
                frame_index = next_index()
                frame = frames[frame_index]
                used.add(frame_index)
                counts["issued"] += 1
                started = perf_counter()
                writer.write(frame)
                await writer.drain()
                raw = await asyncio.wait_for(
                    read_raw_frame(reader, config.max_frame_bytes),
                    timeout=config.timeout_s,
                )
                elapsed_ms = (perf_counter() - started) * 1e3
                if raw is None:
                    counts["errors"] += 1
                    counts["connection_errors"] += 1
                    break
                latency.observe(elapsed_ms)
                counts["sent"] += 1
                reply = json.loads(raw[HEADER.size:])
                if reply.get("type") != "result":
                    counts["errors"] += 1
                    counts["error_frames"] += 1
                    continue
                reason = reply["result"].get("degraded_reason", "none")
                if reason == "none":
                    counts["ok"] += 1
                    if (
                        config.deadline_ms is None
                        or elapsed_ms <= config.deadline_ms
                    ):
                        counts["within_deadline"] += 1
                elif reason in _SHED_REASONS:
                    counts["shed"] += 1
                else:
                    counts["degraded"] += 1
        except (asyncio.TimeoutError, TimeoutError):
            # A hang: the frame went out and nothing came back inside
            # ``timeout_s``.  The chaos gate keys on this bucket — a
            # resilient cluster may *error* requests during a kill, but
            # it must never leave a client hanging.
            counts["errors"] += 1
            counts["timeouts"] += 1
        except (WireError, OSError, ConnectionError):
            counts["errors"] += 1
            counts["connection_errors"] += 1
        except json.JSONDecodeError:
            counts["errors"] += 1
            counts["error_frames"] += 1
        finally:
            with contextlib.suppress(OSError):
                writer.close()
                await writer.wait_closed()


async def _drive(
    config: LoadGenConfig,
    frames: list[bytes],
    registry: MetricsRegistry,
    counts: dict[str, int],
    used: set[int],
) -> float:
    started = perf_counter()
    end_at = started + config.duration_s
    await asyncio.gather(
        *(
            _client_loop(i, config, frames, end_at, registry, counts, used)
            for i in range(config.concurrency)
        )
    )
    return perf_counter() - started


def _worker_rows(
    before: dict[str, Any], after: dict[str, Any], elapsed_s: float
) -> list[dict[str, Any]]:
    """Per-worker SLO rows from the two stats probes' served deltas."""
    safe_elapsed = max(elapsed_s, _MIN_ELAPSED_S)
    served_before = {
        w.get("worker_id"): w.get("served", 0)
        for w in before.get("workers", [])
    }
    rows = []
    for worker in after.get("workers", []):
        if worker.get("unreachable"):
            rows.append(dict(worker))
            continue
        worker_id = worker.get("worker_id")
        delta = worker.get("served", 0) - served_before.get(worker_id, 0)
        rows.append(
            {
                "worker_id": worker_id,
                "pid": worker.get("pid"),
                "served": delta,
                "qps": delta / safe_elapsed,
                "errors": worker.get("errors"),
                "wire_errors": worker.get("wire_errors"),
                "serve_ms": worker.get("serve_ms"),
                "segment_bytes": worker.get("segment_bytes"),
                "rss_bytes": worker.get("rss_bytes"),
                "private_bytes": worker.get("private_bytes"),
                "segment_mapping": worker.get("segment_mapping"),
            }
        )
    return rows


def _frontend_counter_delta(
    stats_before: dict[str, Any], stats_after: dict[str, Any], name: str
) -> int:
    """Delta of one frontend counter across the run's two stats probes."""

    def _value(stats: dict[str, Any]) -> int:
        frontend = stats.get("frontend")
        if not isinstance(frontend, dict):
            return 0
        counters = frontend.get("counters")
        if not isinstance(counters, dict):
            return 0
        value = counters.get(name, 0)
        return value if isinstance(value, int) else 0

    return _value(stats_after) - _value(stats_before)


def build_report(
    config: LoadGenConfig,
    num_queries: int,
    counts: dict[str, int],
    elapsed_s: float,
    latency: Any,
    stats_before: dict[str, Any],
    stats_after: dict[str, Any],
    traffic: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Assemble the SLO report from raw run artifacts — pure, so the
    degenerate-run arithmetic is unit-testable without a live cluster.

    A **degenerate** run is one whose headline numbers don't mean what
    a reader would assume: nothing completed, nothing succeeded, or the
    clock barely moved (rates are then computed against a
    :data:`_MIN_ELAPSED_S` floor rather than the raw denominator).
    Rather than silently printing ``0.0`` QPS or ``None`` SLO fields,
    the report says so explicitly in ``degenerate`` /
    ``degenerate_reasons`` — CI gates can (and do) key off it.
    """
    completed = counts["ok"] + counts["shed"] + counts["degraded"]
    safe_elapsed = max(elapsed_s, _MIN_ELAPSED_S)
    reasons: list[str] = []
    if elapsed_s < _MIN_ELAPSED_S:
        reasons.append("elapsed_clamped")
    if completed == 0:
        reasons.append("no_completed_responses")
    elif counts["ok"] == 0:
        reasons.append("no_ok_responses")
    if counts["errors"] > 0 and counts["sent"] == 0:
        reasons.append("all_errors")
    return {
        "config": {
            "duration_s": config.duration_s,
            "concurrency": config.concurrency,
            "deadline_ms": config.deadline_ms,
            "priority": config.priority.name.lower(),
            "num_queries": num_queries,
            "user_ids": config.user_ids,
            "zipf_s": config.zipf_s,
        },
        "traffic": traffic,
        "coalescing": {
            "coalesced": _frontend_counter_delta(
                stats_before, stats_after, "frontend.coalesced"
            ),
            "cache_hits": _frontend_counter_delta(
                stats_before, stats_after, "frontend.cache_hits"
            ),
            "cache_misses": _frontend_counter_delta(
                stats_before, stats_after, "frontend.cache_misses"
            ),
            "cache_invalidations": _frontend_counter_delta(
                stats_before, stats_after, "frontend.cache_invalidations"
            ),
        },
        "elapsed_s": elapsed_s,
        "sent": counts["sent"],
        "ok": counts["ok"],
        "shed": counts["shed"],
        "degraded": counts["degraded"],
        "errors": counts["errors"],
        "timeouts": counts.get("timeouts", 0),
        "connection_errors": counts.get("connection_errors", 0),
        "error_frames": counts.get("error_frames", 0),
        "qps": completed / safe_elapsed,
        "shed_rate": counts["shed"] / completed if completed else 0.0,
        "within_deadline": (
            counts["within_deadline"] / counts["ok"] if counts["ok"] else None
        ),
        "degenerate": bool(reasons),
        "degenerate_reasons": reasons,
        "latency_ms": {
            "count": latency.count,
            "mean": latency.mean(),
            "p50": latency.p50,
            "p95": latency.p95,
            "p99": latency.p99,
            "max": latency.snapshot()["max"],
        },
        "frontend": stats_after.get("frontend"),
        "workers": _worker_rows(stats_before, stats_after, elapsed_s),
    }


def run_loadgen(
    config: LoadGenConfig,
    queries: Sequence[Query],
    obs: MetricsRegistry | None = None,
) -> dict[str, Any]:
    """Drive the frontend closed-loop; returns the SLO report dict."""
    if not queries:
        raise ValueError("need at least one query")
    frames = _encode_requests(config, queries)
    registry = obs if obs is not None else MetricsRegistry()
    counts = {
        "sent": 0,
        "issued": 0,
        "ok": 0,
        "shed": 0,
        "degraded": 0,
        "errors": 0,
        "timeouts": 0,
        "connection_errors": 0,
        "error_frames": 0,
        "within_deadline": 0,
    }
    used: set[int] = set()
    with ServeClient(config.host, config.port, config.timeout_s) as probe:
        stats_before = probe.stats()
    elapsed_s = asyncio.run(_drive(config, frames, registry, counts, used))
    with ServeClient(config.host, config.port, config.timeout_s) as probe:
        stats_after = probe.stats()
    latency = registry.histogram(
        "loadgen.latency_ms", bounds=_LATENCY_BUCKETS_MS
    )
    traffic = {
        "mode": "zipf" if config.zipf_s is not None else "roundrobin",
        "zipf_s": config.zipf_s,
        "issued": counts["issued"],
        "unique_queries": len(used),
        "unique_query_fraction": (
            len(used) / counts["issued"] if counts["issued"] else None
        ),
    }
    return build_report(
        config,
        len(queries),
        counts,
        elapsed_s,
        latency,
        stats_before,
        stats_after,
        traffic=traffic,
    )
