"""The network-tier benchmark behind ``BENCH_PR7.json``.

One run packs a generated corpus into a segment, then boots a
:class:`~repro.netserve.cluster.ServingCluster` once per worker count
(the frontend in its **own process**, so the generator's client loop,
the frontend's relay loop, and the workers never share a GIL) and
drives it closed-loop with the long broad-match queries from
:func:`~repro.perf.bench.make_long_queries` — the regime where worker
CPU (subset probes over the packed segment) dominates relay cost, i.e.
the one where adding workers is supposed to pay.

Three gates, all recorded in the output document:

* **scaling** — 4-worker sustained QPS ≥ 2.5× 1-worker QPS.  This
  floor only makes physical sense with at least as many cores as
  workers, so the gate is **core-aware**: on a host whose CPU affinity
  mask is smaller than the peak worker count, the recorded floor drops
  to the no-collapse bar (multi-worker QPS ≥ 0.8× single-worker — the
  tier must not get *slower* when workers are added) and the document
  carries ``available_cores`` + ``cpu_feasible`` so a reader can see
  which bar was applied;
* **latency** — p99 within the request deadline on every run;
* **zero-copy** — in the multi-worker run, every worker's *private*
  resident bytes attributable to its segment mapping stay ≤ 25% of the
  packed size (shared page-cache pages are excluded by the kernel's
  smaps accounting — see :mod:`repro.netserve.memory`).  Interpreter
  heap is deliberately out of scope: the claim is that the *segment*
  is mapped once, not that forked CPython is free.

Run it as a module::

    PYTHONPATH=src python -m repro.netserve.bench --out BENCH_PR7.json
"""

from __future__ import annotations

import argparse
import json
import os
import tempfile
from pathlib import Path
from typing import Any

from repro.core.wordset_index import WordSetIndex
from repro.datagen.corpus import CorpusConfig, generate_corpus
from repro.datagen.querygen import QueryConfig, generate_workload
from repro.netserve.cluster import ClusterConfig, ServingCluster
from repro.netserve.loadgen import LoadGenConfig, run_loadgen
from repro.perf.bench import make_long_queries
from repro.segment.builder import SegmentBuilder

__all__ = ["available_cores", "run_netserve_bench"]

#: The scaling bar applied when the host has fewer cores than workers:
#: parallel speedup is physically unavailable, but adding workers must
#: still not collapse throughput.
NO_COLLAPSE_FLOOR = 0.8


def available_cores() -> int:
    """Cores this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover — non-Linux
        return os.cpu_count() or 1


def _measure(
    segment_path: Path,
    num_workers: int,
    queries: list[Any],
    duration_s: float,
    concurrency: int,
    deadline_ms: float,
    conns_per_worker: int,
) -> dict[str, Any]:
    config = ClusterConfig(
        segment_path=str(segment_path),
        num_workers=num_workers,
        conns_per_worker=conns_per_worker,
        frontend_process=True,
        default_deadline_ms=deadline_ms,
    )
    with ServingCluster(config) as cluster:
        host, port = cluster.address
        # Warm page cache, node caches, and connection pools before the
        # measured window.
        run_loadgen(
            LoadGenConfig(
                host=host,
                port=port,
                duration_s=min(1.0, duration_s / 4),
                concurrency=concurrency,
                deadline_ms=deadline_ms,
            ),
            queries,
        )
        report = run_loadgen(
            LoadGenConfig(
                host=host,
                port=port,
                duration_s=duration_s,
                concurrency=concurrency,
                deadline_ms=deadline_ms,
            ),
            queries,
        )
    report["num_workers"] = num_workers
    return report


def _zero_copy_rows(
    report: dict[str, Any], segment_bytes: int
) -> list[dict[str, Any]]:
    """Per-worker segment-mapping residency vs the 25% budget."""
    budget = 0.25 * segment_bytes
    rows = []
    for worker in report.get("workers", []):
        mapping = worker.get("segment_mapping") or {}
        private = mapping.get("private")
        rows.append(
            {
                "worker_id": worker.get("worker_id"),
                "segment_private_bytes": private,
                "segment_shared_bytes": mapping.get("shared"),
                "segment_pss_bytes": mapping.get("pss"),
                "budget_bytes": budget,
                "within_budget": (
                    None if private is None else private <= budget
                ),
            }
        )
    return rows


def run_netserve_bench(
    num_ads: int = 30_000,
    num_queries: int = 64,
    query_len: int = 12,
    duration_s: float = 4.0,
    concurrency: int = 16,
    deadline_ms: float = 250.0,
    conns_per_worker: int = 4,
    worker_counts: tuple[int, ...] = (1, 4),
    scaling_floor: float = 2.5,
    seed: int = 0,
    segment_path: str | Path | None = None,
    enforce_gates: bool = True,
) -> dict[str, Any]:
    """Execute the scaling comparison; returns the results document."""
    generated = generate_corpus(CorpusConfig(num_ads=num_ads, seed=seed))
    workload = generate_workload(
        generated,
        QueryConfig(
            num_distinct=max(200, num_queries),
            total_frequency=10 * max(200, num_queries),
            seed=seed + 1,
        ),
    )
    queries = make_long_queries(
        generated, workload, num_queries, query_len, seed=seed + 2
    )

    index = WordSetIndex.from_corpus(generated.corpus)
    own_tempdir = segment_path is None
    tempdir = None
    if own_tempdir:
        tempdir = tempfile.TemporaryDirectory(prefix="repro-netserve-bench-")
        segment_path = Path(tempdir.name) / "bench.seg"
    segment_path = Path(segment_path)
    SegmentBuilder(index).write(segment_path)
    segment_bytes = segment_path.stat().st_size

    try:
        runs = {
            str(n): _measure(
                segment_path,
                n,
                queries,
                duration_s,
                concurrency,
                deadline_ms,
                conns_per_worker,
            )
            for n in worker_counts
        }
    finally:
        if tempdir is not None:
            tempdir.cleanup()

    base = runs[str(worker_counts[0])]
    peak = runs[str(worker_counts[-1])]
    speedup = peak["qps"] / base["qps"] if base["qps"] else 0.0
    zero_copy = _zero_copy_rows(peak, segment_bytes)
    cores = available_cores()
    cpu_feasible = cores >= worker_counts[-1]
    effective_floor = scaling_floor if cpu_feasible else NO_COLLAPSE_FLOOR
    gates = {
        "scaling": {
            "floor": scaling_floor,
            "available_cores": cores,
            "cpu_feasible": cpu_feasible,
            "effective_floor": effective_floor,
            "speedup": speedup,
            "passed": speedup >= effective_floor,
        },
        "latency": {
            "deadline_ms": deadline_ms,
            "p99_ms": {
                name: run["latency_ms"]["p99"] for name, run in runs.items()
            },
            "passed": all(
                run["latency_ms"]["p99"] <= deadline_ms
                for run in runs.values()
            ),
        },
        "zero_copy": {
            "budget_fraction": 0.25,
            "segment_bytes": segment_bytes,
            "workers": zero_copy,
            "passed": all(
                row["within_budget"] is not False for row in zero_copy
            ),
        },
        "errors": {
            "counts": {
                name: run["errors"] for name, run in runs.items()
            },
            "passed": all(run["errors"] == 0 for run in runs.values()),
        },
    }
    document = {
        "bench": "netserve",
        "config": {
            "num_ads": num_ads,
            "num_queries": num_queries,
            "query_len": query_len,
            "duration_s": duration_s,
            "concurrency": concurrency,
            "deadline_ms": deadline_ms,
            "conns_per_worker": conns_per_worker,
            "worker_counts": list(worker_counts),
            "seed": seed,
        },
        "segment_bytes": segment_bytes,
        "runs": runs,
        "speedup": speedup,
        "gates": gates,
    }
    if enforce_gates:
        failed = [name for name, gate in gates.items() if not gate["passed"]]
        if failed:
            raise AssertionError(
                f"netserve bench gates failed: {', '.join(failed)}\n"
                + json.dumps(gates, indent=2)
            )
    return document


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--num-ads", type=int, default=30_000)
    parser.add_argument("--num-queries", type=int, default=64)
    parser.add_argument("--query-len", type=int, default=12)
    parser.add_argument("--duration-s", type=float, default=4.0)
    parser.add_argument("--concurrency", type=int, default=16)
    parser.add_argument("--deadline-ms", type=float, default=250.0)
    parser.add_argument(
        "--workers",
        type=int,
        nargs="+",
        default=[1, 4],
        help="worker counts to compare (first is the baseline)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--no-gates", action="store_true")
    parser.add_argument("--out", type=Path, default=None)
    args = parser.parse_args(argv)
    document = run_netserve_bench(
        num_ads=args.num_ads,
        num_queries=args.num_queries,
        query_len=args.query_len,
        duration_s=args.duration_s,
        concurrency=args.concurrency,
        deadline_ms=args.deadline_ms,
        worker_counts=tuple(args.workers),
        seed=args.seed,
        enforce_gates=not args.no_gates,
    )
    text = json.dumps(document, indent=2, sort_keys=True)
    if args.out is not None:
        args.out.write_text(text + "\n")
    print(text)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
