"""The network-tier benchmarks behind ``BENCH_PR7.json`` / ``BENCH_PR9.json``.

One run packs a generated corpus into a segment, then boots a
:class:`~repro.netserve.cluster.ServingCluster` once per worker count
(the frontend in its **own process**, so the generator's client loop,
the frontend's relay loop, and the workers never share a GIL) and
drives it closed-loop with the long broad-match queries from
:func:`~repro.perf.bench.make_long_queries` — the regime where worker
CPU (subset probes over the packed segment) dominates relay cost, i.e.
the one where adding workers is supposed to pay.

Three gates, all recorded in the output document:

* **scaling** — 4-worker sustained QPS ≥ 2.5× 1-worker QPS.  This
  floor only makes physical sense with at least as many cores as
  workers, so the gate is **core-aware**: on a host whose CPU affinity
  mask is smaller than the peak worker count, the recorded floor drops
  to the no-collapse bar (multi-worker QPS ≥ 0.8× single-worker — the
  tier must not get *slower* when workers are added) and the document
  carries ``available_cores`` + ``cpu_feasible`` so a reader can see
  which bar was applied;
* **latency** — p99 within the request deadline on every run;
* **zero-copy** — in the multi-worker run, every worker's *private*
  resident bytes attributable to its segment mapping stay ≤ 25% of the
  packed size (shared page-cache pages are excluded by the kernel's
  smaps accounting — see :mod:`repro.netserve.memory`).  Interpreter
  heap is deliberately out of scope: the claim is that the *segment*
  is mapped once, not that forked CPython is free.

Run it as a module::

    PYTHONPATH=src python -m repro.netserve.bench --out BENCH_PR7.json

``--mode batched`` runs the **PR 9** experiment instead: the same
cluster topology twice on a duplicate-heavy Zipf workload — once in
the unbatched PR 7 configuration (``max_batch=1``, no coalescing, no
cache) and once as the batched pipeline (worker micro-batching +
frontend singleflight + generation-aware result cache) — plus an
equivalence sweep proving slates stay bit-identical with each feature
toggled on individually.  Gates: pipeline QPS ≥ 2× baseline at
concurrency ≥ 32 (core-aware fallback floor when the host can't
physically parallelize, recorded as ``cpu_feasible``), p99 ≤ deadline
on both runs, zero errors, zero equivalence mismatches::

    PYTHONPATH=src python -m repro.netserve.bench --mode batched \
        --out BENCH_PR9.json
"""

from __future__ import annotations

import argparse
import json
import os
import tempfile
from pathlib import Path
from typing import Any

from repro.core.wordset_index import WordSetIndex
from repro.datagen.corpus import CorpusConfig, generate_corpus
from repro.datagen.querygen import QueryConfig, generate_workload
from repro.netserve.client import ServeClient
from repro.netserve.cluster import ClusterConfig, ServingCluster
from repro.netserve.loadgen import LoadGenConfig, run_loadgen
from repro.perf.bench import make_long_queries
from repro.segment.builder import SegmentBuilder
from repro.segment.packed import PackedSegmentIndex
from repro.serving.request import ServeRequest
from repro.serving.server import AdServer

__all__ = ["available_cores", "run_batched_bench", "run_netserve_bench"]

#: The scaling bar applied when the host has fewer cores than workers:
#: parallel speedup is physically unavailable, but adding workers must
#: still not collapse throughput.
NO_COLLAPSE_FLOOR = 0.8

#: The batched-pipeline bar applied when the host can't physically run
#: frontend and workers in parallel (single-core CI): batching +
#: coalescing + cache must still win modestly — they remove worker CPU
#: from the critical path even when everything time-slices one core —
#: and must certainly not regress.
BATCHED_FALLBACK_FLOOR = 1.05


def available_cores() -> int:
    """Cores this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover — non-Linux
        return os.cpu_count() or 1


def _measure(
    segment_path: Path,
    num_workers: int,
    queries: list[Any],
    duration_s: float,
    concurrency: int,
    deadline_ms: float,
    conns_per_worker: int,
) -> dict[str, Any]:
    config = ClusterConfig(
        segment_path=str(segment_path),
        num_workers=num_workers,
        conns_per_worker=conns_per_worker,
        frontend_process=True,
        default_deadline_ms=deadline_ms,
    )
    with ServingCluster(config) as cluster:
        host, port = cluster.address
        # Warm page cache, node caches, and connection pools before the
        # measured window.
        run_loadgen(
            LoadGenConfig(
                host=host,
                port=port,
                duration_s=min(1.0, duration_s / 4),
                concurrency=concurrency,
                deadline_ms=deadline_ms,
            ),
            queries,
        )
        report = run_loadgen(
            LoadGenConfig(
                host=host,
                port=port,
                duration_s=duration_s,
                concurrency=concurrency,
                deadline_ms=deadline_ms,
            ),
            queries,
        )
    report["num_workers"] = num_workers
    return report


def _zero_copy_rows(
    report: dict[str, Any], segment_bytes: int
) -> list[dict[str, Any]]:
    """Per-worker segment-mapping residency vs the 25% budget."""
    budget = 0.25 * segment_bytes
    rows = []
    for worker in report.get("workers", []):
        mapping = worker.get("segment_mapping") or {}
        private = mapping.get("private")
        rows.append(
            {
                "worker_id": worker.get("worker_id"),
                "segment_private_bytes": private,
                "segment_shared_bytes": mapping.get("shared"),
                "segment_pss_bytes": mapping.get("pss"),
                "budget_bytes": budget,
                "within_budget": (
                    None if private is None else private <= budget
                ),
            }
        )
    return rows


def run_netserve_bench(
    num_ads: int = 30_000,
    num_queries: int = 64,
    query_len: int = 12,
    duration_s: float = 4.0,
    concurrency: int = 16,
    deadline_ms: float = 250.0,
    conns_per_worker: int = 4,
    worker_counts: tuple[int, ...] = (1, 4),
    scaling_floor: float = 2.5,
    seed: int = 0,
    segment_path: str | Path | None = None,
    enforce_gates: bool = True,
) -> dict[str, Any]:
    """Execute the scaling comparison; returns the results document."""
    generated = generate_corpus(CorpusConfig(num_ads=num_ads, seed=seed))
    workload = generate_workload(
        generated,
        QueryConfig(
            num_distinct=max(200, num_queries),
            total_frequency=10 * max(200, num_queries),
            seed=seed + 1,
        ),
    )
    queries = make_long_queries(
        generated, workload, num_queries, query_len, seed=seed + 2
    )

    index = WordSetIndex.from_corpus(generated.corpus)
    own_tempdir = segment_path is None
    tempdir = None
    if own_tempdir:
        tempdir = tempfile.TemporaryDirectory(prefix="repro-netserve-bench-")
        segment_path = Path(tempdir.name) / "bench.seg"
    segment_path = Path(segment_path)
    SegmentBuilder(index).write(segment_path)
    segment_bytes = segment_path.stat().st_size

    try:
        runs = {
            str(n): _measure(
                segment_path,
                n,
                queries,
                duration_s,
                concurrency,
                deadline_ms,
                conns_per_worker,
            )
            for n in worker_counts
        }
    finally:
        if tempdir is not None:
            tempdir.cleanup()

    base = runs[str(worker_counts[0])]
    peak = runs[str(worker_counts[-1])]
    speedup = peak["qps"] / base["qps"] if base["qps"] else 0.0
    zero_copy = _zero_copy_rows(peak, segment_bytes)
    cores = available_cores()
    cpu_feasible = cores >= worker_counts[-1]
    effective_floor = scaling_floor if cpu_feasible else NO_COLLAPSE_FLOOR
    gates = {
        "scaling": {
            "floor": scaling_floor,
            "available_cores": cores,
            "cpu_feasible": cpu_feasible,
            "effective_floor": effective_floor,
            "speedup": speedup,
            "passed": speedup >= effective_floor,
        },
        "latency": {
            "deadline_ms": deadline_ms,
            "p99_ms": {
                name: run["latency_ms"]["p99"] for name, run in runs.items()
            },
            "passed": all(
                run["latency_ms"]["p99"] <= deadline_ms
                for run in runs.values()
            ),
        },
        "zero_copy": {
            "budget_fraction": 0.25,
            "segment_bytes": segment_bytes,
            "workers": zero_copy,
            "passed": all(
                row["within_budget"] is not False for row in zero_copy
            ),
        },
        "errors": {
            "counts": {
                name: run["errors"] for name, run in runs.items()
            },
            "passed": all(run["errors"] == 0 for run in runs.values()),
        },
    }
    document = {
        "bench": "netserve",
        "config": {
            "num_ads": num_ads,
            "num_queries": num_queries,
            "query_len": query_len,
            "duration_s": duration_s,
            "concurrency": concurrency,
            "deadline_ms": deadline_ms,
            "conns_per_worker": conns_per_worker,
            "worker_counts": list(worker_counts),
            "seed": seed,
        },
        "segment_bytes": segment_bytes,
        "runs": runs,
        "speedup": speedup,
        "gates": gates,
    }
    if enforce_gates:
        failed = [name for name, gate in gates.items() if not gate["passed"]]
        if failed:
            raise AssertionError(
                f"netserve bench gates failed: {', '.join(failed)}\n"
                + json.dumps(gates, indent=2)
            )
    return document


# ---------------------------------------------------------------- #
# PR 9: batched pipeline vs unbatched baseline


def _measure_mode(
    segment_path: Path,
    queries: list[Any],
    *,
    batched: bool,
    num_workers: int,
    conns_per_worker: int,
    max_batch: int,
    batch_wait_us: float,
    cache_entries: int,
    duration_s: float,
    concurrency: int,
    deadline_ms: float,
    zipf_s: float,
    seed: int,
) -> dict[str, Any]:
    """One measured run: the same topology, batching on or off."""
    config = ClusterConfig(
        segment_path=str(segment_path),
        num_workers=num_workers,
        conns_per_worker=conns_per_worker if batched else 2,
        frontend_process=True,
        default_deadline_ms=deadline_ms,
        max_batch=max_batch if batched else 1,
        batch_wait_us=batch_wait_us,
        coalesce=batched,
        cache_entries=cache_entries if batched else 0,
    )
    load = dict(
        duration_s=duration_s,
        concurrency=concurrency,
        deadline_ms=deadline_ms,
        zipf_s=zipf_s,
        zipf_seed=seed,
    )
    with ServingCluster(config) as cluster:
        host, port = cluster.address
        # Warm page cache, node caches, connection pools — and, in the
        # batched run, the result cache (steady state is the claim).
        run_loadgen(
            LoadGenConfig(
                host=host,
                port=port,
                **{**load, "duration_s": min(1.0, duration_s / 4)},
            ),
            queries,
        )
        report = run_loadgen(
            LoadGenConfig(host=host, port=port, **load), queries
        )
    report["batched"] = batched
    return report


def _expected_results(
    segment_path: Path, requests: list[ServeRequest]
) -> list[dict[str, Any]]:
    """The scalar in-process answers the network tier must reproduce."""
    index = PackedSegmentIndex(str(segment_path))
    try:
        server = AdServer(index)
        return [server.serve(request).to_dict() for request in requests]
    finally:
        index.close()


def _equivalence_run(
    segment_path: Path,
    cluster_kwargs: dict[str, Any],
    requests: list[ServeRequest],
    expected: list[dict[str, Any]],
    threads: int = 4,
) -> dict[str, Any]:
    """Drive the full request stream from ``threads`` concurrent
    clients and compare every reply bit-for-bit against ``expected``."""
    import threading

    mismatches = 0
    id_mismatches = 0
    errors = 0
    lock = threading.Lock()
    config = ClusterConfig(segment_path=str(segment_path), **cluster_kwargs)
    with ServingCluster(config) as cluster:
        host, port = cluster.address

        def stream(thread_id: int) -> None:
            nonlocal mismatches, id_mismatches, errors
            local_mis = local_ids = local_errs = 0
            with ServeClient(host, port, timeout_s=30.0) as client:
                for i, request in enumerate(requests):
                    request_id = f"t{thread_id}-r{i}"
                    payload = request.to_dict()
                    payload["request_id"] = request_id
                    reply = client.request(
                        {"type": "serve", "request": payload}
                    )
                    if reply.get("type") != "result":
                        local_errs += 1
                        continue
                    if reply.get("request_id") != request_id:
                        local_ids += 1
                    if reply.get("result") != expected[i]:
                        local_mis += 1
            with lock:
                mismatches += local_mis
                id_mismatches += local_ids
                errors += local_errs

        workers = [
            threading.Thread(target=stream, args=(t,), daemon=True)
            for t in range(threads)
        ]
        for thread in workers:
            thread.start()
        for thread in workers:
            thread.join()
    return {
        "requests": len(requests) * threads,
        "mismatches": mismatches,
        "request_id_mismatches": id_mismatches,
        "errors": errors,
    }


def run_batched_bench(
    num_ads: int = 20_000,
    num_queries: int = 96,
    query_len: int = 12,
    duration_s: float = 4.0,
    concurrency: int = 32,
    deadline_ms: float = 250.0,
    num_workers: int = 2,
    conns_per_worker: int = 16,
    max_batch: int = 16,
    batch_wait_us: float = 500.0,
    cache_entries: int = 512,
    zipf_s: float = 1.1,
    speedup_floor: float = 2.0,
    seed: int = 0,
    segment_path: str | Path | None = None,
    enforce_gates: bool = True,
) -> dict[str, Any]:
    """The PR 9 experiment; returns the ``BENCH_PR9.json`` document."""
    generated = generate_corpus(CorpusConfig(num_ads=num_ads, seed=seed))
    workload = generate_workload(
        generated,
        QueryConfig(
            num_distinct=max(200, num_queries),
            total_frequency=10 * max(200, num_queries),
            seed=seed + 1,
        ),
    )
    queries = make_long_queries(
        generated, workload, num_queries, query_len, seed=seed + 2
    )

    index = WordSetIndex.from_corpus(generated.corpus)
    own_tempdir = segment_path is None
    tempdir = None
    if own_tempdir:
        tempdir = tempfile.TemporaryDirectory(prefix="repro-batched-bench-")
        segment_path = Path(tempdir.name) / "bench.seg"
    segment_path = Path(segment_path)
    SegmentBuilder(index).write(segment_path)
    segment_bytes = segment_path.stat().st_size

    measure = dict(
        num_workers=num_workers,
        conns_per_worker=conns_per_worker,
        max_batch=max_batch,
        batch_wait_us=batch_wait_us,
        cache_entries=cache_entries,
        duration_s=duration_s,
        concurrency=concurrency,
        deadline_ms=deadline_ms,
        zipf_s=zipf_s,
        seed=seed,
    )
    try:
        baseline = _measure_mode(
            segment_path, queries, batched=False, **measure
        )
        pipeline = _measure_mode(
            segment_path, queries, batched=True, **measure
        )

        # Equivalence sweep: each feature toggled on individually (and
        # all together) must reproduce the scalar in-process slates
        # bit-for-bit under concurrent clients.  Odd requests reverse
        # their token order so the coalescer's canonical-key fold and
        # per-client query-echo restamp are actually exercised.
        sample = queries[: min(24, len(queries))]
        requests = [
            ServeRequest(
                query=(
                    query
                    if i % 2 == 0
                    else type(query)(tuple(reversed(query.tokens)))
                )
            )
            for i, query in enumerate(sample)
        ]
        expected = _expected_results(segment_path, requests)
        toggles = {
            "batching_only": dict(max_batch=max_batch, batch_wait_us=2000.0),
            "coalescing_only": dict(coalesce=True),
            "cache_only": dict(cache_entries=cache_entries),
            "all_on": dict(
                max_batch=max_batch,
                batch_wait_us=2000.0,
                coalesce=True,
                cache_entries=cache_entries,
            ),
        }
        equivalence = {
            name: _equivalence_run(
                segment_path,
                dict(num_workers=1, conns_per_worker=4, **kwargs),
                requests,
                expected,
            )
            for name, kwargs in toggles.items()
        }
    finally:
        if tempdir is not None:
            tempdir.cleanup()

    speedup = (
        pipeline["qps"] / baseline["qps"] if baseline["qps"] else 0.0
    )
    cores = available_cores()
    # The 2× bar assumes the frontend and at least one worker can run
    # in parallel; on a single-core host everything time-slices and
    # only the cache/coalescing CPU savings remain.
    cpu_feasible = cores >= 2
    effective_floor = speedup_floor if cpu_feasible else BATCHED_FALLBACK_FLOOR
    equivalence_clean = all(
        run["mismatches"] == 0
        and run["request_id_mismatches"] == 0
        and run["errors"] == 0
        for run in equivalence.values()
    )
    gates = {
        "speedup": {
            "floor": speedup_floor,
            "fallback_floor": BATCHED_FALLBACK_FLOOR,
            "available_cores": cores,
            "cpu_feasible": cpu_feasible,
            "effective_floor": effective_floor,
            "speedup": speedup,
            "passed": speedup >= effective_floor,
        },
        "latency": {
            "deadline_ms": deadline_ms,
            "p99_ms": {
                "baseline": baseline["latency_ms"]["p99"],
                "pipeline": pipeline["latency_ms"]["p99"],
            },
            "passed": (
                baseline["latency_ms"]["p99"] <= deadline_ms
                and pipeline["latency_ms"]["p99"] <= deadline_ms
            ),
        },
        "errors": {
            "counts": {
                "baseline": baseline["errors"],
                "pipeline": pipeline["errors"],
            },
            "passed": baseline["errors"] == 0 and pipeline["errors"] == 0,
        },
        "equivalence": {
            "runs": equivalence,
            "passed": equivalence_clean,
        },
    }
    document = {
        "bench": "netserve-batched",
        "config": {
            "num_ads": num_ads,
            "num_queries": num_queries,
            "query_len": query_len,
            "duration_s": duration_s,
            "concurrency": concurrency,
            "deadline_ms": deadline_ms,
            "num_workers": num_workers,
            "conns_per_worker": conns_per_worker,
            "max_batch": max_batch,
            "batch_wait_us": batch_wait_us,
            "cache_entries": cache_entries,
            "zipf_s": zipf_s,
            "seed": seed,
        },
        "segment_bytes": segment_bytes,
        "baseline": baseline,
        "pipeline": pipeline,
        "speedup": speedup,
        "gates": gates,
    }
    if enforce_gates:
        failed = [name for name, gate in gates.items() if not gate["passed"]]
        if failed:
            raise AssertionError(
                f"batched bench gates failed: {', '.join(failed)}\n"
                + json.dumps(gates, indent=2)
            )
    return document


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--mode",
        choices=("scaling", "batched"),
        default="scaling",
        help="scaling = PR 7 worker-count comparison; "
        "batched = PR 9 batching-vs-baseline comparison",
    )
    parser.add_argument("--num-ads", type=int, default=None)
    parser.add_argument("--num-queries", type=int, default=None)
    parser.add_argument("--query-len", type=int, default=12)
    parser.add_argument("--duration-s", type=float, default=4.0)
    parser.add_argument("--concurrency", type=int, default=None)
    parser.add_argument("--deadline-ms", type=float, default=250.0)
    parser.add_argument(
        "--workers",
        type=int,
        nargs="+",
        default=[1, 4],
        help="scaling mode: worker counts to compare (first is baseline)",
    )
    parser.add_argument(
        "--num-workers",
        type=int,
        default=2,
        help="batched mode: workers in both measured topologies",
    )
    parser.add_argument("--max-batch", type=int, default=16)
    parser.add_argument("--batch-wait-us", type=float, default=500.0)
    parser.add_argument("--cache-entries", type=int, default=512)
    parser.add_argument("--zipf-s", type=float, default=1.1)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--no-gates", action="store_true")
    parser.add_argument("--out", type=Path, default=None)
    args = parser.parse_args(argv)
    if args.mode == "batched":
        document = run_batched_bench(
            num_ads=args.num_ads if args.num_ads is not None else 20_000,
            num_queries=(
                args.num_queries if args.num_queries is not None else 96
            ),
            query_len=args.query_len,
            duration_s=args.duration_s,
            concurrency=(
                args.concurrency if args.concurrency is not None else 32
            ),
            deadline_ms=args.deadline_ms,
            num_workers=args.num_workers,
            max_batch=args.max_batch,
            batch_wait_us=args.batch_wait_us,
            cache_entries=args.cache_entries,
            zipf_s=args.zipf_s,
            seed=args.seed,
            enforce_gates=not args.no_gates,
        )
    else:
        document = run_netserve_bench(
            num_ads=args.num_ads if args.num_ads is not None else 30_000,
            num_queries=(
                args.num_queries if args.num_queries is not None else 64
            ),
            query_len=args.query_len,
            duration_s=args.duration_s,
            concurrency=(
                args.concurrency if args.concurrency is not None else 16
            ),
            deadline_ms=args.deadline_ms,
            worker_counts=tuple(args.workers),
            seed=args.seed,
            enforce_gates=not args.no_gates,
        )
    text = json.dumps(document, indent=2, sort_keys=True)
    if args.out is not None:
        args.out.write_text(text + "\n")
    print(text)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
