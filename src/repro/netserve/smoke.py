"""The ``netserve-smoke`` CI gate: boot a tiny cluster, drive it, check.

Packs a small generated corpus, boots the full tier (frontend process +
2 workers over one shared segment), runs the closed-loop generator for
a few seconds, and gates on the run being *non-degenerate*:

* zero unhandled errors anywhere — no client transport faults, no
  worker pipeline exceptions, no frontend wire errors;
* every worker actually served traffic (routing reached them all);
* the SLO report has real content: positive QPS, a populated latency
  histogram, and answered stats probes.

Exit code 0/1; the report prints either way.  Run it as CI does::

    PYTHONPATH=src python -m repro.netserve.smoke
"""

from __future__ import annotations

import argparse
import json
import tempfile
from pathlib import Path

from repro.core.wordset_index import WordSetIndex
from repro.datagen.corpus import CorpusConfig, generate_corpus
from repro.datagen.querygen import QueryConfig, generate_workload
from repro.netserve.cluster import ClusterConfig, ServingCluster
from repro.netserve.loadgen import LoadGenConfig, run_loadgen
from repro.perf.bench import make_long_queries
from repro.segment.builder import SegmentBuilder

__all__ = ["run_smoke"]


def run_smoke(
    num_ads: int = 3_000,
    num_workers: int = 2,
    duration_s: float = 2.5,
    concurrency: int = 8,
    deadline_ms: float = 500.0,
    seed: int = 0,
) -> tuple[dict, list[str]]:
    """One smoke run; returns ``(report, failures)``."""
    generated = generate_corpus(CorpusConfig(num_ads=num_ads, seed=seed))
    workload = generate_workload(
        generated,
        QueryConfig(
            num_distinct=200, total_frequency=2_000, seed=seed + 1
        ),
    )
    queries = make_long_queries(generated, workload, 32, 10, seed=seed + 2)
    index = WordSetIndex.from_corpus(generated.corpus)
    with tempfile.TemporaryDirectory(prefix="netserve-smoke-") as tmp:
        segment_path = Path(tmp) / "smoke.seg"
        SegmentBuilder(index).write(segment_path)
        config = ClusterConfig(
            segment_path=str(segment_path),
            num_workers=num_workers,
            frontend_process=True,
            default_deadline_ms=deadline_ms,
        )
        with ServingCluster(config) as cluster:
            host, port = cluster.address
            report = run_loadgen(
                LoadGenConfig(
                    host=host,
                    port=port,
                    duration_s=duration_s,
                    concurrency=concurrency,
                    deadline_ms=deadline_ms,
                    user_ids=4,
                ),
                queries,
            )

    failures: list[str] = []
    if report["errors"]:
        failures.append(f"{report['errors']} client-side errors")
    if report["qps"] <= 0:
        failures.append("degenerate run: zero sustained QPS")
    if report["latency_ms"]["count"] == 0:
        failures.append("latency histogram is empty")
    workers = report.get("workers", [])
    if len(workers) != num_workers:
        failures.append(
            f"stats saw {len(workers)} workers, expected {num_workers}"
        )
    for worker in workers:
        if worker.get("unreachable"):
            failures.append(f"worker {worker.get('worker_id')} unreachable")
            continue
        if worker.get("errors"):
            failures.append(
                f"worker {worker['worker_id']}: "
                f"{worker['errors']} pipeline errors"
            )
        if worker.get("wire_errors"):
            failures.append(
                f"worker {worker['worker_id']}: "
                f"{worker['wire_errors']} wire errors"
            )
        if not worker.get("served"):
            failures.append(f"worker {worker['worker_id']} served nothing")
    frontend = report.get("frontend") or {}
    counters = frontend.get("counters", {})
    if counters.get("frontend.wire_errors"):
        failures.append(
            f"{counters['frontend.wire_errors']} frontend wire errors"
        )
    return report, failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--num-ads", type=int, default=3_000)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--duration-s", type=float, default=2.5)
    parser.add_argument("--concurrency", type=int, default=8)
    args = parser.parse_args(argv)
    report, failures = run_smoke(
        num_ads=args.num_ads,
        num_workers=args.workers,
        duration_s=args.duration_s,
        concurrency=args.concurrency,
    )
    print(json.dumps(report, indent=2, sort_keys=True))
    if failures:
        print("netserve smoke FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("netserve smoke passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
