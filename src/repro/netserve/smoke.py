"""The ``netserve-smoke`` CI gate: boot a tiny cluster, drive it, check.

Packs a small generated corpus, boots the full tier (frontend process +
2 workers over one shared segment), runs the closed-loop generator for
a few seconds, and gates on the run being *non-degenerate*:

* zero unhandled errors anywhere — no client transport faults, no
  worker pipeline exceptions, no frontend wire errors;
* every worker actually served traffic (routing reached them all);
* the SLO report has real content: positive QPS, a populated latency
  histogram, and answered stats probes;
* zero supervision activity — an uninjured run that needs a respawn
  means a worker crashed or hung under plain load (the injured
  counterpart of this gate lives in :mod:`repro.netserve.chaos`).

``--batched`` runs the same drill through the PR 9 pipeline instead —
worker micro-batching + frontend singleflight + result cache, driven
with duplicate-heavy Zipf traffic — and additionally gates on the
pipeline actually engaging: the duplicate-heavy traffic must produce
coalesced requests or cache hits, and the realized unique-query
fraction must actually be below 1.

Exit code 0/1; the report prints either way.  Run it as CI does::

    PYTHONPATH=src python -m repro.netserve.smoke
    PYTHONPATH=src python -m repro.netserve.smoke --batched
"""

from __future__ import annotations

import argparse
import json
import tempfile
from pathlib import Path

from repro.core.wordset_index import WordSetIndex
from repro.datagen.corpus import CorpusConfig, generate_corpus
from repro.datagen.querygen import QueryConfig, generate_workload
from repro.netserve.cluster import ClusterConfig, ServingCluster
from repro.netserve.loadgen import LoadGenConfig, run_loadgen
from repro.perf.bench import make_long_queries
from repro.segment.builder import SegmentBuilder

__all__ = ["run_smoke"]


def run_smoke(
    num_ads: int = 3_000,
    num_workers: int = 2,
    duration_s: float = 2.5,
    concurrency: int = 8,
    deadline_ms: float = 500.0,
    seed: int = 0,
    batched: bool = False,
) -> tuple[dict, list[str]]:
    """One smoke run; returns ``(report, failures)``."""
    generated = generate_corpus(CorpusConfig(num_ads=num_ads, seed=seed))
    workload = generate_workload(
        generated,
        QueryConfig(
            num_distinct=200, total_frequency=2_000, seed=seed + 1
        ),
    )
    queries = make_long_queries(generated, workload, 32, 10, seed=seed + 2)
    index = WordSetIndex.from_corpus(generated.corpus)
    with tempfile.TemporaryDirectory(prefix="netserve-smoke-") as tmp:
        segment_path = Path(tmp) / "smoke.seg"
        SegmentBuilder(index).write(segment_path)
        config = ClusterConfig(
            segment_path=str(segment_path),
            num_workers=num_workers,
            frontend_process=True,
            default_deadline_ms=deadline_ms,
            conns_per_worker=8 if batched else 2,
            max_batch=8 if batched else 1,
            coalesce=batched,
            cache_entries=256 if batched else 0,
        )
        with ServingCluster(config) as cluster:
            host, port = cluster.address
            report = run_loadgen(
                LoadGenConfig(
                    host=host,
                    port=port,
                    duration_s=duration_s,
                    concurrency=concurrency,
                    deadline_ms=deadline_ms,
                    # The frequency-cap user ids would fragment the
                    # coalescing key space; the batched drill wants
                    # duplicate-heavy canonical traffic instead.
                    user_ids=0 if batched else 4,
                    zipf_s=1.1 if batched else None,
                    zipf_seed=seed,
                ),
                queries,
            )
            supervision = (
                cluster.supervisor.stats()
                if cluster.supervisor is not None
                else None
            )
    report["supervision"] = supervision

    failures: list[str] = []
    if supervision is not None:
        counters = supervision["counters"]
        # Nothing was injured in this drill: any respawn means a worker
        # actually crashed or hung under plain load.
        for counter in (
            "supervisor.deaths_detected",
            "supervisor.hangs_detected",
            "supervisor.respawns",
            "supervisor.crash_loops",
        ):
            if counters.get(counter):
                failures.append(
                    f"{counter} = {counters[counter]} during an "
                    "uninjured smoke run"
                )
    if report["errors"]:
        failures.append(f"{report['errors']} client-side errors")
    if report["qps"] <= 0:
        failures.append("degenerate run: zero sustained QPS")
    if report["latency_ms"]["count"] == 0:
        failures.append("latency histogram is empty")
    workers = report.get("workers", [])
    if len(workers) != num_workers:
        failures.append(
            f"stats saw {len(workers)} workers, expected {num_workers}"
        )
    for worker in workers:
        if worker.get("unreachable"):
            failures.append(f"worker {worker.get('worker_id')} unreachable")
            continue
        if worker.get("errors"):
            failures.append(
                f"worker {worker['worker_id']}: "
                f"{worker['errors']} pipeline errors"
            )
        if worker.get("wire_errors"):
            failures.append(
                f"worker {worker['worker_id']}: "
                f"{worker['wire_errors']} wire errors"
            )
        if not worker.get("served"):
            failures.append(f"worker {worker['worker_id']} served nothing")
    frontend = report.get("frontend") or {}
    counters = frontend.get("counters", {})
    if counters.get("frontend.wire_errors"):
        failures.append(
            f"{counters['frontend.wire_errors']} frontend wire errors"
        )
    if batched:
        coalescing = report.get("coalescing") or {}
        shared = coalescing.get("coalesced", 0) + coalescing.get(
            "cache_hits", 0
        )
        if shared <= 0:
            failures.append(
                "batched drill: Zipf traffic produced neither coalesced "
                "requests nor cache hits"
            )
        traffic = report.get("traffic") or {}
        fraction = traffic.get("unique_query_fraction")
        if fraction is not None and fraction >= 1.0:
            failures.append(
                "batched drill: traffic was not duplicate-heavy "
                f"(unique_query_fraction={fraction})"
            )
    return report, failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--num-ads", type=int, default=3_000)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--duration-s", type=float, default=2.5)
    parser.add_argument("--concurrency", type=int, default=8)
    parser.add_argument(
        "--batched",
        action="store_true",
        help="drive the batching+coalescing+cache pipeline on Zipf traffic",
    )
    args = parser.parse_args(argv)
    report, failures = run_smoke(
        num_ads=args.num_ads,
        num_workers=args.workers,
        duration_s=args.duration_s,
        concurrency=args.concurrency,
        batched=args.batched,
    )
    print(json.dumps(report, indent=2, sort_keys=True))
    label = "batched netserve smoke" if args.batched else "netserve smoke"
    if failures:
        print(f"{label} FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(f"{label} passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
