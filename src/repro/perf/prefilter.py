"""Probe planning: decide which subsets a broad-match query must probe.

A probed subset can only hit a data node if (a) every one of its words
appears in at least one node locator, and (b) some node locator actually
has that subset's size.  ``plan_probes`` therefore intersects the query
with the index's locator vocabulary and restricts enumeration to the
locator sizes present in the index's size histogram — the two structural
facts :class:`~repro.core.wordset_index.WordSetIndex` maintains online.

The resulting :class:`ProbePlan` is the single source of truth for probe
enumeration: ``WordSetIndex._probe`` executes it,
:func:`repro.core.explain.explain_broad_match` replays it, and
:func:`repro.cost.workload_cost.cost_hash_index` prices it analytically —
which is how tracker accounting and the cost model stay reconciled.

Skipping subsets cannot change results: a subset containing an unindexed
word, or of a size no locator has, can never *equal* a node locator.  Its
probe could still land on an occupied bucket through a 64-bit hash
collision with some other locator, but such a collision scan can only
surface ads the locator's own probe surfaces too (every entry's word-set
contains the locator, and matches additionally require containment in the
query), so dropping the probe drops no matches.
"""

from __future__ import annotations

from collections.abc import Callable, Container, Mapping
from dataclasses import dataclass
from math import comb

from repro.core.subset_enum import subset_count, truncate_query


@dataclass(frozen=True, slots=True)
class ProbePlan:
    """The subsets one broad-match query will probe, in canonical order."""

    #: Query words after the long-query heuristic cutoff.
    words: frozenset[str]
    #: True if the cutoff dropped words.
    truncated: bool
    #: Sorted words eligible for subset enumeration (all of ``words`` on
    #: the naive path; only locator-vocabulary words on the fast path).
    candidates: tuple[str, ...]
    #: Ascending subset sizes to enumerate (the fast path skips sizes with
    #: no locators).
    sizes: tuple[int, ...]
    #: True when built by the pruning fast path.
    pruned: bool

    def probe_count(self) -> int:
        """Exact number of hash probes executing this plan performs."""
        return subset_count(len(self.candidates), self.sizes)

    def capped(self, max_probes: int) -> ProbePlan:
        """A plan bounded to at most ``max_probes`` hash probes.

        The overload-degradation knob (see :mod:`repro.resilience`):
        subset sizes are kept smallest-first — small subsets are both
        the cheap end of the ``C(n, i)`` explosion and the locators
        re-mapping concentrates ads onto — and whole sizes are dropped
        from the top until the plan fits.  Returns ``self`` unchanged
        when it already fits; a genuinely capped plan is marked
        ``truncated`` so callers can flag the result as partial.
        """
        if max_probes < 1:
            raise ValueError("max_probes must be >= 1")
        if self.probe_count() <= max_probes:
            return self
        kept: list[int] = []
        total = 0
        n = len(self.candidates)
        for size in self.sizes:
            cost = comb(n, size)
            if total + cost > max_probes:
                break
            kept.append(size)
            total += cost
        return ProbePlan(
            words=self.words,
            truncated=True,
            candidates=self.candidates,
            sizes=tuple(kept),
            pruned=self.pruned,
        )


def plan_probes(
    words: frozenset[str],
    vocabulary: Container[str],
    size_histogram: Mapping[int, int],
    max_words: int | None,
    truncated: bool = False,
) -> ProbePlan:
    """Build the pruned probe plan for ``words`` against an index's
    locator vocabulary and locator-size histogram."""
    candidates = tuple(w for w in sorted(words) if w in vocabulary)
    bound = min(len(candidates), max(size_histogram, default=0))
    if max_words is not None:
        bound = min(bound, max_words)
    sizes = tuple(
        size
        for size in range(1, bound + 1)
        if size_histogram.get(size, 0) > 0
    )
    return ProbePlan(
        words=words,
        truncated=truncated,
        candidates=candidates,
        sizes=sizes,
        pruned=True,
    )


def plan_for_query(
    words: frozenset[str],
    *,
    fast_path: bool,
    vocabulary: Container[str],
    size_histogram: Mapping[int, int],
    max_words: int | None,
    max_query_words: int,
    selectivity: Callable[[str], int] | None = None,
) -> ProbePlan:
    """The full query-to-plan pipeline shared by every index front-end.

    Applies the long-query cutoff, then builds either the pruned plan
    (against the index's locator vocabulary and size histogram) or the
    paper's naive enumeration.  ``WordSetIndex.probe_plan``,
    ``CompressedWordSetIndex``, and ``PackedSegmentIndex`` all call this
    one function, so the three query paths can never drift apart.
    """
    cut = truncate_query(words, max_query_words, selectivity)
    was_cut = cut != words
    if fast_path:
        return plan_probes(
            cut, vocabulary, size_histogram, max_words, truncated=was_cut
        )
    return naive_plan(cut, max_words, truncated=was_cut)


def naive_plan(
    words: frozenset[str],
    max_words: int | None,
    truncated: bool = False,
) -> ProbePlan:
    """The paper's unpruned plan: every subset of ``words`` up to
    ``max_words`` (Section IV-B), with no structural pruning."""
    candidates = tuple(sorted(words))
    bound = len(candidates)
    if max_words is not None:
        bound = min(bound, max_words)
    return ProbePlan(
        words=words,
        truncated=truncated,
        candidates=candidates,
        sizes=tuple(range(1, bound + 1)),
        pruned=False,
    )
