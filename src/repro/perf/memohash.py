"""Memoized word hashing and incremental subset-hash enumeration.

``wordhash`` of a set is the XOR of a mixed per-word hash (see
:mod:`repro.core.wordhash`).  XOR is associative and invertible, so the
hash of every probed subset can be assembled from per-word *contributions*
computed once — instead of re-hashing each word's bytes for every subset a
query enumerates (a ``|Q|``-word query probes up to ``2^|Q| - 1`` subsets,
touching each word ``2^(|Q|-1)`` times under naive re-hashing).

Two layers of reuse:

* :func:`word_contrib` memoizes the mixed 64-bit hash per word across
  queries (the cache is bounded by the corpus vocabulary because the
  prefilter only ever asks for indexed words);
* :func:`hashed_index_subsets` enumerates subset hashes *incrementally*:
  consecutive combinations in lexicographic order share a prefix, and the
  enumerator maintains prefix XOR accumulators, so advancing to the next
  subset costs O(1) amortized XOR work rather than O(|subset|).

The enumeration order (size-ascending, lexicographic within a size over
the sorted candidate words) is exactly that of
:func:`repro.core.subset_enum.bounded_subsets`, so traces, costs, and
result order are preserved bit-for-bit against the naive path.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence

from repro.core.wordhash import fnv1a, _mix

#: word -> mixed 64-bit contribution to any set hash containing it.
_CONTRIB_CACHE: dict[str, int] = {}


def word_contrib(word: str) -> int:
    """The word's XOR contribution to ``wordhash`` of any containing set."""
    contrib = _CONTRIB_CACHE.get(word)
    if contrib is None:
        contrib = _mix(fnv1a(word))
        _CONTRIB_CACHE[word] = contrib
    return contrib


def clear_contrib_cache() -> int:
    """Drop all memoized contributions; returns how many were cached."""
    size = len(_CONTRIB_CACHE)
    _CONTRIB_CACHE.clear()
    return size


def hashed_index_subsets(
    contribs: Sequence[int], sizes: Iterable[int]
) -> Iterator[tuple[int, list[int]]]:
    """Yield ``(subset_hash, index_list)`` for index subsets of ``contribs``.

    For each size in ``sizes`` (ascending sizes give the canonical probe
    order), enumerates all index combinations in lexicographic order.  The
    yielded ``index_list`` is **live** — it is mutated in place as the
    enumeration advances — so callers needing the subset identity must copy
    it before the next step (a hit-only copy is the point: misses never
    materialize a subset).

    The hash equals ``wordhash`` of the corresponding word subset whenever
    ``contribs[i] == word_contrib(words[i])``.
    """
    n = len(contribs)
    for size in sizes:
        if size < 1 or size > n:
            continue
        indices = list(range(size))
        # prefix[j] = XOR of contribs[indices[0..j-1]].
        prefix = [0] * (size + 1)
        for j in range(size):
            prefix[j + 1] = prefix[j] ^ contribs[indices[j]]
        while True:
            yield prefix[size], indices
            # Advance like itertools.combinations: find the rightmost index
            # that can move, bump it, reset the tail, and recompute only the
            # prefix XORs from that position on (amortized O(1) per step).
            for j in range(size - 1, -1, -1):
                if indices[j] != j + n - size:
                    break
            else:
                break
            indices[j] += 1
            for k in range(j + 1, size):
                indices[k] = indices[k - 1] + 1
            for k in range(j, size):
                prefix[k + 1] = prefix[k] ^ contribs[indices[k]]


def hashed_subsets(
    words: Sequence[str], sizes: Iterable[int]
) -> Iterator[tuple[frozenset[str], int]]:
    """Yield ``(subset, subset_hash)`` pairs — the materialized convenience
    form of :func:`hashed_index_subsets`, used by tests and diagnostics."""
    contribs = [word_contrib(w) for w in words]
    for key, indices in hashed_index_subsets(contribs, sizes):
        yield frozenset(words[i] for i in indices), key
