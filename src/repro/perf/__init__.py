"""Performance fast paths for broad-match query processing.

The paper bounds the number of hash probes per query analytically
(Section IV-B: ``Σ C(|Q|, i)`` after re-mapping); this subpackage makes the
*executed* probe count approach the number of probes that can possibly hit:

* :mod:`repro.perf.prefilter` — probe planning: intersect the query with
  the indexed locator vocabulary and cap/skip subset sizes using the
  index's locator-size histogram, so subsets that cannot address any node
  are never generated;
* :mod:`repro.perf.memohash` — memoized per-word hash contributions and
  incremental subset-hash enumeration, so each probed subset costs an O(1)
  XOR combine instead of re-hashing its words;
* :mod:`repro.perf.batch` — :class:`BatchQueryEngine`: deduplicates
  identical word-sets across a batch of queries and fans work out across
  :class:`~repro.core.sharded.ShardedWordSetIndex` shards via a worker
  pool;
* :mod:`repro.perf.bench` — the fast-path benchmark driver that persists
  probe-count and latency results (``BENCH_PR1.json``).

All fast paths are result-identical to the naive enumeration; the property
tests in ``tests/perf`` and ``benchmarks/test_bench_fastpath.py`` pin this.
"""

from repro.perf.batch import BatchQueryEngine, BatchStats
from repro.perf.memohash import (
    clear_contrib_cache,
    hashed_index_subsets,
    hashed_subsets,
    word_contrib,
)
from repro.perf.prefilter import ProbePlan, naive_plan, plan_probes

__all__ = [
    "BatchQueryEngine",
    "BatchStats",
    "ProbePlan",
    "clear_contrib_cache",
    "hashed_index_subsets",
    "hashed_subsets",
    "naive_plan",
    "plan_probes",
    "word_contrib",
]
