"""Fast-path benchmark driver: probe counts and wall-clock, pruned vs naive.

Builds a synthetic corpus, composes a long-query broad-match workload (the
regime where naive subset enumeration explodes: a 12-word query probes
``2^12 - 1`` subsets), and replays it against two otherwise identical
indexes — the probe-pruning fast path and the paper's unpruned reference
(``fast_path=False``).  Verifies result identity per query, then measures:

* tracker-counted hash probes on each path (the paper's own metric);
* wall-clock latency on each path;
* batched, sharded throughput through
  :class:`~repro.perf.batch.BatchQueryEngine`.

Results are written as JSON (``BENCH_PR1.json`` at the repo root by
convention) so the perf trajectory is tracked across PRs::

    PYTHONPATH=src python -m repro.perf.bench --out BENCH_PR1.json
"""

from __future__ import annotations

import argparse
import json
import random
import time

from repro.core.queries import Query
from repro.core.sharded import ShardedWordSetIndex
from repro.core.wordset_index import WordSetIndex
from repro.cost.accounting import AccessTracker
from repro.datagen.corpus import CorpusConfig, generate_corpus
from repro.datagen.querygen import QueryConfig, generate_workload
from repro.perf.batch import BatchQueryEngine


def make_long_queries(
    generated,
    workload,
    num_queries: int,
    query_len: int,
    seed: int = 0,
) -> list[Query]:
    """Long broad-match queries: a real workload query's words padded with
    corpus-vocabulary and out-of-vocabulary noise up to ``query_len``."""
    rng = random.Random(seed)
    vocabulary = generated.vocabulary
    base_queries = workload.distinct_queries()
    queries: list[Query] = []
    for i in range(num_queries):
        words = list(rng.choice(base_queries).words)
        while len(words) < query_len:
            if rng.random() < 0.5:
                candidate = rng.choice(vocabulary)
            else:
                candidate = f"oov{rng.randrange(10 * query_len * num_queries)}"
            if candidate not in words:
                words.append(candidate)
        rng.shuffle(words)
        queries.append(Query(tokens=tuple(words[:query_len])))
    return queries


def _replay(index: WordSetIndex, queries: list[Query]):
    """Run every query; returns (per-query sorted id lists, seconds)."""
    start = time.perf_counter()
    results = [
        sorted(ad.info.listing_id for ad in index.query(query))
        for query in queries
    ]
    return results, time.perf_counter() - start


def run_fastpath_bench(
    num_ads: int = 4_000,
    num_queries: int = 120,
    query_len: int = 12,
    num_shards: int = 4,
    seed: int = 0,
) -> dict:
    """Execute the full comparison; returns the results document."""
    generated = generate_corpus(CorpusConfig(num_ads=num_ads, seed=seed))
    workload = generate_workload(
        generated,
        QueryConfig(
            num_distinct=max(200, num_queries),
            total_frequency=10 * max(200, num_queries),
            seed=seed + 1,
        ),
    )
    queries = make_long_queries(
        generated, workload, num_queries, query_len, seed=seed + 2
    )

    fast_tracker = AccessTracker()
    fast_index = WordSetIndex.from_corpus(
        generated.corpus, tracker=fast_tracker
    )
    naive_tracker = AccessTracker()
    naive_index = WordSetIndex.from_corpus(
        generated.corpus, tracker=naive_tracker, fast_path=False
    )

    fast_results, fast_seconds = _replay(fast_index, queries)
    naive_results, naive_seconds = _replay(naive_index, queries)
    identical = fast_results == naive_results
    if not identical:
        raise AssertionError(
            "fast-path results diverged from the naive enumeration"
        )

    fast_probes = fast_tracker.stats.hash_probes
    naive_probes = naive_tracker.stats.hash_probes

    # Batched, sharded serving through the worker-pool engine.  Duplicate a
    # slice of the queries so dedup has something to share, as real
    # power-law traffic does.
    sharded = ShardedWordSetIndex.from_corpus(
        generated.corpus, num_shards=num_shards
    )
    batch = queries + queries[: num_queries // 2]
    engine = BatchQueryEngine(sharded)
    start = time.perf_counter()
    batch_results = engine.query_broad_batch(batch)
    batch_seconds = time.perf_counter() - start
    for query, matched in zip(batch, batch_results):
        got = sorted(ad.info.listing_id for ad in matched)
        want = fast_results[queries.index(query)]
        if got != want:
            raise AssertionError("batched results diverged from single-query")

    return {
        "benchmark": "fastpath",
        "config": {
            "num_ads": num_ads,
            "num_queries": num_queries,
            "query_len": query_len,
            "num_shards": num_shards,
            "seed": seed,
        },
        "identical_results": identical,
        "naive": {
            "hash_probes": naive_probes,
            "seconds": naive_seconds,
            "probes_per_query": naive_probes / num_queries,
        },
        "fast": {
            "hash_probes": fast_probes,
            "seconds": fast_seconds,
            "probes_per_query": fast_probes / num_queries,
        },
        "probe_reduction": naive_probes / max(1, fast_probes),
        "wall_clock_speedup": naive_seconds / max(1e-9, fast_seconds),
        "batch": {
            "queries": len(batch),
            "distinct_wordsets": engine.stats.distinct_wordsets,
            "dedup_rate": engine.stats.dedup_rate(),
            "seconds": batch_seconds,
            "qps": len(batch) / max(1e-9, batch_seconds),
        },
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.perf.bench",
        description="Fast-path probe/latency benchmark (writes JSON).",
    )
    parser.add_argument("--out", default="BENCH_PR1.json")
    parser.add_argument("--num-ads", type=int, default=4_000)
    parser.add_argument("--num-queries", type=int, default=120)
    parser.add_argument("--query-len", type=int, default=12)
    parser.add_argument("--num-shards", type=int, default=4)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    results = run_fastpath_bench(
        num_ads=args.num_ads,
        num_queries=args.num_queries,
        query_len=args.query_len,
        num_shards=args.num_shards,
        seed=args.seed,
    )
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(
        f"probe reduction: {results['probe_reduction']:.1f}x  "
        f"wall-clock speedup: {results['wall_clock_speedup']:.1f}x  "
        f"batch qps: {results['batch']['qps']:,.0f}"
    )
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
