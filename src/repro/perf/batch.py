"""Batched query serving: dedup shared work, fan out across shards.

Production sponsored-search frontends aggregate concurrent requests into
micro-batches.  Within one batch two structural savings apply:

* **word-set dedup** — broad match only sees the query's word-set, and
  power-law traffic repeats the head queries constantly, so a batch
  usually contains far fewer distinct word-sets than queries.  Each
  distinct set is probed once and the result fanned back to every
  position that asked for it.
* **shard-parallel scatter** — against a
  :class:`~repro.core.sharded.ShardedWordSetIndex`, each shard's probe
  pass over the deduplicated batch runs on a worker-pool thread.  Results
  are gathered in shard order, so the per-query union is identical to the
  sequential scatter-gather.

The engine works with any :class:`~repro.core.protocols.RetrievalIndex`
(hash index, trie, cached, compressed); shard fan-out engages when the
structure has a ``shards`` attribute.
"""

from __future__ import annotations

import os
from collections.abc import Sequence
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from repro.core.ads import Advertisement
from repro.core.matching import MatchType
from repro.core.protocols import RetrievalIndex
from repro.core.queries import Query
from repro.kernels import engaged as _kernels_engaged
from repro.obs.registry import MetricsRegistry, active_or_none
from repro.resilience.deadline import Deadline, DegradedReason


@dataclass(slots=True)
class BatchStats:
    """Aggregate counters over every batch the engine processed."""

    batches: int = 0
    queries: int = 0
    distinct_wordsets: int = 0

    def dedup_rate(self) -> float:
        """Fraction of queries answered from another query's probe pass."""
        if not self.queries:
            return 0.0
        return 1.0 - self.distinct_wordsets / self.queries


class BatchQueryEngine:
    """Deduplicating, shard-parallel batch frontend over a retrieval
    structure.

    Parameters
    ----------
    index:
        Any :class:`~repro.core.protocols.RetrievalIndex`.  A ``shards``
        attribute (list of per-shard indexes) enables worker-pool fan-out.
    max_workers:
        Worker-pool width for shard fan-out; defaults to
        ``min(num_shards, cpu_count)``.  ``1`` forces sequential scatter.
    obs:
        Optional :class:`~repro.obs.registry.MetricsRegistry` recording
        batch counters (``batch.batches``, ``batch.queries``,
        ``batch.distinct_wordsets``) and the ``span.batch`` histogram.
    """

    def __init__(
        self,
        index: RetrievalIndex,
        max_workers: int | None = None,
        obs: MetricsRegistry | None = None,
    ) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.index = index
        self.max_workers = max_workers
        self.stats = BatchStats()
        self._last_distinct = 0
        self._obs: MetricsRegistry | None = None
        self.bind_obs(obs)

    def bind_obs(self, obs: MetricsRegistry | None) -> None:
        """Attach (or detach, with ``None``) a metrics registry."""
        obs = active_or_none(obs)
        self._obs = obs
        if obs is not None:
            obs.counter("batch.batches", help="Micro-batches processed")
            obs.counter("batch.queries", help="Queries across all batches")
            obs.counter(
                "batch.distinct_wordsets",
                help="Distinct retrieval keys actually probed",
            )

    # ------------------------------------------------------------------ #

    def query_broad_batch(
        self, queries: Sequence[Query], deadline: Deadline | None = None
    ) -> list[list[Advertisement]]:
        """Broad-match every query; one independent result list per input
        position, in input order."""
        return self.query_batch(queries, MatchType.BROAD, deadline)

    def query_batch(
        self,
        queries: Sequence[Query],
        match_type: MatchType,
        deadline: Deadline | None = None,
    ) -> list[list[Advertisement]]:
        """Process a batch under any match semantics.

        Broad match dedups on the word-set; phrase and exact match verify
        token order, so they dedup on the exact token sequence instead.
        A ``deadline`` covers the whole batch: probing stops between
        representatives once it expires, and unprobed positions get empty
        result lists with the budget flagged partial — never a silent
        half-answer.
        """
        obs = self._obs
        if obs is None:
            return self._run_batch(queries, match_type, deadline)
        with obs.span("batch"):
            results = self._run_batch(queries, match_type, deadline)
        obs.counter("batch.batches").inc()
        obs.counter("batch.queries").inc(len(results))
        obs.counter("batch.distinct_wordsets").inc(self._last_distinct)
        return results

    def _run_batch(
        self,
        queries: Sequence[Query],
        match_type: MatchType,
        deadline: Deadline | None = None,
    ) -> list[list[Advertisement]]:
        queries = list(queries)
        if match_type is MatchType.BROAD:
            key_of = _wordset_key
        else:
            key_of = _token_key
        groups: dict[object, list[int]] = {}
        for position, query in enumerate(queries):
            groups.setdefault(key_of(query), []).append(position)
        # Deterministic processing order: sorted keys keep similar word-sets
        # adjacent (shared memoized hash contributions stay hot) and make
        # traces reproducible across runs regardless of set iteration order.
        ordered_keys = sorted(groups, key=sorted)
        representatives = [queries[groups[key][0]] for key in ordered_keys]

        shards = getattr(self.index, "shards", None)
        if shards:
            per_rep = self._scatter_shards(
                shards, representatives, match_type, deadline
            )
        else:
            per_rep = self._probe_representatives(
                self.index, representatives, match_type, deadline
            )

        results: list[list[Advertisement]] = [[] for _ in queries]
        for key, matched in zip(ordered_keys, per_rep):
            positions = groups[key]
            # The representative's slate is a fresh list owned by this
            # batch — hand it to the first asker and copy only for
            # duplicate positions, so a dedup hit costs no allocation.
            results[positions[0]] = matched
            for position in positions[1:]:
                results[position] = list(matched)
        self.stats.batches += 1
        self.stats.queries += len(queries)
        self.stats.distinct_wordsets += len(representatives)
        self._last_distinct = len(representatives)
        return results

    # ------------------------------------------------------------------ #

    def _probe_representatives(
        self,
        index: RetrievalIndex,
        representatives: Sequence[Query],
        match_type: MatchType,
        deadline: Deadline | None = None,
    ) -> list[list[Advertisement]]:
        """Probe every deduplicated representative against one index.

        When the :mod:`repro.kernels` fast path is engaged the whole
        columnar batch is handed to the index's ``query_kernel_batch``
        in one call; otherwise the scalar per-query loop runs with its
        between-representative deadline checks.
        """
        if _kernels_engaged(index, deadline) is not None:
            return index.query_kernel_batch(  # type: ignore[attr-defined]
                representatives, match_type, deadline
            )
        out: list[list[Advertisement]] = []
        for query in representatives:
            if deadline is not None and deadline.expired():
                deadline.mark_partial(DegradedReason.DEADLINE)
                out.append([])
                continue
            out.append(self._query_one(index, query, match_type, deadline))
        return out

    def _scatter_shards(
        self,
        shards: Sequence,
        representatives: Sequence[Query],
        match_type: MatchType,
        deadline: Deadline | None = None,
    ) -> list[list[Advertisement]]:
        """Run every shard over the whole deduplicated batch, one shard per
        worker, and gather per-query unions in shard order.  Each worker
        receives the same columnar probe batch; shards on the kernel
        fast path answer it in bulk."""

        def run_shard(shard) -> list[list[Advertisement]]:
            return self._probe_representatives(
                shard, representatives, match_type, deadline
            )

        workers = self.max_workers
        if workers is None:
            workers = min(len(shards), os.cpu_count() or 1)
        if workers <= 1 or len(shards) == 1:
            per_shard = [run_shard(shard) for shard in shards]
        else:
            with ThreadPoolExecutor(max_workers=workers) as pool:
                per_shard = list(pool.map(run_shard, shards))
        return [
            [
                ad
                for shard_results in per_shard
                for ad in shard_results[i]
            ]
            for i in range(len(representatives))
        ]

    @staticmethod
    def _query_one(
        index: RetrievalIndex,
        query: Query,
        match_type: MatchType,
        deadline: Deadline | None = None,
    ) -> list[Advertisement]:
        if deadline is not None and getattr(
            index, "supports_deadline", False
        ):
            return index.query(query, match_type, deadline)
        return index.query(query, match_type)


def _wordset_key(query: Query) -> frozenset[str]:
    return query.words


def _token_key(query: Query) -> tuple[str, ...]:
    return query.tokens
