"""Operation-log persistence: snapshot + append-only journal + compaction.

Full snapshots (:mod:`repro.persist`) are the right format for periodic
re-optimization output, but a serving process that inserts/deletes ads all
day cannot rewrite the corpus on every mutation.  The standard answer is
the one implemented here:

* a **base snapshot** (the `persist` format) written at startup or
  compaction time;
* an **op-log**: one JSON line per mutation (`insert` / `delete`), each
  line carrying a sequence number and a per-record checksum, fsync-friendly
  append-only;
* **recovery** = load snapshot, replay the log in order (torn trailing
  writes are tolerated and reported, matching crash semantics of
  append-only logs; corruption *before* the tail is an error);
* **compaction** = write a fresh snapshot of the live state, truncate the
  log.

``DurableIndex`` wraps a WordSetIndex (or a MaintainedIndex-compatible
structure) with this machinery.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path

from repro.core.ads import AdCorpus, Advertisement
from repro.core.matching import MatchType
from repro.core.queries import Query
from repro.core.wordset_index import WordSetIndex
from repro.optimize.mapping import Mapping
from repro.persist import (
    PersistenceError,
    _ad_from_record,
    _ad_record,
    load_index,
    save_index,
)


def _checksum(payload: str) -> str:
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True, slots=True)
class RecoveryReport:
    """What replay found."""

    replayed_ops: int
    truncated_tail: bool


class DurableIndex:
    """A WordSetIndex with snapshot + op-log durability."""

    def __init__(
        self,
        snapshot_path: str | Path,
        log_path: str | Path,
        corpus: AdCorpus | None = None,
        mapping: Mapping | None = None,
    ) -> None:
        self.snapshot_path = Path(snapshot_path)
        self.log_path = Path(log_path)
        if corpus is not None:
            # Fresh start: write the base snapshot, empty log.
            self._corpus = corpus
            self._mapping = mapping if mapping is not None else Mapping({})
            save_index(self.snapshot_path, corpus, self._mapping)
            self.log_path.write_text("")
            self.recovery = RecoveryReport(replayed_ops=0, truncated_tail=False)
        else:
            self.recovery = self._recover()
        self._rebuild()
        self._sequence = self.recovery.replayed_ops
        self._log_handle = self.log_path.open("a", encoding="utf-8")

    # ------------------------------------------------------------------ #
    # Recovery

    def _recover(self) -> RecoveryReport:
        loaded = load_index(self.snapshot_path)
        self._corpus = loaded.corpus
        self._mapping = loaded.mapping
        ads = list(self._corpus)
        replayed = 0
        truncated = False
        if self.log_path.exists():
            for line_number, line in enumerate(
                self.log_path.read_text(encoding="utf-8").splitlines()
            ):
                try:
                    record = json.loads(line)
                    payload = json.dumps(record["op"], sort_keys=True)
                    if record["crc"] != _checksum(payload):
                        raise ValueError("bad checksum")
                    if record["seq"] != replayed:
                        raise ValueError("sequence gap")
                except (ValueError, KeyError, json.JSONDecodeError) as exc:
                    remaining = (
                        self.log_path.read_text(encoding="utf-8")
                        .splitlines()[line_number + 1:]
                    )
                    if remaining:
                        raise PersistenceError(
                            f"op-log corrupt at line {line_number + 1} with "
                            f"valid records after it: {exc}"
                        ) from exc
                    truncated = True  # torn tail write: tolerated
                    break
                op = record["op"]
                if op["kind"] == "insert":
                    ads.append(_ad_from_record(op["ad"]))
                elif op["kind"] == "delete":
                    victim = _ad_from_record(op["ad"])
                    for i, existing in enumerate(ads):
                        if existing == victim:
                            del ads[i]
                            break
                else:
                    raise PersistenceError(f"unknown op kind {op['kind']!r}")
                replayed += 1
        self._corpus = AdCorpus(ads)
        return RecoveryReport(replayed_ops=replayed, truncated_tail=truncated)

    def _rebuild(self) -> None:
        # Incremental build: ads replayed from the log may have word-sets
        # the snapshot's mapping has never seen (including long ones that
        # need a synthesized short locator), so each ad goes through the
        # same local placement heuristic as a live insert.
        self._index = WordSetIndex(max_words=self._mapping.max_words)
        for ad in self._corpus:
            self._index.insert(ad, locator=self._locator_for_new(ad))

    # ------------------------------------------------------------------ #
    # Mutations (logged)

    def _append(self, op: dict) -> None:
        payload = json.dumps(op, sort_keys=True)
        record = {"seq": self._sequence, "op": op, "crc": _checksum(payload)}
        self._log_handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._log_handle.flush()
        self._sequence += 1

    def insert(self, ad: Advertisement) -> None:
        self._append({"kind": "insert", "ad": _ad_record(ad)})
        self._corpus.add(ad)
        self._index.insert(ad, locator=self._locator_for_new(ad))

    def _locator_for_new(self, ad: Advertisement) -> frozenset[str]:
        """Same local heuristic as online maintenance: mapped locator if
        known, identity if short, else best existing / synthesized short
        locator."""
        from repro.optimize.remap import (
            _best_existing_locator,
            _rarest_words_locator,
        )

        placement = self._index.placement()
        if ad.words in placement:
            return placement[ad.words]
        locator = self._mapping.locator_for(ad.words)
        max_words = self._mapping.max_words
        if max_words is None or len(locator) <= max_words:
            return locator
        existing = _best_existing_locator(
            ad.words, set(placement.values()), max_words
        )
        if existing is not None:
            return existing
        return _rarest_words_locator(ad.words, self._corpus, max_words)

    def delete(self, ad: Advertisement) -> bool:
        removed = self._index.delete(ad)
        if removed:
            self._append({"kind": "delete", "ad": _ad_record(ad)})
            remaining = list(self._corpus)
            for i, existing in enumerate(remaining):
                if existing == ad:
                    del remaining[i]
                    break
            self._corpus = AdCorpus(remaining)
        return removed

    # ------------------------------------------------------------------ #

    def query(
        self, query: Query, match_type: MatchType = MatchType.BROAD
    ) -> list[Advertisement]:
        return self._index.query(query, match_type)

    def query_broad(self, query: Query) -> list[Advertisement]:
        """Alias retained for symmetry with the index surface."""
        return self._index.query(query)

    def stats(self):
        return self._index.stats()

    def __len__(self) -> int:
        return len(self._index)

    @property
    def corpus(self) -> AdCorpus:
        return self._corpus

    @property
    def log_ops(self) -> int:
        return self._sequence

    def compact(self, mapping: Mapping | None = None) -> None:
        """Write a fresh snapshot of live state; truncate the log.

        Pass a new ``mapping`` to fold a re-optimization into the
        compaction (the paper's periodic reopt naturally lands here).
        """
        if mapping is not None:
            self._mapping = mapping
            self._rebuild()
        save_index(self.snapshot_path, self._corpus, self._mapping)
        self._log_handle.close()
        self.log_path.write_text("")
        self._log_handle = self.log_path.open("a", encoding="utf-8")
        self._sequence = 0

    def close(self) -> None:
        self._log_handle.close()
