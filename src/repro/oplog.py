"""Operation-log persistence: snapshot + append-only journal + compaction.

Full snapshots (:mod:`repro.persist`) are the right format for periodic
re-optimization output, but a serving process that inserts/deletes ads all
day cannot rewrite the corpus on every mutation.  The standard answer is
the one implemented here:

* a **base snapshot** (the `persist` format) written at startup or
  compaction time, carrying a **generation id** that is bumped on every
  compaction;
* an **op-log**: one JSON line per mutation (`insert` / `delete`), each
  line carrying a sequence number, the generation it belongs to, and a
  per-record checksum, fsync-friendly append-only;
* **recovery** = load snapshot, replay the log in order.  A torn trailing
  write is tolerated, reported, **and truncated** so the log is clean
  before it is reopened for append; records from an older generation are
  stale left-overs of a compaction that crashed between snapshot rename
  and log truncation, and are skipped rather than replayed onto the
  fresh snapshot; corruption *before* the tail is an error;
* **compaction** = write a fresh snapshot (next generation) of the live
  state, then truncate the log — crash-safe at every step because the
  generation check makes the truncation idempotent.

Mutations follow a single **WAL discipline**: validate, then log, then
apply to memory — for ``insert`` *and* ``delete`` — so a crash between
the two steps always errs the same direction (the op is durable in the
log and will be applied on recovery; memory is never ahead of the log).

``DurableIndex`` wraps a WordSetIndex (or a MaintainedIndex-compatible
structure) with this machinery.  Every step is instrumented with
:mod:`repro.faults` crashpoints (catalog in ``docs/durability.md``) and
reports into :mod:`repro.obs` (``recoveries``, ``stale_ops_skipped``,
``durability.*`` counters) when a registry is attached.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path

from repro.core.ads import AdCorpus, Advertisement
from repro.core.matching import MatchType
from repro.core.queries import Query
from repro.core.wordset_index import WordSetIndex
from repro.faults.injector import FaultInjector, active_injector
from repro.obs.registry import MetricsRegistry, active_or_none
from repro.optimize.mapping import Mapping
from repro.persist import (
    PersistenceError,
    _ad_from_record,
    _ad_record,
    load_index,
    save_index,
)


def _checksum(payload: str) -> str:
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def _record_crc(seq: int, gen: int, payload: str) -> str:
    """Checksum binding the op payload to its sequence and generation,
    so a bit flip in *any* field of the record is caught."""
    return _checksum(f"{seq}:{gen}:{payload}")


@dataclass(frozen=True, slots=True)
class RecoveryReport:
    """What replay found."""

    replayed_ops: int
    truncated_tail: bool
    #: Records skipped because their generation predates the snapshot's
    #: (left-overs of a compaction that crashed before log truncation).
    stale_ops_skipped: int = 0
    #: The snapshot generation recovery loaded.
    generation: int = 0


class DurableIndex:
    """A WordSetIndex with snapshot + op-log durability.

    Parameters
    ----------
    snapshot_path, log_path:
        Where the base snapshot and the op-log live.
    corpus, mapping:
        Pass a corpus for a fresh start (writes snapshot generation 0 and
        an empty log); omit it to recover from the paths.
    obs:
        Optional :class:`~repro.obs.registry.MetricsRegistry` for the
        durability counters.
    faults:
        Optional :class:`~repro.faults.FaultInjector`; every durability
        step visits a named crashpoint through it.
    fsync:
        When True, every appended op is fsynced before the mutation is
        applied (full write-ahead durability; the default trades the
        fsync for OS-crash — not process-crash — durability, the
        standard serving configuration).
    """

    def __init__(
        self,
        snapshot_path: str | Path,
        log_path: str | Path,
        corpus: AdCorpus | None = None,
        mapping: Mapping | None = None,
        *,
        obs: MetricsRegistry | None = None,
        faults: FaultInjector | None = None,
        fsync: bool = False,
    ) -> None:
        self.snapshot_path = Path(snapshot_path)
        self.log_path = Path(log_path)
        self._faults = active_injector(faults)
        self._fsync = fsync
        self._obs = active_or_none(obs)
        if self._obs is not None:
            self._obs.counter("recoveries", help="Successful log recoveries")
            self._obs.counter(
                "stale_ops_skipped",
                help="Stale-generation op-log records skipped on replay",
            )
            self._obs.counter(
                "durability.replayed_ops", help="Op-log records replayed"
            )
            self._obs.counter(
                "durability.torn_tails_truncated",
                help="Torn trailing log writes truncated on recovery",
            )
            self._obs.counter(
                "durability.compactions", help="Completed compactions"
            )
        if corpus is not None:
            # Fresh start: write the base snapshot, empty log.
            self._corpus = corpus
            self._mapping = mapping if mapping is not None else Mapping({})
            self._generation = 0
            save_index(
                self.snapshot_path,
                corpus,
                self._mapping,
                generation=0,
                faults=self._faults,
            )
            self.log_path.write_text("")
            self.recovery = RecoveryReport(
                replayed_ops=0, truncated_tail=False
            )
        else:
            self.recovery = self._recover()
        self._rebuild()
        self._sequence = self.recovery.replayed_ops
        self._log_handle = self.log_path.open("a", encoding="utf-8")

    # ------------------------------------------------------------------ #
    # Recovery

    def _recover(self) -> RecoveryReport:
        loaded = load_index(self.snapshot_path)
        self._corpus = loaded.corpus
        self._mapping = loaded.mapping
        self._generation = loaded.generation
        self._faults.crashpoint("recover.snapshot_loaded")
        ads = list(self._corpus)
        replayed = 0
        stale = 0
        truncated = False
        live_lines: list[str] = []
        raw = ""
        if self.log_path.exists():
            # Read the whole log exactly once; every decision below works
            # on this in-memory copy, so a concurrent writer (or the
            # quadratic re-read the old code did per bad line) cannot
            # change the evidence between checks.
            raw = self.log_path.read_text(encoding="utf-8")
        lines = raw.splitlines()
        ends_complete = raw.endswith("\n")
        for line_number, line in enumerate(lines):
            is_tail = line_number == len(lines) - 1
            try:
                if is_tail and not ends_complete:
                    # The newline is the commit mark of an append: a
                    # final line without one is torn by definition, even
                    # if its prefix happens to parse.
                    raise ValueError("torn trailing write (no newline)")
                record = json.loads(line)
                payload = json.dumps(record["op"], sort_keys=True)
                if "gen" in record:
                    generation = int(record["gen"])
                    expected_crc = _record_crc(
                        int(record["seq"]), generation, payload
                    )
                else:
                    # Pre-generation log format: payload-only checksum,
                    # implicitly the snapshot's generation.
                    generation = self._generation
                    expected_crc = _checksum(payload)
                if record["crc"] != expected_crc:
                    raise ValueError("bad checksum")
                if generation > self._generation:
                    raise ValueError(
                        f"record from future generation {generation} "
                        f"(snapshot is {self._generation})"
                    )
                if generation < self._generation:
                    # Stale left-over of an interrupted compaction: the
                    # snapshot already contains this op's effect.
                    stale += 1
                    continue
                if record["seq"] != replayed:
                    raise ValueError("sequence gap")
            except (ValueError, KeyError, TypeError, json.JSONDecodeError) as exc:
                if not is_tail:
                    raise PersistenceError(
                        f"op-log corrupt at line {line_number + 1} with "
                        f"valid records after it: {exc}"
                    ) from exc
                truncated = True  # torn tail write: tolerated, truncated
                break
            op = record["op"]
            if op["kind"] == "insert":
                ads.append(_ad_from_record(op["ad"]))
            elif op["kind"] == "delete":
                victim = _ad_from_record(op["ad"])
                for i, existing in enumerate(ads):
                    if existing == victim:
                        del ads[i]
                        break
            else:
                raise PersistenceError(f"unknown op kind {op['kind']!r}")
            replayed += 1
            live_lines.append(line)
        if truncated or stale:
            # The on-disk log disagrees with what replay accepted (torn
            # tail and/or stale records).  Rewrite it to exactly the live
            # records *before* it is reopened for append — otherwise new
            # records would land after the corrupt line and the next
            # recovery would refuse to start.
            self._rewrite_log(live_lines)
        self._corpus = AdCorpus(ads)
        if self._obs is not None:
            self._obs.counter("recoveries").inc()
            self._obs.counter("durability.replayed_ops").inc(replayed)
            if stale:
                self._obs.counter("stale_ops_skipped").inc(stale)
            if truncated:
                self._obs.counter("durability.torn_tails_truncated").inc()
        return RecoveryReport(
            replayed_ops=replayed,
            truncated_tail=truncated,
            stale_ops_skipped=stale,
            generation=self._generation,
        )

    def _rewrite_log(self, lines: list[str]) -> None:
        """Atomically replace the log with exactly ``lines`` (write a
        temp, fsync, rename) — a crash mid-rewrite must not lose the
        valid records recovery just accepted."""
        temp = self.log_path.with_name(
            f".{self.log_path.name}.{os.getpid()}.rewrite.tmp"
        )
        with temp.open("w", encoding="utf-8") as handle:
            handle.write("".join(line + "\n" for line in lines))
            handle.flush()
            os.fsync(handle.fileno())
        temp.replace(self.log_path)
        self._faults.crashpoint("recover.log_rewritten")

    def _rebuild(self) -> None:
        # Incremental build: ads replayed from the log may have word-sets
        # the snapshot's mapping has never seen (including long ones that
        # need a synthesized short locator), so each ad goes through the
        # same local placement heuristic as a live insert.
        self._index = WordSetIndex(max_words=self._mapping.max_words)
        for ad in self._corpus:
            self._index.insert(ad, locator=self._locator_for_new(ad))

    # ------------------------------------------------------------------ #
    # Mutations (logged)

    def _append(self, op: dict) -> None:
        payload = json.dumps(op, sort_keys=True)
        record = {
            "seq": self._sequence,
            "gen": self._generation,
            "op": op,
            "crc": _record_crc(self._sequence, self._generation, payload),
        }
        line = json.dumps(record, sort_keys=True) + "\n"
        self._faults.crashpoint("oplog.append.start")
        if self._faults.is_armed("oplog.append.torn"):
            # Simulate the power dying halfway through the write: half
            # the record reaches the file, then the crashpoint fires.
            self._log_handle.write(line[: max(1, len(line) // 2)])
            self._log_handle.flush()
            self._faults.crashpoint("oplog.append.torn")
        self._log_handle.write(line)
        self._log_handle.flush()
        if self._fsync:
            os.fsync(self._log_handle.fileno())
        self._faults.crashpoint("oplog.append.synced")
        self._sequence += 1

    def insert(self, ad: Advertisement) -> None:
        """Insert under the WAL discipline: validate (placement is
        computable), log, then apply to memory."""
        locator = self._locator_for_new(ad)
        self._append({"kind": "insert", "ad": _ad_record(ad)})
        self._faults.crashpoint("oplog.insert.logged")
        self._corpus.add(ad)
        self._index.insert(ad, locator=locator)

    def _locator_for_new(self, ad: Advertisement) -> frozenset[str]:
        """Same local heuristic as online maintenance: mapped locator if
        known, identity if short, else best existing / synthesized short
        locator."""
        from repro.optimize.remap import (
            _best_existing_locator,
            _rarest_words_locator,
        )

        placement = self._index.placement()
        if ad.words in placement:
            return placement[ad.words]
        locator = self._mapping.locator_for(ad.words)
        max_words = self._mapping.max_words
        if max_words is None or len(locator) <= max_words:
            return locator
        existing = _best_existing_locator(
            ad.words, set(placement.values()), max_words
        )
        if existing is not None:
            return existing
        return _rarest_words_locator(ad.words, self._corpus, max_words)

    def delete(self, ad: Advertisement) -> bool:
        """Delete under the WAL discipline: validate membership without
        mutating, log, then apply to memory (the pre-fix code mutated the
        index *before* logging — a crash between the steps lost the
        delete from the log while memory had already applied it)."""
        contains = getattr(self._index, "contains", None)
        if contains is not None:
            present = contains(ad)
        else:
            present = any(existing == ad for existing in self._corpus)
        if not present:
            return False
        self._append({"kind": "delete", "ad": _ad_record(ad)})
        self._faults.crashpoint("oplog.delete.logged")
        self._index.delete(ad)
        remaining = list(self._corpus)
        for i, existing in enumerate(remaining):
            if existing == ad:
                del remaining[i]
                break
        self._corpus = AdCorpus(remaining)
        return True

    # ------------------------------------------------------------------ #

    def query(
        self, query: Query, match_type: MatchType = MatchType.BROAD
    ) -> list[Advertisement]:
        return self._index.query(query, match_type)

    def stats(self):
        return self._index.stats()

    def __len__(self) -> int:
        return len(self._index)

    @property
    def corpus(self) -> AdCorpus:
        return self._corpus

    @property
    def index(self) -> WordSetIndex:
        """The live in-memory index (read-only uses: packing, stats)."""
        return self._index

    @property
    def log_ops(self) -> int:
        return self._sequence

    @property
    def generation(self) -> int:
        """The current snapshot generation (bumped by compaction)."""
        return self._generation

    def compact(self, mapping: Mapping | None = None) -> None:
        """Write a fresh snapshot of live state; truncate the log.

        Crash-safe: the new snapshot carries generation ``g+1``, so if
        the process dies after the snapshot rename but before the log
        truncation, recovery recognises every surviving log record as
        generation ``g`` — stale — and skips it instead of replaying it
        onto a snapshot that already contains its effect (the pre-fix
        behaviour, which duplicated every logged insert).

        Pass a new ``mapping`` to fold a re-optimization into the
        compaction (the paper's periodic reopt naturally lands here).
        """
        if mapping is not None:
            self._mapping = mapping
            self._rebuild()
        self._faults.crashpoint("compact.start")
        new_generation = self._generation + 1
        save_index(
            self.snapshot_path,
            self._corpus,
            self._mapping,
            generation=new_generation,
            faults=self._faults,
        )
        self._faults.crashpoint("compact.snapshot_written")
        self._log_handle.close()
        self.log_path.write_text("")
        self._faults.crashpoint("compact.log_truncated")
        self._log_handle = self.log_path.open("a", encoding="utf-8")
        self._sequence = 0
        self._generation = new_generation
        if self._obs is not None:
            self._obs.counter("durability.compactions").inc()

    def close(self) -> None:
        self._log_handle.close()
