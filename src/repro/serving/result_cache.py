"""An LRU result cache in front of the broad-match index.

Search query frequencies follow a power law (Section V of the paper), so a
small cache keyed on the query's *word-set* absorbs a large fraction of
retrieval work.  Correctness requires invalidation on any corpus mutation;
since an inserted/deleted ad can affect any cached query containing its
words, the cache flushes wholesale on mutation (mutations are rare relative
to queries — the same asymmetry the paper leans on for deletions).

``CachedIndex`` wraps any structure exposing ``query_broad`` (and
optionally ``query``/``insert``/``delete``) and is a true drop-in for
:class:`repro.serving.server.AdServer`'s pluggable-index contract: all
three match types are cached (phrase/exact keyed on the exact token
sequence, since they verify word order), ``stats()``/``__len__`` and
mutations delegate, and unknown attributes fall through to the wrapped
structure.  Cache counters live on :attr:`CachedIndex.cache_stats`.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.core.ads import Advertisement
from repro.core.matching import MatchType
from repro.core.queries import Query

#: Cache key: broad match folds to the word-set; phrase/exact verify token
#: order, so they key on the exact token sequence.
_CacheKey = tuple[MatchType, object]


@dataclass(slots=True)
class CacheStats:
    hits: int = 0
    misses: int = 0
    invalidations: int = 0

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class CachedIndex:
    """LRU query-result cache over a broad-match structure."""

    def __init__(self, index, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.index = index
        self.capacity = capacity
        self._cache: OrderedDict[_CacheKey, list[Advertisement]] = (
            OrderedDict()
        )
        self.cache_stats = CacheStats()

    # ------------------------------------------------------------------ #
    # Queries

    def query_broad(self, query: Query) -> list[Advertisement]:
        return self.query(query, MatchType.BROAD)

    def query(self, query: Query, match_type: MatchType) -> list[Advertisement]:
        """Process a query under any match semantics, through the cache."""
        if match_type is MatchType.BROAD:
            key: _CacheKey = (match_type, query.words)
        else:
            key = (match_type, query.tokens)
        cached = self._cache.get(key)
        if cached is not None:
            self._cache.move_to_end(key)
            self.cache_stats.hits += 1
            return list(cached)
        self.cache_stats.misses += 1
        if match_type is MatchType.BROAD:
            result = self.index.query_broad(query)
        else:
            result = self.index.query(query, match_type)
        self._cache[key] = list(result)
        if len(self._cache) > self.capacity:
            self._cache.popitem(last=False)
        return result

    def query_broad_batch(self, queries) -> list[list[Advertisement]]:
        """Batched broad match through the cache: each distinct word-set
        pays at most one miss, repeats within the batch hit."""
        return [self.query_broad(query) for query in queries]

    # ------------------------------------------------------------------ #
    # Mutations pass through and invalidate.

    def insert(self, ad: Advertisement, locator=None, **kwargs) -> None:
        self.index.insert(ad, locator=locator, **kwargs)
        self.invalidate()

    def delete(self, ad: Advertisement) -> bool:
        removed = self.index.delete(ad)
        if removed:
            self.invalidate()
        return removed

    def invalidate(self) -> None:
        """Drop every cached result (corpus changed)."""
        if self._cache:
            self._cache.clear()
        self.cache_stats.invalidations += 1

    # ------------------------------------------------------------------ #
    # Delegation

    def stats(self):
        """Structural statistics of the wrapped index (not cache counters —
        those are :attr:`cache_stats`)."""
        return self.index.stats()

    def __len__(self) -> int:
        return len(self.index)

    def __getattr__(self, name: str):
        # True drop-in behaviour: anything the cache layer does not define
        # (``nodes``, ``placement``, ``check_invariants``, ``probe_plan``,
        # ...) falls through to the wrapped structure.  Dunder/private
        # lookups are excluded so failed internal protocol probes surface
        # normally.
        if name.startswith("_"):
            raise AttributeError(name)
        return getattr(self.index, name)

    @property
    def cached_queries(self) -> int:
        return len(self._cache)
