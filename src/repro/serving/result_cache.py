"""An LRU result cache in front of the broad-match index.

Search query frequencies follow a power law (Section V of the paper), so a
small cache keyed on the query's *word-set* absorbs a large fraction of
retrieval work.  Correctness requires invalidation on any corpus mutation;
since an inserted/deleted ad can affect any cached query containing its
words, the cache flushes wholesale on mutation (mutations are rare relative
to queries — the same asymmetry the paper leans on for deletions).

``CachedIndex`` wraps any :class:`~repro.core.protocols.RetrievalIndex`
(and optionally ``insert``/``delete``) and is itself a conforming
``RetrievalIndex``, a true drop-in for
:class:`repro.serving.server.AdServer`: all three match types are cached
(phrase/exact keyed on the exact token sequence, since they verify word
order), ``stats()``/``__len__`` and mutations delegate, and unknown
attributes fall through to the wrapped structure.  Cache counters live on
:attr:`CachedIndex.cache_stats` and — when an ``obs`` registry is attached
— on the shared ``cache.hits`` / ``cache.misses`` / ``cache.invalidations``
counters plus the ``span.cache`` lookup-latency histogram.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from time import perf_counter

from repro.core.ads import Advertisement
from repro.core.matching import MatchType
from repro.core.protocols import RetrievalIndex
from repro.core.queries import Query
from repro.obs.registry import MetricsRegistry, active_or_none
from repro.resilience.deadline import Deadline

#: Cache key: broad match folds to the word-set; phrase/exact verify token
#: order, so they key on the exact token sequence.
_CacheKey = tuple[MatchType, object]


@dataclass(slots=True)
class CacheStats:
    hits: int = 0
    misses: int = 0
    invalidations: int = 0
    #: Stale entries served through :meth:`CachedIndex.query_stale`
    #: (overload fallback — see :mod:`repro.resilience`).
    stale_hits: int = 0

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class CachedIndex:
    """LRU query-result cache over any retrieval structure.

    Parameters
    ----------
    index:
        The wrapped :class:`~repro.core.protocols.RetrievalIndex`.
    capacity:
        Maximum number of cached result lists (LRU eviction).
    obs:
        Optional :class:`~repro.obs.registry.MetricsRegistry` recording
        cache hit/miss/invalidation counters and lookup-latency spans.
    """

    def __init__(
        self,
        index: RetrievalIndex,
        capacity: int = 1024,
        obs: MetricsRegistry | None = None,
        stale_capacity: int | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if stale_capacity is not None and stale_capacity < 0:
            raise ValueError("stale_capacity must be >= 0")
        self.index = index
        self.capacity = capacity
        self._cache: OrderedDict[_CacheKey, list[Advertisement]] = (
            OrderedDict()
        )
        # Stale store: invalidated entries demoted here instead of
        # discarded, so overload degradation can trade freshness for
        # availability (``query_stale``).  Bounded separately; entries
        # may reflect a pre-mutation corpus by construction.
        self.stale_capacity = (
            capacity if stale_capacity is None else stale_capacity
        )
        self._stale: OrderedDict[_CacheKey, list[Advertisement]] = (
            OrderedDict()
        )
        self.cache_stats = CacheStats()
        self._obs: MetricsRegistry | None = None
        self.bind_obs(obs)

    def bind_obs(self, obs: MetricsRegistry | None) -> None:
        """Attach (or detach, with ``None``) a metrics registry."""
        obs = active_or_none(obs)
        self._obs = obs
        if obs is not None:
            obs.counter("cache.hits", help="Result-cache hits")
            obs.counter("cache.misses", help="Result-cache misses")
            obs.counter(
                "cache.invalidations",
                help="Wholesale cache flushes on corpus mutation",
            )
            obs.counter(
                "cache.stale_hits",
                help="Stale results served as overload fallback",
            )

    # ------------------------------------------------------------------ #
    # Queries

    def query(
        self,
        query: Query,
        match_type: MatchType = MatchType.BROAD,
        deadline: Deadline | None = None,
    ) -> list[Advertisement]:
        """Process a query under any match semantics, through the cache.

        A ``deadline`` threads through to the wrapped index when it
        advertises ``supports_deadline``.  A result the budget flagged
        partial is returned but **never cached** — a cache hit must mean
        the complete answer, not an artifact of one overloaded moment.
        """
        obs = self._obs
        if match_type is MatchType.BROAD:
            key: _CacheKey = (match_type, query.words)
        else:
            key = (match_type, query.tokens)
        started = perf_counter() if obs is not None else 0.0
        cached = self._cache.get(key)
        if cached is not None:
            self._cache.move_to_end(key)
            self.cache_stats.hits += 1
            if obs is not None:
                obs.counter("cache.hits").inc()
                obs.histogram("span.cache").observe(
                    (perf_counter() - started) * 1e3
                )
            return list(cached)
        self.cache_stats.misses += 1
        if obs is not None:
            obs.counter("cache.misses").inc()
            obs.histogram("span.cache").observe(
                (perf_counter() - started) * 1e3
            )
        if deadline is not None and getattr(
            self.index, "supports_deadline", False
        ):
            result = self.index.query(query, match_type, deadline)
        else:
            result = self.index.query(query, match_type)
        if deadline is not None and deadline.partial:
            return result
        self._cache[key] = list(result)
        if len(self._cache) > self.capacity:
            self._cache.popitem(last=False)
        return result

    def query_stale(
        self, query: Query, match_type: MatchType = MatchType.BROAD
    ) -> list[Advertisement] | None:
        """A possibly-stale cached result, or ``None`` if never cached.

        The overload fallback (see :mod:`repro.resilience`): checks the
        live cache first, then the stale store populated by
        :meth:`invalidate`.  Never touches the wrapped index.
        """
        if match_type is MatchType.BROAD:
            key: _CacheKey = (match_type, query.words)
        else:
            key = (match_type, query.tokens)
        entry = self._cache.get(key)
        if entry is None:
            entry = self._stale.get(key)
        if entry is None:
            return None
        self.cache_stats.stale_hits += 1
        if self._obs is not None:
            self._obs.counter("cache.stale_hits").inc()
        return list(entry)

    def query_broad_batch(self, queries) -> list[list[Advertisement]]:
        """Batched broad match through the cache: each distinct word-set
        pays at most one miss, repeats within the batch hit."""
        return [self.query(query) for query in queries]

    # ------------------------------------------------------------------ #
    # Mutations pass through and invalidate.

    def insert(self, ad: Advertisement, locator=None, **kwargs) -> None:
        self.index.insert(ad, locator=locator, **kwargs)
        self.invalidate()

    def delete(self, ad: Advertisement) -> bool:
        removed = self.index.delete(ad)
        if removed:
            self.invalidate()
        return removed

    def invalidate(self) -> None:
        """Drop every cached result (corpus changed).

        Invalidated entries demote into the bounded stale store rather
        than vanishing, so :meth:`query_stale` can serve them during
        overload.
        """
        if self._cache:
            if self.stale_capacity > 0:
                self._stale.update(self._cache)
                while len(self._stale) > self.stale_capacity:
                    self._stale.popitem(last=False)
            self._cache.clear()
        self.cache_stats.invalidations += 1
        if self._obs is not None:
            self._obs.counter("cache.invalidations").inc()

    # ------------------------------------------------------------------ #
    # Delegation

    def stats(self):
        """Structural statistics of the wrapped index (not cache counters —
        those are :attr:`cache_stats`)."""
        return self.index.stats()

    def __len__(self) -> int:
        return len(self.index)

    def __getattr__(self, name: str):
        # True drop-in behaviour: anything the cache layer does not define
        # (``nodes``, ``placement``, ``check_invariants``, ``probe_plan``,
        # ...) falls through to the wrapped structure.  Dunder/private
        # lookups are excluded so failed internal protocol probes surface
        # normally.
        if name.startswith("_"):
            raise AttributeError(name)
        return getattr(self.index, name)

    @property
    def cached_queries(self) -> int:
        return len(self._cache)

    @property
    def stale_queries(self) -> int:
        return len(self._stale)

    @property
    def supports_deadline(self) -> bool:
        """The cache is deadline-transparent: capability follows the
        wrapped index (defined eagerly so ``__getattr__`` fall-through
        never reports the wrong layer's answer)."""
        return bool(getattr(self.index, "supports_deadline", False))
