"""An LRU result cache in front of the broad-match index.

Search query frequencies follow a power law (Section V of the paper), so a
small cache keyed on the query's *word-set* absorbs a large fraction of
retrieval work.  Correctness requires invalidation on any corpus mutation;
since an inserted/deleted ad can affect any cached query containing its
words, the cache flushes wholesale on mutation (mutations are rare relative
to queries — the same asymmetry the paper leans on for deletions).

``CachedIndex`` wraps any structure exposing ``query_broad`` (and
optionally ``insert``/``delete``), preserving the interchangeable-retrieval
contract of :class:`repro.serving.server.AdServer`.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.core.ads import Advertisement
from repro.core.queries import Query


@dataclass(slots=True)
class CacheStats:
    hits: int = 0
    misses: int = 0
    invalidations: int = 0

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class CachedIndex:
    """LRU query-result cache over a broad-match structure."""

    def __init__(self, index, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.index = index
        self.capacity = capacity
        self._cache: OrderedDict[frozenset[str], list[Advertisement]] = (
            OrderedDict()
        )
        self.stats = CacheStats()

    def query_broad(self, query: Query) -> list[Advertisement]:
        key = query.words
        cached = self._cache.get(key)
        if cached is not None:
            self._cache.move_to_end(key)
            self.stats.hits += 1
            return list(cached)
        self.stats.misses += 1
        result = self.index.query_broad(query)
        self._cache[key] = list(result)
        if len(self._cache) > self.capacity:
            self._cache.popitem(last=False)
        return result

    # Mutations pass through and invalidate.

    def insert(self, ad: Advertisement, **kwargs) -> None:
        self.index.insert(ad, **kwargs)
        self.invalidate()

    def delete(self, ad: Advertisement) -> bool:
        removed = self.index.delete(ad)
        if removed:
            self.invalidate()
        return removed

    def invalidate(self) -> None:
        """Drop every cached result (corpus changed)."""
        if self._cache:
            self._cache.clear()
        self.stats.invalidations += 1

    def __len__(self) -> int:
        return len(self.index)

    @property
    def cached_queries(self) -> int:
        return len(self._cache)
