"""``ServeRequest`` — the one request object the serving stack speaks.

Historically :meth:`~repro.serving.server.AdServer.serve` took a loose
argument list (``query, user_id, priority, deadline``) that every new
serving feature widened.  ``ServeRequest`` collapses that list into a
single dataclass, and — because it round-trips losslessly to plain dicts
and JSON — the same object *is* the wire format of the network serving
tier (:mod:`repro.netserve`): an in-process ``server.serve(request)``
and a frame sent to a remote worker carry exactly the same schema.

Two deadline representations coexist deliberately:

* ``deadline_ms`` — the *relative* budget in milliseconds.  This is the
  only form that serializes: an absolute expiry is meaningless on
  another machine's clock, so the wire carries the remaining budget and
  the receiving worker starts its own :class:`~repro.resilience.deadline
  .Deadline` on receipt.
* ``deadline`` — an in-process :class:`~repro.resilience.deadline
  .Deadline` object for callers that already built one (tests with
  manual clocks, the batch engine).  It wins over ``deadline_ms`` and is
  **never** serialized.

The dict codecs for :class:`~repro.core.ads.Advertisement` and the
auction outcome live here too, so
:meth:`~repro.serving.server.ServeResult.to_dict` and the network tier
share one encoding of ad identity.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from repro.core.ads import AdInfo, Advertisement
from repro.core.queries import Query
from repro.resilience.admission import Priority
from repro.resilience.deadline import ClockMs, Deadline

__all__ = [
    "ServeRequest",
    "WireSchemaError",
    "ad_from_dict",
    "ad_to_dict",
]


class WireSchemaError(ValueError):
    """A dict/JSON payload does not decode into a valid schema object."""


def ad_to_dict(ad: Advertisement) -> dict[str, Any]:
    """Encode one ad's full identity (phrase order preserved)."""
    info = ad.info
    encoded: dict[str, Any] = {
        "phrase": list(ad.phrase),
        "listing_id": info.listing_id,
        "campaign_id": info.campaign_id,
        "bid_price_micros": info.bid_price_micros,
    }
    if info.exclusion_phrases:
        encoded["exclusion_phrases"] = list(info.exclusion_phrases)
    return encoded


def ad_from_dict(payload: dict[str, Any]) -> Advertisement:
    """Decode :func:`ad_to_dict` output back into an equal ad."""
    try:
        return Advertisement(
            phrase=tuple(payload["phrase"]),
            info=AdInfo(
                listing_id=payload["listing_id"],
                campaign_id=payload.get("campaign_id", 0),
                bid_price_micros=payload.get("bid_price_micros", 0),
                exclusion_phrases=tuple(
                    payload.get("exclusion_phrases", ())
                ),
            ),
        )
    except (KeyError, TypeError) as exc:
        raise WireSchemaError(f"bad advertisement payload: {exc}") from exc


@dataclass(frozen=True, slots=True)
class ServeRequest:
    """One serving request: the query plus every per-request knob.

    Parameters
    ----------
    query:
        The search query.
    user_id:
        Caller identity for frequency capping; must be JSON-scalar
        (str/int/None) to cross the wire.
    priority:
        Admission-control class (lowest sheds first under overload).
    deadline_ms:
        Relative retrieval budget in milliseconds; the serialized form.
        ``None`` leaves the request unbudgeted.
    deadline:
        In-process :class:`Deadline` override (never serialized); wins
        over ``deadline_ms``.
    request_id:
        Optional correlation id echoed through logs and traces.
    """

    query: Query
    user_id: str | int | None = None
    priority: Priority = Priority.NORMAL
    deadline_ms: float | None = None
    deadline: Deadline | None = field(default=None, compare=False)
    request_id: str | None = None

    def __post_init__(self) -> None:
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise WireSchemaError("deadline_ms must be positive")

    @classmethod
    def from_text(cls, text: str, **kwargs: Any) -> ServeRequest:
        """Convenience: build from raw query text."""
        return cls(query=Query.from_text(text), **kwargs)

    def resolve_deadline(self, clock: ClockMs | None = None) -> Deadline | None:
        """The effective in-process budget: the ``deadline`` object when
        present, else a fresh one started now from ``deadline_ms``."""
        if self.deadline is not None:
            return self.deadline
        if self.deadline_ms is not None:
            return Deadline.after_ms(self.deadline_ms, clock=clock)
        return None

    # -------------------------------------------------------------- #
    # Wire round-trip

    def to_dict(self) -> dict[str, Any]:
        """The JSON-ready form (``deadline`` objects never serialize)."""
        encoded: dict[str, Any] = {"query": list(self.query.tokens)}
        if self.user_id is not None:
            encoded["user_id"] = self.user_id
        if self.priority is not Priority.NORMAL:
            encoded["priority"] = self.priority.name.lower()
        if self.deadline_ms is not None:
            encoded["deadline_ms"] = self.deadline_ms
        if self.request_id is not None:
            encoded["request_id"] = self.request_id
        return encoded

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> ServeRequest:
        """Decode :meth:`to_dict` output (tolerant of absent defaults)."""
        if not isinstance(payload, dict):
            raise WireSchemaError("request payload must be an object")
        tokens = payload.get("query")
        if not isinstance(tokens, (list, tuple)) or not all(
            isinstance(token, str) for token in tokens
        ):
            raise WireSchemaError("request 'query' must be a token list")
        user_id = payload.get("user_id")
        if user_id is not None and not isinstance(user_id, (str, int)):
            raise WireSchemaError("request 'user_id' must be str/int/null")
        priority_name = payload.get("priority", "normal")
        try:
            priority = Priority.from_name(priority_name)
        except (ValueError, AttributeError) as exc:
            raise WireSchemaError(str(exc)) from exc
        deadline_ms = payload.get("deadline_ms")
        if deadline_ms is not None:
            if not isinstance(deadline_ms, (int, float)) or deadline_ms <= 0:
                raise WireSchemaError(
                    "request 'deadline_ms' must be a positive number"
                )
        request_id = payload.get("request_id")
        if request_id is not None and not isinstance(request_id, str):
            raise WireSchemaError("request 'request_id' must be a string")
        return cls(
            query=Query(tokens=tuple(tokens)),
            user_id=user_id,
            priority=priority,
            deadline_ms=deadline_ms,
            request_id=request_id,
        )

    def to_json(self) -> str:
        """Compact JSON of :meth:`to_dict` (the wire payload text)."""
        return json.dumps(self.to_dict(), separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> ServeRequest:
        """Decode :meth:`to_json` output."""
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise WireSchemaError(f"bad request JSON: {exc}") from exc
        return cls.from_dict(payload)
