"""Generalized second-price (GSP) auction with quality scores.

The standard sponsored-search auction: candidates are ranked by
``bid * quality`` (the *ad rank*); the winner of slot ``i`` pays the
minimum bid that would have kept it above slot ``i+1``:

    price_i = ad_rank_{i+1} / quality_i      (+ one micro, floored at the
                                              reserve price)

The last occupied slot pays the reserve.  Quality scores default to 1.0
(pure bid ranking) — note the paper's point that the final ranking may
depend on query-independent factors, which is why these scores enter
*after* retrieval rather than being folded into the index.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

from repro.core.ads import Advertisement


@dataclass(frozen=True, slots=True)
class SlotAward:
    """One ad slot: who won it and what a click costs."""

    slot: int
    ad: Advertisement
    bid_micros: int
    quality: float
    price_micros: int

    @property
    def ad_rank(self) -> float:
        return self.bid_micros * self.quality


@dataclass(frozen=True, slots=True)
class AuctionOutcome:
    """The ranked slate plus auction-level accounting."""

    awards: tuple[SlotAward, ...]
    reserve_micros: int
    candidates: int

    @property
    def total_price_micros(self) -> int:
        return sum(award.price_micros for award in self.awards)

    def winners(self) -> list[Advertisement]:
        return [award.ad for award in self.awards]


def run_gsp_auction(
    candidates: Sequence[Advertisement],
    slots: int,
    reserve_micros: int = 1,
    quality_fn: Callable[[Advertisement], float] | None = None,
) -> AuctionOutcome:
    """Rank ``candidates`` into at most ``slots`` positions, GSP-priced.

    Ads bidding below the reserve (after quality adjustment) are excluded.
    Deterministic: ties on ad rank break by listing id.
    """
    if slots < 1:
        raise ValueError("slots must be >= 1")
    if reserve_micros < 0:
        raise ValueError("reserve must be non-negative")

    def quality(ad: Advertisement) -> float:
        q = quality_fn(ad) if quality_fn is not None else 1.0
        if q <= 0:
            raise ValueError(f"quality score must be positive, got {q}")
        return q

    scored = [
        (ad.info.bid_price_micros * quality(ad), ad, quality(ad))
        for ad in candidates
    ]
    eligible = [
        entry
        for entry in scored
        if entry[1].info.bid_price_micros >= reserve_micros
    ]
    eligible.sort(key=lambda entry: (-entry[0], entry[1].info.listing_id))

    awards: list[SlotAward] = []
    for i, (ad_rank, ad, q) in enumerate(eligible[:slots]):
        if i + 1 < len(eligible):
            next_rank = eligible[i + 1][0]
            price = int(next_rank / q) + 1
        else:
            price = reserve_micros
        price = max(reserve_micros, min(price, ad.info.bid_price_micros))
        awards.append(
            SlotAward(
                slot=i,
                ad=ad,
                bid_micros=ad.info.bid_price_micros,
                quality=q,
                price_micros=price,
            )
        )
    return AuctionOutcome(
        awards=tuple(awards),
        reserve_micros=reserve_micros,
        candidates=len(candidates),
    )
