"""The sponsored-search serving pipeline around the broad-match index.

The paper's introduction sketches the full flow: broad-match retrieval,
then "additional filters ... bid price, keyword-exclusion, clicked-through
rate, overlap with advertisements displayed earlier", then an auction that
ranks and prices the winners.  This package implements that pipeline:

* :mod:`repro.serving.auction` — generalized second-price (GSP) auction
  with quality scores (rank by bid x quality, price by the next slot);
* :mod:`repro.serving.server` — :class:`AdServer`: retrieval -> exclusion
  and budget filters -> auction, with per-campaign budget pacing and
  serving statistics.
"""

from repro.serving.auction import AuctionOutcome, SlotAward, run_gsp_auction
from repro.serving.request import (
    ServeRequest,
    WireSchemaError,
    ad_from_dict,
    ad_to_dict,
)
from repro.serving.result_cache import CachedIndex, CacheStats
from repro.serving.server import AdServer, ServeResult, ServingStats

__all__ = [
    "AdServer",
    "AuctionOutcome",
    "CacheStats",
    "CachedIndex",
    "ServeRequest",
    "ServeResult",
    "ServingStats",
    "SlotAward",
    "WireSchemaError",
    "ad_from_dict",
    "ad_to_dict",
    "run_gsp_auction",
]
