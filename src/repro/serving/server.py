"""The end-to-end ad server: retrieval -> filters -> auction -> budgets.

Implements the pipeline the paper's introduction describes around the
index: broad-match retrieval produces candidates; secondary criteria
(exclusion phrases, exhausted campaign budgets, ads already shown to this
user) filter them; the GSP auction ranks and prices the survivors; clicks
charge the winning campaign's budget.

The retrieval structure is pluggable — any
:class:`~repro.core.protocols.RetrievalIndex` works (hash index, trie
index, sharded, compressed, cached), which is exactly the
interchangeability the library's structures guarantee.

With an :mod:`repro.obs` registry attached, every query records the
``span.retrieve`` / ``span.filter`` / ``span.auction`` stage timings and
the ``serve.*`` counters (candidates, per-reason filter drops, impressions,
clicks, revenue), correlated with whatever the index and cache layers
recorded for the same query.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from dataclasses import dataclass, fields
from time import perf_counter

from repro.core.ads import Advertisement
from repro.core.matching import passes_exclusions
from repro.core.protocols import RetrievalIndex
from repro.core.queries import Query
from repro.obs.registry import MetricsRegistry, active_or_none
from repro.perf.batch import BatchQueryEngine
from repro.serving.auction import AuctionOutcome, run_gsp_auction


@dataclass(slots=True)
class ServingStats:
    """Aggregate serving counters.

    Field semantics (audited — each counter states exactly when it moves):

    * ``queries`` — calls into the pipeline (one per served query).
    * ``candidates`` — ads retrieval returned, *before* any filtering.
    * ``filtered_exclusion`` — candidates dropped because one of the ad's
      exclusion phrases was contained in the query.
    * ``filtered_budget`` — candidates dropped because their campaign's
      remaining budget cannot cover the ad's bid price.
    * ``filtered_frequency_cap`` — candidates dropped because this user
      already saw the listing ``frequency_cap`` times.
    * ``impressions`` — auction slots actually awarded (ads shown).
    * ``clicks`` — calls to :meth:`AdServer.record_click`.
    * ``revenue_micros`` — GSP prices charged **on click** (possibly
      clipped to the campaign's remaining budget).  Impressions alone
      never move revenue: sponsored search bills per click, not per
      impression.
    * ``retrieval_errors`` — retrieval raised and the server degraded to
      an empty candidate set (only with ``degrade_on_error=True``).
    """

    queries: int = 0
    candidates: int = 0
    filtered_exclusion: int = 0
    filtered_budget: int = 0
    filtered_frequency_cap: int = 0
    impressions: int = 0
    clicks: int = 0
    revenue_micros: int = 0
    retrieval_errors: int = 0

    def fill_rate(self) -> float:
        """Mean impressions per query (``impressions / queries``)."""
        if not self.queries:
            return 0.0
        return self.impressions / self.queries

    def click_through_rate(self) -> float:
        """Clicks per impression (``clicks / impressions``)."""
        if not self.impressions:
            return 0.0
        return self.clicks / self.impressions

    def snapshot(self) -> dict[str, float]:
        """Every counter plus the derived rates, as one flat dict.

        This is the bridge into the shared metrics registry: the keys
        mirror the ``serve.*`` counter names :class:`AdServer` records
        when an :mod:`repro.obs` registry is attached.
        """
        counters: dict[str, float] = {
            field.name: getattr(self, field.name) for field in fields(self)
        }
        counters["fill_rate"] = self.fill_rate()
        counters["click_through_rate"] = self.click_through_rate()
        return counters


@dataclass(frozen=True, slots=True)
class ServeResult:
    """What one query produced."""

    query: Query
    outcome: AuctionOutcome

    @property
    def ads(self) -> list[Advertisement]:
        return self.outcome.winners()


class AdServer:
    """Serving pipeline over any retrieval structure.

    Parameters
    ----------
    index:
        Any :class:`~repro.core.protocols.RetrievalIndex`.
    slots:
        Ad positions per results page.
    reserve_micros:
        Auction reserve price.
    campaign_budgets_micros:
        Optional per-campaign budgets; campaigns at 0 stop serving
        (the "budget constraints" of the paper's introduction).
    quality_fn:
        Optional quality score per ad for the GSP ranking.
    frequency_cap:
        Max times one listing may be shown to the same user id.
    batch_workers:
        Worker-pool width for :meth:`serve_batch` retrieval fan-out over a
        sharded index (None = one worker per shard, up to the CPU count).
    degrade_on_error:
        When True, a retrieval failure (an index mid-recovery, a shard
        fan-out dying) serves an empty candidate set — an unfilled
        auction — instead of propagating, and counts
        ``serve.retrieval_errors``.  Off by default: silent degradation
        must be an explicit operator choice.
    obs:
        Optional :class:`~repro.obs.registry.MetricsRegistry`; when
        enabled, serving records the ``serve.*`` counters and the
        ``retrieve``/``filter``/``auction`` stage spans, and propagates
        the registry to the internal batch engine.
    """

    def __init__(
        self,
        index: RetrievalIndex,
        slots: int = 4,
        reserve_micros: int = 1,
        campaign_budgets_micros: dict[int, int] | None = None,
        quality_fn: Callable[[Advertisement], float] | None = None,
        frequency_cap: int | None = None,
        batch_workers: int | None = None,
        degrade_on_error: bool = False,
        obs: MetricsRegistry | None = None,
    ) -> None:
        if slots < 1:
            raise ValueError("slots must be >= 1")
        self.index = index
        self.slots = slots
        self.reserve_micros = reserve_micros
        self.quality_fn = quality_fn
        self.frequency_cap = frequency_cap
        self.batch_workers = batch_workers
        self.degrade_on_error = degrade_on_error
        self._budgets = dict(campaign_budgets_micros or {})
        self._seen: dict[tuple[object, int], int] = {}
        self._batch_engine: BatchQueryEngine | None = None
        self.stats = ServingStats()
        self._obs: MetricsRegistry | None = None
        self.bind_obs(obs)

    def bind_obs(self, obs: MetricsRegistry | None) -> None:
        """Attach (or detach, with ``None``) a metrics registry."""
        obs = active_or_none(obs)
        self._obs = obs
        if self._batch_engine is not None:
            self._batch_engine.bind_obs(obs)
        if obs is not None:
            obs.counter("serve.queries", help="Queries served")
            obs.counter(
                "serve.candidates", help="Retrieval candidates before filters"
            )
            obs.counter(
                "serve.filtered.exclusion",
                help="Candidates dropped by exclusion phrases",
            )
            obs.counter(
                "serve.filtered.budget",
                help="Candidates dropped by exhausted campaign budgets",
            )
            obs.counter(
                "serve.filtered.frequency_cap",
                help="Candidates dropped by the per-user frequency cap",
            )
            obs.counter("serve.impressions", help="Auction slots awarded")
            obs.counter(
                "serve.auctions_unfilled",
                help="Auctions that awarded no slot at all",
            )
            obs.counter("serve.clicks", help="Clicks recorded")
            obs.counter(
                "serve.revenue_micros", help="GSP revenue charged on clicks"
            )
            obs.counter(
                "serve.retrieval_errors",
                help="Queries degraded to empty results by retrieval errors",
            )

    # ------------------------------------------------------------------ #

    def budget_remaining(self, campaign_id: int) -> int | None:
        """None means unlimited (campaign has no configured budget)."""
        return self._budgets.get(campaign_id)

    def _passes_budget(self, ad: Advertisement) -> bool:
        budget = self._budgets.get(ad.info.campaign_id)
        return budget is None or budget >= ad.info.bid_price_micros

    def _passes_frequency_cap(self, ad: Advertisement, user_id: object) -> bool:
        if self.frequency_cap is None or user_id is None:
            return True
        shown = self._seen.get((user_id, ad.info.listing_id), 0)
        return shown < self.frequency_cap

    def serve(self, query: Query, user_id: object = None) -> ServeResult:
        """Run the full pipeline for one query."""
        obs = self._obs
        try:
            if obs is None:
                candidates = self.index.query(query)
            else:
                with obs.span("retrieve"):
                    candidates = self.index.query(query)
        except Exception:
            if not self.degrade_on_error:
                raise
            candidates = self._degraded()
        return self._finish(query, candidates, user_id)

    def _degraded(self) -> list[Advertisement]:
        """Count one degraded query; serve the empty candidate set."""
        self.stats.retrieval_errors += 1
        if self._obs is not None:
            self._obs.counter("serve.retrieval_errors").inc()
        return []

    def serve_batch(
        self, queries: Iterable[Query], user_id: object = None
    ) -> list[ServeResult]:
        """Serve a micro-batch: batched retrieval, then the sequential
        filter/auction pipeline per query.

        Retrieval deduplicates identical word-sets and fans out across
        shards via the worker pool (:class:`BatchQueryEngine`); filters,
        budgets, frequency caps, and auctions then run in input order, so
        every stateful outcome (budget pacing, caps) is identical to
        calling :meth:`serve` query by query.

        With ``degrade_on_error`` set, a failing batched retrieval falls
        back to per-query retrieval so one poisoned word-set degrades
        only its own queries, not the whole batch.
        """
        queries = list(queries)
        if self._batch_engine is None or self._batch_engine.index is not self.index:
            self._batch_engine = BatchQueryEngine(
                self.index, max_workers=self.batch_workers, obs=self._obs
            )
        try:
            candidate_lists = self._batch_engine.query_broad_batch(queries)
        except Exception:
            if not self.degrade_on_error:
                raise
            candidate_lists = []
            for query in queries:
                try:
                    candidate_lists.append(self.index.query(query))
                except Exception:
                    candidate_lists.append(self._degraded())
        return [
            self._finish(query, candidates, user_id)
            for query, candidates in zip(queries, candidate_lists)
        ]

    def _finish(
        self, query: Query, candidates: list[Advertisement], user_id: object
    ) -> ServeResult:
        """Filters -> auction -> stats for one query's candidate set."""
        obs = self._obs
        self.stats.queries += 1
        self.stats.candidates += len(candidates)

        filter_started = perf_counter() if obs is not None else 0.0
        dropped_exclusion = 0
        dropped_budget = 0
        dropped_frequency = 0
        eligible: list[Advertisement] = []
        for ad in candidates:
            if not passes_exclusions(ad, query):
                dropped_exclusion += 1
                continue
            if not self._passes_budget(ad):
                dropped_budget += 1
                continue
            if not self._passes_frequency_cap(ad, user_id):
                dropped_frequency += 1
                continue
            eligible.append(ad)
        self.stats.filtered_exclusion += dropped_exclusion
        self.stats.filtered_budget += dropped_budget
        self.stats.filtered_frequency_cap += dropped_frequency
        if obs is not None:
            obs.histogram("span.filter").observe(
                (perf_counter() - filter_started) * 1e3
            )

        if obs is None:
            outcome = run_gsp_auction(
                eligible,
                slots=self.slots,
                reserve_micros=self.reserve_micros,
                quality_fn=self.quality_fn,
            )
        else:
            with obs.span("auction"):
                outcome = run_gsp_auction(
                    eligible,
                    slots=self.slots,
                    reserve_micros=self.reserve_micros,
                    quality_fn=self.quality_fn,
                )
        self.stats.impressions += len(outcome.awards)
        if user_id is not None and self.frequency_cap is not None:
            for award in outcome.awards:
                key = (user_id, award.ad.info.listing_id)
                self._seen[key] = self._seen.get(key, 0) + 1
        if obs is not None:
            obs.counter("serve.queries").inc()
            obs.counter("serve.candidates").inc(len(candidates))
            obs.counter("serve.filtered.exclusion").inc(dropped_exclusion)
            obs.counter("serve.filtered.budget").inc(dropped_budget)
            obs.counter("serve.filtered.frequency_cap").inc(dropped_frequency)
            obs.counter("serve.impressions").inc(len(outcome.awards))
            if not outcome.awards:
                obs.counter("serve.auctions_unfilled").inc()
        return ServeResult(query=query, outcome=outcome)

    def record_click(self, result: ServeResult, slot: int) -> int:
        """Charge the clicked slot's GSP price to its campaign budget.

        Returns the price charged (possibly clipped to the remaining
        budget).
        """
        award = result.outcome.awards[slot]
        price = award.price_micros
        campaign = award.ad.info.campaign_id
        budget = self._budgets.get(campaign)
        if budget is not None:
            price = min(price, budget)
            self._budgets[campaign] = budget - price
        self.stats.clicks += 1
        self.stats.revenue_micros += price
        if self._obs is not None:
            self._obs.counter("serve.clicks").inc()
            self._obs.counter("serve.revenue_micros").inc(price)
        return price

    def exhausted_campaigns(self) -> list[int]:
        return [c for c, b in self._budgets.items() if b <= 0]


def serve_trace(
    server: AdServer, queries: Iterable[Query]
) -> ServingStats:
    """Serve a whole trace; returns the aggregate stats."""
    for query in queries:
        server.serve(query)
    return server.stats
