"""The end-to-end ad server: retrieval -> filters -> auction -> budgets.

Implements the pipeline the paper's introduction describes around the
index: broad-match retrieval produces candidates; secondary criteria
(exclusion phrases, exhausted campaign budgets, ads already shown to this
user) filter them; the GSP auction ranks and prices the survivors; clicks
charge the winning campaign's budget.

The retrieval structure is pluggable — any
:class:`~repro.core.protocols.RetrievalIndex` works (hash index, trie
index, sharded, compressed, cached), which is exactly the
interchangeability the library's structures guarantee.

With an :mod:`repro.obs` registry attached, every query records the
``span.retrieve`` / ``span.filter`` / ``span.auction`` stage timings and
the ``serve.*`` counters (candidates, per-reason filter drops, impressions,
clicks, revenue), correlated with whatever the index and cache layers
recorded for the same query.
"""

from __future__ import annotations

import json
from collections.abc import Callable, Iterable
from dataclasses import dataclass, field, fields
from time import perf_counter
from typing import Any

from repro.core.ads import Advertisement
from repro.core.matching import passes_exclusions
from repro.core.protocols import RetrievalIndex
from repro.core.queries import Query
from repro.obs.registry import MetricsRegistry, active_or_none
from repro.perf.batch import BatchQueryEngine
from repro.resilience.admission import AdmissionController, Priority
from repro.resilience.deadline import ClockMs, Deadline, DegradedReason
from repro.resilience.degrade import DegradationPolicy
from repro.serving.auction import AuctionOutcome, SlotAward, run_gsp_auction
from repro.serving.request import (
    ServeRequest,
    WireSchemaError,
    ad_from_dict,
    ad_to_dict,
)


@dataclass(slots=True)
class ServingStats:
    """Aggregate serving counters.

    Field semantics (audited — each counter states exactly when it moves):

    * ``queries`` — calls into the pipeline (one per served query).
    * ``candidates`` — ads retrieval returned, *before* any filtering.
    * ``filtered_exclusion`` — candidates dropped because one of the ad's
      exclusion phrases was contained in the query.
    * ``filtered_budget`` — candidates dropped because their campaign's
      remaining budget cannot cover the ad's bid price.
    * ``filtered_frequency_cap`` — candidates dropped because this user
      already saw the listing ``frequency_cap`` times.
    * ``impressions`` — auction slots actually awarded (ads shown).
    * ``clicks`` — calls to :meth:`AdServer.record_click`.
    * ``revenue_micros`` — GSP prices charged **on click** (possibly
      clipped to the campaign's remaining budget).  Impressions alone
      never move revenue: sponsored search bills per click, not per
      impression.
    * ``retrieval_errors`` — retrieval raised and the server degraded to
      an empty candidate set (only with ``degrade_on_error=True``).
    * ``shed`` — requests refused by admission control *before* the
      pipeline ran (shed requests do **not** count in ``queries``).
    * ``degraded`` — served queries whose result was flagged degraded in
      any way (partial, truncated, capped, stale, ...).
    * ``stale_results`` — queries answered from the result cache's stale
      store after a retrieval error.
    * ``deadline_partials`` — served queries whose deadline expired
      mid-retrieval.
    * ``degraded_reasons`` — per-:class:`DegradedReason` breakdown of
      every non-``NONE`` outcome (shed and degraded alike); surfaced by
      :meth:`snapshot` as ``degraded_reason.<value>`` keys.
    """

    queries: int = 0
    candidates: int = 0
    filtered_exclusion: int = 0
    filtered_budget: int = 0
    filtered_frequency_cap: int = 0
    impressions: int = 0
    clicks: int = 0
    revenue_micros: int = 0
    retrieval_errors: int = 0
    shed: int = 0
    degraded: int = 0
    stale_results: int = 0
    deadline_partials: int = 0
    degraded_reasons: dict[str, int] = field(default_factory=dict)

    def fill_rate(self) -> float:
        """Mean impressions per query (``impressions / queries``)."""
        if not self.queries:
            return 0.0
        return self.impressions / self.queries

    def click_through_rate(self) -> float:
        """Clicks per impression (``clicks / impressions``)."""
        if not self.impressions:
            return 0.0
        return self.clicks / self.impressions

    def snapshot(self) -> dict[str, float]:
        """Every counter plus the derived rates, as one flat dict.

        This is the bridge into the shared metrics registry: the keys
        mirror the ``serve.*`` counter names :class:`AdServer` records
        when an :mod:`repro.obs` registry is attached.
        """
        counters: dict[str, float] = {
            f.name: getattr(self, f.name)
            for f in fields(self)
            if f.name != "degraded_reasons"
        }
        for reason, count in sorted(self.degraded_reasons.items()):
            counters[f"degraded_reason.{reason}"] = count
        counters["fill_rate"] = self.fill_rate()
        counters["click_through_rate"] = self.click_through_rate()
        return counters

    def record_reason(self, reason: DegradedReason) -> None:
        """Count one non-``NONE`` degradation outcome."""
        if reason is not DegradedReason.NONE:
            self.degraded_reasons[reason.value] = (
                self.degraded_reasons.get(reason.value, 0) + 1
            )


@dataclass(frozen=True, slots=True)
class ServeResult:
    """What one query produced."""

    query: Query
    outcome: AuctionOutcome
    #: Why (if at all) this result is less than the full answer:
    #: :attr:`DegradedReason.NONE` for a normal serve, a shed reason for
    #: a request admission refused, or the primary degradation cause for
    #: a partial/truncated/stale result.  Always machine-readable —
    #: degraded results are flagged, never silent.
    degraded_reason: DegradedReason = DegradedReason.NONE

    @property
    def ads(self) -> list[Advertisement]:
        return self.outcome.winners()

    @property
    def degraded(self) -> bool:
        return self.degraded_reason is not DegradedReason.NONE

    # -------------------------------------------------------------- #
    # Wire round-trip (the :mod:`repro.netserve` response payload)

    def to_dict(self) -> dict[str, Any]:
        """The JSON-ready form: query, degraded reason, and the full
        auction outcome with every award's ad identity in slot order."""
        outcome = self.outcome
        return {
            "query": list(self.query.tokens),
            "degraded_reason": self.degraded_reason.value,
            "outcome": {
                "reserve_micros": outcome.reserve_micros,
                "candidates": outcome.candidates,
                "awards": [
                    {
                        "slot": award.slot,
                        "bid_micros": award.bid_micros,
                        "quality": award.quality,
                        "price_micros": award.price_micros,
                        "ad": ad_to_dict(award.ad),
                    }
                    for award in outcome.awards
                ],
            },
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> ServeResult:
        """Decode :meth:`to_dict` output into an equal result (award
        order, ad identity, and the degraded reason all preserved)."""
        if not isinstance(payload, dict):
            raise WireSchemaError("result payload must be an object")
        try:
            tokens = tuple(payload["query"])
            reason = DegradedReason(payload.get("degraded_reason", "none"))
            encoded_outcome = payload["outcome"]
            awards = tuple(
                SlotAward(
                    slot=encoded["slot"],
                    ad=ad_from_dict(encoded["ad"]),
                    bid_micros=encoded["bid_micros"],
                    quality=encoded["quality"],
                    price_micros=encoded["price_micros"],
                )
                for encoded in encoded_outcome["awards"]
            )
            outcome = AuctionOutcome(
                awards=awards,
                reserve_micros=encoded_outcome["reserve_micros"],
                candidates=encoded_outcome["candidates"],
            )
        except WireSchemaError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise WireSchemaError(f"bad result payload: {exc}") from exc
        return cls(
            query=Query(tokens=tokens),
            outcome=outcome,
            degraded_reason=reason,
        )

    def to_json(self) -> str:
        """Compact JSON of :meth:`to_dict` (the wire payload text)."""
        return json.dumps(self.to_dict(), separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> ServeResult:
        """Decode :meth:`to_json` output."""
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise WireSchemaError(f"bad result JSON: {exc}") from exc
        return cls.from_dict(payload)


class AdServer:
    """Serving pipeline over any retrieval structure.

    Parameters
    ----------
    index:
        Any :class:`~repro.core.protocols.RetrievalIndex`.
    slots:
        Ad positions per results page.
    reserve_micros:
        Auction reserve price.
    campaign_budgets_micros:
        Optional per-campaign budgets; campaigns at 0 stop serving
        (the "budget constraints" of the paper's introduction).
    quality_fn:
        Optional quality score per ad for the GSP ranking.
    frequency_cap:
        Max times one listing may be shown to the same user id.
    batch_workers:
        Worker-pool width for :meth:`serve_batch` retrieval fan-out over a
        sharded index (None = one worker per shard, up to the CPU count).
    degrade_on_error:
        When True, a retrieval failure (an index mid-recovery, a shard
        fan-out dying) serves an empty candidate set — an unfilled
        auction — instead of propagating, and counts
        ``serve.retrieval_errors``.  Off by default: silent degradation
        must be an explicit operator choice.
    admission:
        Optional :class:`~repro.resilience.admission.AdmissionController`;
        requests it refuses get an immediate empty :class:`ServeResult`
        carrying the shed reason, without touching the pipeline.
    degradation:
        Optional :class:`~repro.resilience.degrade.DegradationPolicy`;
        its current ladder level tightens every request's deadline budget
        and can enable stale-cache fallback.
    default_deadline_ms:
        Per-request retrieval budget applied when the caller passes no
        explicit deadline; ``None`` (the default) leaves requests
        unbudgeted, preserving the exact baseline behaviour.
    stale_on_error:
        When True (or when the degradation ladder's current level says
        so), a retrieval error is answered from the wrapped
        :class:`~repro.serving.result_cache.CachedIndex` stale store if
        the index exposes one, flagged ``STALE_CACHE``.
    clock:
        Millisecond clock for deadline budgets (defaults to wall time;
        inject a manual clock in tests).
    obs:
        Optional :class:`~repro.obs.registry.MetricsRegistry`; when
        enabled, serving records the ``serve.*`` counters and the
        ``retrieve``/``filter``/``auction`` stage spans, and propagates
        the registry to the internal batch engine.
    """

    def __init__(
        self,
        index: RetrievalIndex,
        slots: int = 4,
        reserve_micros: int = 1,
        campaign_budgets_micros: dict[int, int] | None = None,
        quality_fn: Callable[[Advertisement], float] | None = None,
        frequency_cap: int | None = None,
        batch_workers: int | None = None,
        degrade_on_error: bool = False,
        admission: AdmissionController | None = None,
        degradation: DegradationPolicy | None = None,
        default_deadline_ms: float | None = None,
        stale_on_error: bool = False,
        clock: ClockMs | None = None,
        obs: MetricsRegistry | None = None,
    ) -> None:
        if slots < 1:
            raise ValueError("slots must be >= 1")
        if default_deadline_ms is not None and default_deadline_ms <= 0:
            raise ValueError("default_deadline_ms must be positive")
        self.index = index
        self.slots = slots
        self.reserve_micros = reserve_micros
        self.quality_fn = quality_fn
        self.frequency_cap = frequency_cap
        self.batch_workers = batch_workers
        self.degrade_on_error = degrade_on_error
        self.admission = admission
        self.degradation = degradation
        self.default_deadline_ms = default_deadline_ms
        self.stale_on_error = stale_on_error
        self._clock = clock
        self._budgets = dict(campaign_budgets_micros or {})
        self._seen: dict[tuple[object, int], int] = {}
        self._batch_engine: BatchQueryEngine | None = None
        self.stats = ServingStats()
        self._obs: MetricsRegistry | None = None
        self.bind_obs(obs)

    def bind_obs(self, obs: MetricsRegistry | None) -> None:
        """Attach (or detach, with ``None``) a metrics registry."""
        obs = active_or_none(obs)
        self._obs = obs
        if self._batch_engine is not None:
            self._batch_engine.bind_obs(obs)
        if obs is not None:
            obs.counter("serve.queries", help="Queries served")
            obs.counter(
                "serve.candidates", help="Retrieval candidates before filters"
            )
            obs.counter(
                "serve.filtered.exclusion",
                help="Candidates dropped by exclusion phrases",
            )
            obs.counter(
                "serve.filtered.budget",
                help="Candidates dropped by exhausted campaign budgets",
            )
            obs.counter(
                "serve.filtered.frequency_cap",
                help="Candidates dropped by the per-user frequency cap",
            )
            obs.counter("serve.impressions", help="Auction slots awarded")
            obs.counter(
                "serve.auctions_unfilled",
                help="Auctions that awarded no slot at all",
            )
            obs.counter("serve.clicks", help="Clicks recorded")
            obs.counter(
                "serve.revenue_micros", help="GSP revenue charged on clicks"
            )
            obs.counter(
                "serve.retrieval_errors",
                help="Queries degraded to empty results by retrieval errors",
            )
            obs.counter(
                "serve.shed", help="Requests refused by admission control"
            )
            obs.counter(
                "serve.degraded",
                help="Served queries flagged degraded in any way",
            )
            obs.counter(
                "serve.stale_results",
                help="Queries answered from the stale result store",
            )

    # ------------------------------------------------------------------ #

    def budget_remaining(self, campaign_id: int) -> int | None:
        """None means unlimited (campaign has no configured budget)."""
        return self._budgets.get(campaign_id)

    def _passes_budget(self, ad: Advertisement) -> bool:
        budget = self._budgets.get(ad.info.campaign_id)
        return budget is None or budget >= ad.info.bid_price_micros

    def _passes_frequency_cap(self, ad: Advertisement, user_id: object) -> bool:
        if self.frequency_cap is None or user_id is None:
            return True
        shown = self._seen.get((user_id, ad.info.listing_id), 0)
        return shown < self.frequency_cap

    def serve(
        self,
        request: ServeRequest | Query,
        user_id: object = None,
        priority: Priority = Priority.NORMAL,
        deadline: Deadline | None = None,
    ) -> ServeResult:
        """Run the full pipeline for one request.

        ``request`` is either a :class:`ServeRequest` — the one-object
        API the network tier speaks — or a bare :class:`Query` with the
        per-request fields as keyword arguments (the pre-redesign
        signature, kept bit-identical).  Mixing both styles is an error.

        Admission control (if configured) runs first — a shed request
        returns an empty, explicitly flagged result without touching
        retrieval.  The request's deadline budget (explicit, or built
        from ``default_deadline_ms``) is tightened by the degradation
        ladder and threaded through retrieval.
        """
        if isinstance(request, ServeRequest):
            if (
                user_id is not None
                or priority is not Priority.NORMAL
                or deadline is not None
            ):
                raise TypeError(
                    "pass per-request fields inside the ServeRequest, "
                    "not as keyword arguments"
                )
            query = request.query
            user_id = request.user_id
            priority = request.priority
            deadline = request.resolve_deadline(self._clock)
        else:
            query = request
        if self.admission is not None:
            decision = self.admission.try_admit(priority)
            if not decision.admitted:
                return self._shed(query, decision.reason)
            try:
                return self._serve_admitted(query, user_id, deadline)
            finally:
                self.admission.release()
        return self._serve_admitted(query, user_id, deadline)

    def _serve_admitted(
        self, query: Query, user_id: object, deadline: Deadline | None
    ) -> ServeResult:
        obs = self._obs
        deadline = self._request_deadline(deadline)
        try:
            if obs is None:
                candidates = self._retrieve(query, deadline)
            else:
                with obs.span("retrieve"):
                    candidates = self._retrieve(query, deadline)
        except Exception:
            stale = self._stale_fallback(query)
            if stale is not None:
                return self._finish(
                    query, stale, user_id, DegradedReason.STALE_CACHE
                )
            if not self.degrade_on_error:
                raise
            candidates = self._degraded()
            return self._finish(
                query, candidates, user_id, DegradedReason.RETRIEVAL_ERROR
            )
        reason = (
            deadline.primary_reason()
            if deadline is not None
            else DegradedReason.NONE
        )
        if deadline is not None and deadline.partial:
            if DegradedReason.DEADLINE in deadline.partial_reasons:
                self.stats.deadline_partials += 1
        return self._finish(query, candidates, user_id, reason)

    def _retrieve(
        self, query: Query, deadline: Deadline | None
    ) -> list[Advertisement]:
        if deadline is not None and getattr(
            self.index, "supports_deadline", False
        ):
            return self.index.query(query, deadline=deadline)
        return self.index.query(query)

    def _request_deadline(self, deadline: Deadline | None) -> Deadline | None:
        """The effective budget: caller's, or one from
        ``default_deadline_ms``; either way tightened by the degradation
        ladder.  ``None`` only when no resilience feature asks for one —
        the baseline path stays budget-free."""
        degradation = self.degradation
        if degradation is not None:
            degradation.on_query()
        if deadline is None:
            if self.default_deadline_ms is not None:
                deadline = Deadline.after_ms(
                    self.default_deadline_ms, clock=self._clock
                )
            elif degradation is not None and degradation.degraded:
                deadline = Deadline.unlimited(clock=self._clock)
        if deadline is not None and degradation is not None:
            degradation.tighten(deadline)
        return deadline

    def _stale_fallback(self, query: Query) -> list[Advertisement] | None:
        """A stale cached answer for a failed retrieval, when allowed."""
        allowed = self.stale_on_error or (
            self.degradation is not None
            and self.degradation.stale_fallback_enabled()
        )
        if not allowed:
            return None
        query_stale = getattr(self.index, "query_stale", None)
        if query_stale is None:
            return None
        stale = query_stale(query)
        if stale is None:
            return None
        self.stats.stale_results += 1
        self.stats.retrieval_errors += 1
        if self._obs is not None:
            self._obs.counter("serve.stale_results").inc()
            self._obs.counter("serve.retrieval_errors").inc()
        return list(stale)

    def _shed(self, query: Query, reason: DegradedReason) -> ServeResult:
        """An explicit refused-at-the-door result: empty auction, the
        shed reason attached, no pipeline work done."""
        self.stats.shed += 1
        self.stats.record_reason(reason)
        if self._obs is not None:
            self._obs.counter("serve.shed").inc()
        outcome = run_gsp_auction(
            [],
            slots=self.slots,
            reserve_micros=self.reserve_micros,
            quality_fn=self.quality_fn,
        )
        return ServeResult(query=query, outcome=outcome, degraded_reason=reason)

    def _degraded(self) -> list[Advertisement]:
        """Count one degraded query; serve the empty candidate set."""
        self.stats.retrieval_errors += 1
        if self._obs is not None:
            self._obs.counter("serve.retrieval_errors").inc()
        return []

    def serve_batch(
        self,
        requests: Iterable[ServeRequest | Query],
        user_id: object = None,
        priority: Priority = Priority.NORMAL,
        deadline: Deadline | None = None,
    ) -> list[ServeResult]:
        """Serve a micro-batch: batched retrieval, then the sequential
        filter/auction pipeline per query.

        ``requests`` is a homogeneous sequence of either bare
        :class:`Query` objects (the pre-redesign signature: ``user_id``
        and ``priority`` apply to every position) or
        :class:`ServeRequest` objects, each carrying its own user id and
        admission priority.  With ``ServeRequest`` items the batch
        budget is the explicit ``deadline`` argument when given,
        otherwise the *tightest* of the items' own budgets (one deadline
        always covers the whole batch).

        Retrieval deduplicates identical word-sets and fans out across
        shards via the worker pool (:class:`BatchQueryEngine`); filters,
        budgets, frequency caps, and auctions then run in input order, so
        every stateful outcome (budget pacing, caps) is identical to
        calling :meth:`serve` query by query.

        With ``degrade_on_error`` set, a failing batched retrieval falls
        back to per-query retrieval so one poisoned word-set degrades
        only its own queries, not the whole batch.

        Admission control admits each position individually before the
        batched retrieval runs; shed positions get flagged empty results
        and the surviving queries share the batch deadline.
        """
        items = list(requests)
        if any(isinstance(item, ServeRequest) for item in items):
            if not all(isinstance(item, ServeRequest) for item in items):
                raise TypeError(
                    "serve_batch takes all ServeRequests or all Queries, "
                    "not a mix"
                )
            if user_id is not None or priority is not Priority.NORMAL:
                raise TypeError(
                    "pass per-request fields inside the ServeRequests, "
                    "not as keyword arguments"
                )
            plan = [(item.query, item.user_id, item.priority) for item in items]
            if deadline is None:
                deadline = self._tightest_deadline(items)
        else:
            plan = [(query, user_id, priority) for query in items]
        admitted = plan
        shed_at: dict[int, DegradedReason] = {}
        if self.admission is not None:
            admitted = []
            for position, (query, uid, prio) in enumerate(plan):
                decision = self.admission.try_admit(prio)
                if decision.admitted:
                    admitted.append((query, uid, prio))
                else:
                    shed_at[position] = decision.reason
        try:
            results = self._serve_batch_admitted(admitted, deadline)
        finally:
            if self.admission is not None:
                for _ in admitted:
                    self.admission.release()
        if not shed_at:
            return results
        merged: list[ServeResult] = []
        served = iter(results)
        for position, (query, _, _) in enumerate(plan):
            reason = shed_at.get(position)
            if reason is not None:
                merged.append(self._shed(query, reason))
            else:
                merged.append(next(served))
        return merged

    def _tightest_deadline(
        self, items: list[ServeRequest]
    ) -> Deadline | None:
        """The batch budget for ServeRequest items: the member deadline
        with the least remaining time (an untimed deadline counts as
        infinite but still carries its degradation constraints)."""
        resolved = [
            deadline
            for item in items
            if (deadline := item.resolve_deadline(self._clock)) is not None
        ]
        if not resolved:
            return None
        return min(resolved, key=lambda deadline: deadline.remaining_ms())

    def _serve_batch_admitted(
        self,
        plan: list[tuple[Query, object, Priority]],
        deadline: Deadline | None,
    ) -> list[ServeResult]:
        if not plan:
            return []
        queries = [query for query, _, _ in plan]
        deadline = self._request_deadline(deadline)
        if self._batch_engine is None or self._batch_engine.index is not self.index:
            self._batch_engine = BatchQueryEngine(
                self.index, max_workers=self.batch_workers, obs=self._obs
            )
        try:
            candidate_lists = self._batch_engine.query_broad_batch(
                queries, deadline
            )
        except Exception:
            if not self.degrade_on_error:
                raise
            candidate_lists = []
            for query in queries:
                try:
                    candidate_lists.append(self._retrieve(query, deadline))
                except Exception:
                    candidate_lists.append(self._degraded())
        reason = (
            deadline.primary_reason()
            if deadline is not None
            else DegradedReason.NONE
        )
        if deadline is not None and deadline.partial:
            if DegradedReason.DEADLINE in deadline.partial_reasons:
                self.stats.deadline_partials += len(queries)
        return [
            self._finish(query, candidates, uid, reason)
            for (query, uid, _), candidates in zip(plan, candidate_lists)
        ]

    def _finish(
        self,
        query: Query,
        candidates: list[Advertisement],
        user_id: object,
        reason: DegradedReason = DegradedReason.NONE,
    ) -> ServeResult:
        """Filters -> auction -> stats for one query's candidate set."""
        obs = self._obs
        self.stats.queries += 1
        self.stats.candidates += len(candidates)

        filter_started = perf_counter() if obs is not None else 0.0
        dropped_exclusion = 0
        dropped_budget = 0
        dropped_frequency = 0
        eligible: list[Advertisement] = []
        for ad in candidates:
            if not passes_exclusions(ad, query):
                dropped_exclusion += 1
                continue
            if not self._passes_budget(ad):
                dropped_budget += 1
                continue
            if not self._passes_frequency_cap(ad, user_id):
                dropped_frequency += 1
                continue
            eligible.append(ad)
        self.stats.filtered_exclusion += dropped_exclusion
        self.stats.filtered_budget += dropped_budget
        self.stats.filtered_frequency_cap += dropped_frequency
        if obs is not None:
            obs.histogram("span.filter").observe(
                (perf_counter() - filter_started) * 1e3
            )

        if obs is None:
            outcome = run_gsp_auction(
                eligible,
                slots=self.slots,
                reserve_micros=self.reserve_micros,
                quality_fn=self.quality_fn,
            )
        else:
            with obs.span("auction"):
                outcome = run_gsp_auction(
                    eligible,
                    slots=self.slots,
                    reserve_micros=self.reserve_micros,
                    quality_fn=self.quality_fn,
                )
        self.stats.impressions += len(outcome.awards)
        if user_id is not None and self.frequency_cap is not None:
            for award in outcome.awards:
                key = (user_id, award.ad.info.listing_id)
                self._seen[key] = self._seen.get(key, 0) + 1
        if reason is not DegradedReason.NONE:
            self.stats.degraded += 1
            self.stats.record_reason(reason)
        if obs is not None:
            obs.counter("serve.queries").inc()
            obs.counter("serve.candidates").inc(len(candidates))
            obs.counter("serve.filtered.exclusion").inc(dropped_exclusion)
            obs.counter("serve.filtered.budget").inc(dropped_budget)
            obs.counter("serve.filtered.frequency_cap").inc(dropped_frequency)
            obs.counter("serve.impressions").inc(len(outcome.awards))
            if not outcome.awards:
                obs.counter("serve.auctions_unfilled").inc()
            if reason is not DegradedReason.NONE:
                obs.counter("serve.degraded").inc()
        return ServeResult(
            query=query, outcome=outcome, degraded_reason=reason
        )

    def record_click(self, result: ServeResult, slot: int) -> int:
        """Charge the clicked slot's GSP price to its campaign budget.

        Returns the price charged (possibly clipped to the remaining
        budget).
        """
        award = result.outcome.awards[slot]
        price = award.price_micros
        campaign = award.ad.info.campaign_id
        budget = self._budgets.get(campaign)
        if budget is not None:
            price = min(price, budget)
            self._budgets[campaign] = budget - price
        self.stats.clicks += 1
        self.stats.revenue_micros += price
        if self._obs is not None:
            self._obs.counter("serve.clicks").inc()
            self._obs.counter("serve.revenue_micros").inc(price)
        return price

    def exhausted_campaigns(self) -> list[int]:
        return [c for c, b in self._budgets.items() if b <= 0]


def serve_trace(
    server: AdServer, queries: Iterable[Query]
) -> ServingStats:
    """Serve a whole trace; returns the aggregate stats."""
    for query in queries:
        server.serve(query)
    return server.stats
