"""The end-to-end ad server: retrieval -> filters -> auction -> budgets.

Implements the pipeline the paper's introduction describes around the
index: broad-match retrieval produces candidates; secondary criteria
(exclusion phrases, exhausted campaign budgets, ads already shown to this
user) filter them; the GSP auction ranks and prices the survivors; clicks
charge the winning campaign's budget.

The retrieval structure is pluggable — anything with ``query_broad`` works
(hash index, trie index, sharded, compressed), which is exactly the
interchangeability the library's structures guarantee.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from dataclasses import dataclass

from repro.core.ads import Advertisement
from repro.core.matching import passes_exclusions
from repro.core.queries import Query
from repro.perf.batch import BatchQueryEngine
from repro.serving.auction import AuctionOutcome, run_gsp_auction


@dataclass(slots=True)
class ServingStats:
    """Aggregate serving counters."""

    queries: int = 0
    candidates: int = 0
    filtered_exclusion: int = 0
    filtered_budget: int = 0
    filtered_frequency_cap: int = 0
    impressions: int = 0
    clicks: int = 0
    revenue_micros: int = 0

    def fill_rate(self) -> float:
        """Mean impressions per query."""
        if not self.queries:
            return 0.0
        return self.impressions / self.queries


@dataclass(frozen=True, slots=True)
class ServeResult:
    """What one query produced."""

    query: Query
    outcome: AuctionOutcome

    @property
    def ads(self) -> list[Advertisement]:
        return self.outcome.winners()


class AdServer:
    """Serving pipeline over any broad-match retrieval structure.

    Parameters
    ----------
    index:
        Object with ``query_broad(query) -> list[Advertisement]``.
    slots:
        Ad positions per results page.
    reserve_micros:
        Auction reserve price.
    campaign_budgets_micros:
        Optional per-campaign budgets; campaigns at 0 stop serving
        (the "budget constraints" of the paper's introduction).
    quality_fn:
        Optional quality score per ad for the GSP ranking.
    frequency_cap:
        Max times one listing may be shown to the same user id.
    batch_workers:
        Worker-pool width for :meth:`serve_batch` retrieval fan-out over a
        sharded index (None = one worker per shard, up to the CPU count).
    """

    def __init__(
        self,
        index,
        slots: int = 4,
        reserve_micros: int = 1,
        campaign_budgets_micros: dict[int, int] | None = None,
        quality_fn: Callable[[Advertisement], float] | None = None,
        frequency_cap: int | None = None,
        batch_workers: int | None = None,
    ) -> None:
        if slots < 1:
            raise ValueError("slots must be >= 1")
        self.index = index
        self.slots = slots
        self.reserve_micros = reserve_micros
        self.quality_fn = quality_fn
        self.frequency_cap = frequency_cap
        self.batch_workers = batch_workers
        self._budgets = dict(campaign_budgets_micros or {})
        self._seen: dict[tuple[object, int], int] = {}
        self._batch_engine: BatchQueryEngine | None = None
        self.stats = ServingStats()

    # ------------------------------------------------------------------ #

    def budget_remaining(self, campaign_id: int) -> int | None:
        """None means unlimited (campaign has no configured budget)."""
        return self._budgets.get(campaign_id)

    def _passes_budget(self, ad: Advertisement) -> bool:
        budget = self._budgets.get(ad.info.campaign_id)
        return budget is None or budget >= ad.info.bid_price_micros

    def _passes_frequency_cap(self, ad: Advertisement, user_id: object) -> bool:
        if self.frequency_cap is None or user_id is None:
            return True
        shown = self._seen.get((user_id, ad.info.listing_id), 0)
        return shown < self.frequency_cap

    def serve(self, query: Query, user_id: object = None) -> ServeResult:
        """Run the full pipeline for one query."""
        candidates = self.index.query_broad(query)
        return self._finish(query, candidates, user_id)

    def serve_batch(
        self, queries: Iterable[Query], user_id: object = None
    ) -> list[ServeResult]:
        """Serve a micro-batch: batched retrieval, then the sequential
        filter/auction pipeline per query.

        Retrieval deduplicates identical word-sets and fans out across
        shards via the worker pool (:class:`BatchQueryEngine`); filters,
        budgets, frequency caps, and auctions then run in input order, so
        every stateful outcome (budget pacing, caps) is identical to
        calling :meth:`serve` query by query.
        """
        queries = list(queries)
        if self._batch_engine is None or self._batch_engine.index is not self.index:
            self._batch_engine = BatchQueryEngine(
                self.index, max_workers=self.batch_workers
            )
        candidate_lists = self._batch_engine.query_broad_batch(queries)
        return [
            self._finish(query, candidates, user_id)
            for query, candidates in zip(queries, candidate_lists)
        ]

    def _finish(
        self, query: Query, candidates: list[Advertisement], user_id: object
    ) -> ServeResult:
        """Filters -> auction -> stats for one query's candidate set."""
        self.stats.queries += 1
        self.stats.candidates += len(candidates)

        eligible: list[Advertisement] = []
        for ad in candidates:
            if not passes_exclusions(ad, query):
                self.stats.filtered_exclusion += 1
                continue
            if not self._passes_budget(ad):
                self.stats.filtered_budget += 1
                continue
            if not self._passes_frequency_cap(ad, user_id):
                self.stats.filtered_frequency_cap += 1
                continue
            eligible.append(ad)

        outcome = run_gsp_auction(
            eligible,
            slots=self.slots,
            reserve_micros=self.reserve_micros,
            quality_fn=self.quality_fn,
        )
        self.stats.impressions += len(outcome.awards)
        if user_id is not None and self.frequency_cap is not None:
            for award in outcome.awards:
                key = (user_id, award.ad.info.listing_id)
                self._seen[key] = self._seen.get(key, 0) + 1
        return ServeResult(query=query, outcome=outcome)

    def record_click(self, result: ServeResult, slot: int) -> int:
        """Charge the clicked slot's GSP price to its campaign budget.

        Returns the price charged (possibly clipped to the remaining
        budget).
        """
        award = result.outcome.awards[slot]
        price = award.price_micros
        campaign = award.ad.info.campaign_id
        budget = self._budgets.get(campaign)
        if budget is not None:
            price = min(price, budget)
            self._budgets[campaign] = budget - price
        self.stats.clicks += 1
        self.stats.revenue_micros += price
        return price

    def exhausted_campaigns(self) -> list[int]:
        return [c for c, b in self._budgets.items() if b <= 0]


def serve_trace(
    server: AdServer, queries: Iterable[Query]
) -> ServingStats:
    """Serve a whole trace; returns the aggregate stats."""
    for query in queries:
        server.serve(query)
    return server.stats
