"""The compressed lookup structure of Fig 6: ``B^sig`` + ``B^off``.

Replaces the hash table ``H`` with two rank/select bit-arrays:

* ``B^sig`` of length ``2^s``: bit ``i`` is set iff some data node's
  locator hash has the ``s``-bit suffix ``i``.  Nodes whose suffixes
  collide are **merged** (their entries concatenated, keeping the global
  word-count ordering so early termination still works).
* ``B^off`` of length ``D_size`` (total node bytes): bit ``j`` is set iff a
  data node starts at byte offset ``j``.

Lookup of a node-locator ``W``:
``sw = suffix_s(wordhash(W))``; if ``B^sig[sw] == 0`` there is no node;
otherwise ``offset = select1(B^off, rank1(B^sig, sw + 1))``.

Every probe still verifies stored word-sets against the query, so the extra
collisions a short suffix introduces cost scan time, never correctness —
which is exactly the size/speed trade-off :mod:`repro.compress.suffix_opt`
tunes.
"""

from __future__ import annotations

from collections.abc import Container, Iterable, Mapping

from repro.core.ads import Advertisement
from repro.core.data_node import DataNode
from repro.core.matching import MatchType, apply_match_type
from repro.core.queries import Query
from repro.core.subset_enum import sized_subsets
from repro.core.wordhash import hash_suffix, wordhash
from repro.core.wordset_index import WordSetIndex
from repro.compress.bitvector import BitVector
from repro.compress.sizing import h0_bits
from repro.cost.accounting import AccessTracker
from repro.perf.memohash import hashed_index_subsets, word_contrib
from repro.perf.prefilter import ProbePlan, plan_for_query

#: Import-time binding of the canonical hash, compared against the module
#: binding so collision-forcing tests that swap ``wordhash`` fall back from
#: memoized contributions to hashing materialized subsets (same guard as
#: :mod:`repro.core.wordset_index`).
_CANONICAL_WORDHASH = wordhash


class CompressedWordSetIndex:
    """A read-only broad-match index backed by the Fig 6 bit-arrays.

    With ``vocabulary`` and ``size_histogram`` supplied (the
    :meth:`from_index` path does this automatically), queries run the
    same :class:`~repro.perf.prefilter.ProbePlan` pruning and memoized
    subset hashing as ``WordSetIndex(fast_path=True)``.  Built from raw
    nodes without that state, pruning stays off: a node's own locator is
    not enough to reconstruct the *placement* locators of hash-colliding
    groups, and pruning against incomplete locator state could skip a
    probe that must hit.
    """

    def __init__(
        self,
        nodes: Iterable[DataNode],
        suffix_bits: int,
        max_words: int | None = None,
        max_query_words: int = 16,
        tracker: AccessTracker | None = None,
        sig_encoding: str = "plain",
        offsets_encoding: str = "plain",
        vocabulary: Container[str] | None = None,
        size_histogram: Mapping[int, int] | None = None,
        fast_path: bool = True,
    ) -> None:
        if not 1 <= suffix_bits <= 48:
            raise ValueError("suffix_bits must be in [1, 48]")
        if sig_encoding not in ("plain", "rrr", "eliasfano"):
            raise ValueError(
                "sig_encoding must be 'plain', 'rrr', or 'eliasfano'"
            )
        if offsets_encoding not in ("plain", "eliasfano"):
            raise ValueError("offsets_encoding must be 'plain' or 'eliasfano'")
        self.suffix_bits = suffix_bits
        self.sig_encoding = sig_encoding
        self.offsets_encoding = offsets_encoding
        self.max_words = max_words
        self.max_query_words = max_query_words
        self.tracker = tracker
        self._vocabulary = vocabulary
        self._size_histogram = size_histogram
        self.fast_path = (
            fast_path and vocabulary is not None and size_histogram is not None
        )
        merged: dict[int, DataNode] = {}
        for node in nodes:
            suffix = hash_suffix(wordhash(node.locator), suffix_bits)
            target = merged.get(suffix)
            if target is None:
                # Copy so the source index's nodes stay untouched.
                target = DataNode(node.locator)
                merged[suffix] = target
            for entry in node.entries:
                target.add(entry.ad)
        self._suffix_order = sorted(merged)
        self._nodes = [merged[s] for s in self._suffix_order]
        self._build_bitarrays()

    @classmethod
    def from_index(
        cls,
        index: WordSetIndex,
        suffix_bits: int,
        tracker: AccessTracker | None = None,
        sig_encoding: str = "plain",
        offsets_encoding: str = "plain",
    ) -> CompressedWordSetIndex:
        return cls(
            index.nodes.values(),
            suffix_bits=suffix_bits,
            max_words=index.max_words,
            max_query_words=index.max_query_words,
            tracker=tracker,
            sig_encoding=sig_encoding,
            offsets_encoding=offsets_encoding,
            # The source index's *placement* locator state makes pruning
            # exact on the compressed path too (see the class docstring).
            vocabulary=index.indexed_vocabulary(),
            size_histogram=index.locator_size_histogram(),
            fast_path=index.fast_path,
        )

    def _build_bitarrays(self) -> None:
        if self.sig_encoding == "rrr":
            from repro.compress.rrr import RRRBitVector

            self.bsig = RRRBitVector.from_positions(
                1 << self.suffix_bits, self._suffix_order
            )
        elif self.sig_encoding == "eliasfano":
            from repro.compress.eliasfano import EliasFanoBitVector

            self.bsig = EliasFanoBitVector.from_positions(
                1 << self.suffix_bits, self._suffix_order
            )
        else:
            self.bsig = BitVector.from_positions(
                1 << self.suffix_bits, self._suffix_order
            )
        offsets = []
        position = 0
        for node in self._nodes:
            offsets.append(position)
            position += node.size_bytes()
        self._total_node_bytes = max(position, 1)
        self._offsets = offsets
        if self.offsets_encoding == "eliasfano":
            from repro.compress.eliasfano import EliasFano

            self.boff = EliasFano.from_bit_positions(
                self._total_node_bytes, offsets
            )
        else:
            self.boff = BitVector.from_positions(self._total_node_bytes, offsets)

    # ------------------------------------------------------------------ #

    def lookup(self, locator: frozenset[str]) -> DataNode | None:
        """The Fig 6 lookup: suffix -> rank over B^sig -> select over B^off.

        Returns the (possibly merged) node stored for the locator's hash
        suffix, or ``None`` when the suffix is absent.
        """
        sw = hash_suffix(wordhash(locator), self.suffix_bits)
        if not self.bsig[sw]:
            return None
        rank = self.bsig.rank1(sw + 1)
        offset = self.boff.select1(rank)
        node = self._nodes[rank - 1]
        assert self._offsets[rank - 1] == offset
        return node

    def probe_plan(self, words: frozenset[str]) -> ProbePlan:
        """The probe plan a broad-match over ``words`` executes — the
        shared :func:`~repro.perf.prefilter.plan_for_query` pipeline, so
        the compressed path prunes exactly like the dict-backed index."""
        return plan_for_query(
            words,
            fast_path=self.fast_path,
            vocabulary=self._vocabulary if self._vocabulary is not None else (),
            size_histogram=(
                self._size_histogram if self._size_histogram is not None else {}
            ),
            max_words=self.max_words,
            max_query_words=self.max_query_words,
        )

    def _probe_keys(self, plan: ProbePlan) -> Iterable[int]:
        """Hash keys for every probe of ``plan``, in enumeration order,
        assembled from memoized per-word contributions when the canonical
        hash is in effect."""
        if wordhash is _CANONICAL_WORDHASH:
            contribs = [word_contrib(word) for word in plan.candidates]
            return (key for key, _ in hashed_index_subsets(contribs, plan.sizes))
        return (
            wordhash(subset)
            for subset in sized_subsets(plan.candidates, plan.sizes)
        )

    def query_broad(self, query: Query) -> list[Advertisement]:
        """Broad match over the compressed structure (verified, exact)."""
        plan = self.probe_plan(query.words)
        words = plan.words
        tracker = self.tracker
        results: list[Advertisement] = []
        visited: set[int] = set()
        for key in self._probe_keys(plan):
            sw = hash_suffix(key, self.suffix_bits)
            if tracker is not None:
                # Two random bit-array touches: B^sig probe + B^off select.
                tracker.hash_probe(1)
            if sw in visited:
                continue
            visited.add(sw)
            if not self.bsig[sw]:
                continue
            rank = self.bsig.rank1(sw + 1)
            node = self._nodes[rank - 1]
            matched, scanned = node.scan(words)
            if tracker is not None:
                tracker.random_access(scanned)
                tracker.candidate(
                    sum(1 for e in node.entries if e.word_count <= len(words))
                )
            results.extend(matched)
        if tracker is not None:
            tracker.query_done()
        return results

    def query(
        self, query: Query, match_type: MatchType = MatchType.BROAD
    ) -> list[Advertisement]:
        """The shared :class:`RetrievalIndex` surface: broad candidates,
        then phrase/exact verification on the stored phrases."""
        return apply_match_type(self.query_broad(query), query, match_type)

    def stats(self) -> dict[str, float]:
        """Structural statistics (the :class:`RetrievalIndex` surface)."""
        return {
            "num_nodes": self.num_nodes(),
            "node_bytes": self.node_bytes(),
            "structure_bits": self.structure_bits(),
            "entropy_bits": self.entropy_bits(),
        }

    # ------------------------------------------------------------------ #
    # Size accounting.

    def __len__(self) -> int:
        return sum(len(node) for node in self._nodes)

    def num_nodes(self) -> int:
        return len(self._nodes)

    def node_bytes(self) -> int:
        return sum(node.size_bytes() for node in self._nodes)

    def structure_bits(self) -> int:
        """Actual bits of the two structures including rank directories.

        With the ``rrr`` / ``eliasfano`` encodings this is a genuinely
        compressed measurement; with ``plain`` it is the uncompressed
        broadword layout.
        """
        return self.bsig.size_bits() + self.boff.size_bits()

    def entropy_bits(self) -> float:
        """``n*H0(B^sig) + n*H0(B^off)`` — the compressed-size accounting
        used in the paper's 9:1 example (encoding-independent)."""
        num_suffixes = len(self._suffix_order)
        return h0_bits(1 << self.suffix_bits, num_suffixes) + h0_bits(
            self._total_node_bytes, len(self._offsets)
        )

    def average_entries_per_suffix(self) -> float:
        """Mean merged-node size — grows as ``suffix_bits`` shrinks."""
        if not self._nodes:
            return 0.0
        return sum(len(n) for n in self._nodes) / len(self._nodes)


def merged_node_count(locators: Iterable[frozenset[str]], suffix_bits: int) -> int:
    """Number of distinct ``s``-bit suffixes over the given locators."""
    return len(
        {hash_suffix(wordhash(loc), suffix_bits) for loc in locators}
    )
