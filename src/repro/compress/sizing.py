"""Entropy-based size analysis of the compressed lookup (Section VI).

Implements the paper's space accounting: a bit-array ``B`` of length ``n``
with ``k`` ones compresses to about ``n * H0(B)`` bits, with
``n*H0 <= k*log2(n/k) + k*log2(e)`` as the convenient upper bound the paper
uses in its worked example.  :func:`worked_example` reproduces that example
(100M ads, 20M distinct word-sets, s = 28, 75 bytes/word-set) and returns
every intermediate quantity so the experiment harness can print the same
≈9:1 ratio.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import e, log2


def h0_bits(n: int, k: int) -> float:
    """Exact zero-order empirical entropy of an (n, k) bit string, in bits.

    ``n * H0(B) = k*log2(n/k) + (n-k)*log2(n/(n-k))``; 0 when the string is
    constant.
    """
    if not 0 <= k <= n:
        raise ValueError("need 0 <= k <= n")
    if n == 0 or k == 0 or k == n:
        return 0.0
    return k * log2(n / k) + (n - k) * log2(n / (n - k))


def h0_upper_bound_bits(n: int, k: int) -> float:
    """The paper's bound: ``n*H0(B) <= k*log2(n/k) + k*log2(e)``."""
    if not 0 < k <= n:
        raise ValueError("need 0 < k <= n")
    return k * log2(n / k) + k * log2(e)


def hash_table_bits(
    num_entries: int,
    signature_bytes: int = 4,
    offset_bytes: int = 4,
    blowup: float = 4 / 3,
) -> float:
    """Modeled size of a conventional hash table for ``num_entries`` keys.

    Mirrors the paper: (signature + offset) per entry, scaled by the
    occupancy blow-up factor.
    """
    return num_entries * (signature_bytes + offset_bytes) * 8 * blowup


@dataclass(frozen=True, slots=True)
class WorkedExample:
    """All quantities of the paper's Section VI sizing example."""

    num_ads: int
    num_wordsets: int
    suffix_bits: int
    bytes_per_wordset: int
    hash_bits: float
    bsig_positions: int
    bsig_bits_bound: float
    boff_positions: int
    boff_bits_bound: float

    @property
    def compressed_bits(self) -> float:
        return self.bsig_bits_bound + self.boff_bits_bound

    @property
    def ratio(self) -> float:
        """Hash-table size : compressed size (the paper reports ≈9:1)."""
        return self.hash_bits / self.compressed_bits


def worked_example(
    num_ads: int = 100_000_000,
    wordsets_per_ads: int = 5,
    suffix_bits: int = 28,
    bytes_per_wordset: int = 75,
) -> WorkedExample:
    """Reproduce the paper's Section VI example computation.

    Defaults give the paper's numbers: ``size(H) ≈ 2.1e8`` bytes
    (``≈1.7e9`` bits), ``n*H0(B_sig) ≈ 8e7``, ``n*H0(B_off) ≈ 1e8`` and a
    ratio of about 9:1.
    """
    num_wordsets = num_ads // wordsets_per_ads
    hash_bits = hash_table_bits(num_wordsets)
    bsig_positions = 2**suffix_bits
    bsig_bound = h0_upper_bound_bits(bsig_positions, num_wordsets)
    boff_positions = num_wordsets * bytes_per_wordset
    boff_bound = h0_upper_bound_bits(boff_positions, num_wordsets)
    return WorkedExample(
        num_ads=num_ads,
        num_wordsets=num_wordsets,
        suffix_bits=suffix_bits,
        bytes_per_wordset=bytes_per_wordset,
        hash_bits=hash_bits,
        bsig_positions=bsig_positions,
        bsig_bits_bound=bsig_bound,
        boff_positions=boff_positions,
        boff_bits_bound=boff_bound,
    )
