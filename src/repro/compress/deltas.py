"""Delta + varint coding of bid-price sequences (Section VI).

Within a data node, bid prices of co-located ads are similar, so the paper
suggests delta-compression.  We store the first value as-is and each
subsequent value as a zig-zag-encoded delta, all in LEB128 varints.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence


def zigzag_encode(value: int) -> int:
    """Map signed to unsigned: 0,-1,1,-2,2 -> 0,1,2,3,4."""
    return (value << 1) if value >= 0 else ((-value) << 1) - 1


def zigzag_decode(value: int) -> int:
    """Inverse of :func:`zigzag_encode`."""
    return (value >> 1) if value % 2 == 0 else -((value + 1) >> 1)


def varint_encode(value: int) -> bytes:
    """LEB128 encoding of a non-negative integer."""
    if value < 0:
        raise ValueError("varint requires a non-negative value")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def varint_decode(data: bytes, offset: int = 0) -> tuple[int, int]:
    """Decode one varint; returns (value, next offset)."""
    value = 0
    shift = 0
    while True:
        if offset >= len(data):
            raise ValueError("truncated varint")
        byte = data[offset]
        offset += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, offset
        shift += 7


def delta_encode_prices(prices: Sequence[int]) -> bytes:
    """Encode a price sequence as varint(first) + zigzag-varint deltas."""
    if not prices:
        return b""
    out = bytearray(varint_encode(zigzag_encode(prices[0])))
    for prev, cur in zip(prices, prices[1:]):
        out += varint_encode(zigzag_encode(cur - prev))
    return bytes(out)


def delta_decode_prices(data: bytes) -> list[int]:
    """Inverse of :func:`delta_encode_prices`."""
    if not data:
        return []
    prices: list[int] = []
    offset = 0
    raw, offset = varint_decode(data, offset)
    prices.append(zigzag_decode(raw))
    while offset < len(data):
        raw, offset = varint_decode(data, offset)
        prices.append(prices[-1] + zigzag_decode(raw))
    return prices


def encoded_size(prices: Iterable[int]) -> int:
    """Byte size of the delta encoding (for the compression-aware
    ``weight(S)`` adjustment described in Section VI)."""
    return len(delta_encode_prices(list(prices)))
