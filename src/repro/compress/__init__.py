"""Compression of the broad-match index (Section VI of the paper).

* :class:`BitVector` — rank/select bit arrays (broadword style);
* :class:`CompressedWordSetIndex` — the ``B^sig`` / ``B^off`` lookup of
  Fig 6 with suffix-collision node merging;
* :mod:`repro.compress.frontcoding` — relative phrase coding in data nodes;
* :mod:`repro.compress.deltas` — delta/varint bid-price coding;
* :mod:`repro.compress.sizing` — ``H0`` entropy accounting and the paper's
  worked 9:1 example;
* :mod:`repro.compress.suffix_opt` — choosing the suffix size ``s``.
"""

from repro.compress.bitvector import BitVector
from repro.compress.compressed_hash import (
    CompressedWordSetIndex,
    merged_node_count,
)
from repro.compress.eliasfano import EliasFano
from repro.compress.rrr import RRRBitVector
from repro.compress.deltas import (
    delta_decode_prices,
    delta_encode_prices,
    varint_decode,
    varint_encode,
    zigzag_decode,
    zigzag_encode,
)
from repro.compress.frontcoding import (
    FrontCodedPhrase,
    compression_ratio,
    encoded_size_bytes,
    front_decode,
    front_encode,
    plain_size_bytes,
)
from repro.compress.sizing import (
    WorkedExample,
    h0_bits,
    h0_upper_bound_bits,
    hash_table_bits,
    worked_example,
)
from repro.compress.suffix_opt import (
    SuffixTradeoffPoint,
    choose_suffix_bits,
    evaluate_suffix_sizes,
)

__all__ = [
    "BitVector",
    "CompressedWordSetIndex",
    "EliasFano",
    "FrontCodedPhrase",
    "RRRBitVector",
    "SuffixTradeoffPoint",
    "WorkedExample",
    "choose_suffix_bits",
    "compression_ratio",
    "delta_decode_prices",
    "delta_encode_prices",
    "encoded_size_bytes",
    "evaluate_suffix_sizes",
    "front_decode",
    "front_encode",
    "h0_bits",
    "h0_upper_bound_bits",
    "hash_table_bits",
    "merged_node_count",
    "plain_size_bytes",
    "varint_decode",
    "varint_encode",
    "worked_example",
    "zigzag_decode",
    "zigzag_encode",
]
