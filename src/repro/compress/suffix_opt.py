"""Choosing the suffix size ``s`` (Section VI, "Selecting the suffix-size").

A shorter suffix shrinks ``B^sig`` (and the entropy of ``B^off``) but
merges more nodes, making the average probe scan more data.  Following the
paper, we reuse the workload cost model with two differences: collisions
happen at suffix granularity (we cannot steer them per node), and the
objective trades structure size against access time rather than optimizing
time alone — expressed here as ``cost = access_ns + space_weight *
structure_bits``.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.core.queries import Workload
from repro.core.wordset_index import WordSetIndex
from repro.compress.compressed_hash import CompressedWordSetIndex
from repro.cost.accounting import AccessTracker
from repro.cost.model import CostModel


@dataclass(frozen=True, slots=True)
class SuffixTradeoffPoint:
    """One point on the size/speed curve."""

    suffix_bits: int
    structure_bits: int
    entropy_bits: float
    num_nodes: int
    avg_entries_per_node: float
    access_ns: float

    def objective(self, space_weight_ns_per_bit: float) -> float:
        return self.access_ns + space_weight_ns_per_bit * self.entropy_bits


def evaluate_suffix_sizes(
    index: WordSetIndex,
    workload: Workload,
    model: CostModel,
    suffix_bits_range: Sequence[int],
) -> list[SuffixTradeoffPoint]:
    """Build the compressed structure at each ``s`` and measure modeled
    access cost of the workload plus structure size."""
    points = []
    for bits in suffix_bits_range:
        compressed = CompressedWordSetIndex.from_index(index, suffix_bits=bits)
        access_ns = _workload_access_ns(compressed, workload, model)
        points.append(
            SuffixTradeoffPoint(
                suffix_bits=bits,
                structure_bits=compressed.structure_bits(),
                entropy_bits=compressed.entropy_bits(),
                num_nodes=compressed.num_nodes(),
                avg_entries_per_node=compressed.average_entries_per_suffix(),
                access_ns=access_ns,
            )
        )
    return points


def _workload_access_ns(
    compressed: CompressedWordSetIndex, workload: Workload, model: CostModel
) -> float:
    """Frequency-weighted modeled access time of the workload."""
    total = 0.0
    saved = compressed.tracker
    try:
        for query, frequency in workload:
            tracker = AccessTracker()
            compressed.tracker = tracker
            compressed.query_broad(query)
            total += frequency * tracker.stats.modeled_ns(model)
    finally:
        compressed.tracker = saved
    return total


def choose_suffix_bits(
    index: WordSetIndex,
    workload: Workload,
    model: CostModel,
    suffix_bits_range: Sequence[int],
    space_weight_ns_per_bit: float = 0.0,
) -> SuffixTradeoffPoint:
    """Pick the ``s`` minimizing access time + weighted structure size.

    ``space_weight_ns_per_bit = 0`` optimizes pure speed (largest useful
    suffix); increasing it shifts the optimum toward smaller, more
    collision-prone structures.
    """
    points = evaluate_suffix_sizes(index, workload, model, suffix_bits_range)
    if not points:
        raise ValueError("empty suffix_bits_range")
    return min(points, key=lambda p: p.objective(space_weight_ns_per_bit))
