"""Elias-Fano encoding of monotone integer sequences.

The compressed hash's ``B^off`` is a sparse bit array marking the byte
offsets at which data nodes start — equivalently, a strictly increasing
integer sequence.  Elias-Fano is the canonical succinct representation for
exactly that: ``k`` values below ``u`` take ``k*(2 + ceil(log2(u/k)))``
bits, within a constant of the ``H0`` bound the paper's sizing argument
uses, while supporting O(1)-ish ``access(j)`` (the ``select_1`` the Fig 6
lookup needs) and binary-search ``rank``.

Layout: each value is split into ``low_bits = floor(log2(u/k))`` low bits
stored verbatim and a high part stored in unary inside a plain rank/select
bit vector (value ``j``'s high part ``h_j`` is a 1-bit at position
``h_j + j``).
"""

from __future__ import annotations

from bisect import bisect_left
from collections.abc import Iterable, Sequence

from repro.compress.bitvector import BitVector


class EliasFano:
    """Succinct monotone sequence with ``access`` and predecessor search."""

    def __init__(self, values: Sequence[int], universe: int | None = None) -> None:
        values = list(values)
        if any(b < a for a, b in zip(values, values[1:])):
            raise ValueError("values must be non-decreasing")
        if values and values[0] < 0:
            raise ValueError("values must be non-negative")
        self._k = len(values)
        self._universe = (
            universe
            if universe is not None
            else (values[-1] + 1 if values else 1)
        )
        if values and values[-1] >= self._universe:
            raise ValueError("universe too small for the values")
        if self._k == 0:
            self._low_bits = 0
            self._lows: list[int] = []
            self._high = BitVector([])
            return
        ratio = max(1, self._universe // self._k)
        self._low_bits = max(0, ratio.bit_length() - 1)
        mask = (1 << self._low_bits) - 1
        self._lows = [v & mask for v in values]
        high_positions = [
            (v >> self._low_bits) + j for j, v in enumerate(values)
        ]
        self._high = BitVector.from_positions(
            high_positions[-1] + 1 if high_positions else 1, high_positions
        )

    @classmethod
    def from_bit_positions(cls, length: int, one_positions: Iterable[int]) -> EliasFano:
        """Encode a sparse bit array (the 1-bit positions), like ``B^off``."""
        return cls(sorted(set(one_positions)), universe=max(1, length))

    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return self._k

    @property
    def universe(self) -> int:
        return self._universe

    def access(self, j: int) -> int:
        """The ``j``-th (0-based) value — ``select_1(B, j+1)`` on the
        equivalent bit array."""
        if not 0 <= j < self._k:
            raise IndexError(j)
        high = self._high.select1(j + 1) - j
        return (high << self._low_bits) | self._lows[j]

    def select1(self, j: int) -> int:
        """1-based select, matching the BitVector interface."""
        return self.access(j - 1)

    def rank(self, value: int) -> int:
        """Number of stored values strictly below ``value``."""
        if self._k == 0 or value <= 0:
            return 0
        low = 0
        high = self._k
        while low < high:
            mid = (low + high) // 2
            if self.access(mid) < value:
                low = mid + 1
            else:
                high = mid
        return low

    def __contains__(self, value: int) -> bool:
        index = self.rank(value)
        return index < self._k and self.access(index) == value

    def values(self) -> list[int]:
        return [self.access(j) for j in range(self._k)]

    def size_bits(self) -> int:
        """Actual storage: low bits + high bit vector (with directories)."""
        return self._k * self._low_bits + self._high.size_bits()

    @staticmethod
    def theoretical_bits(k: int, universe: int) -> float:
        """The textbook ``k * (2 + log2(u/k))`` bound."""
        if k == 0:
            return 0.0
        from math import log2

        return k * (2 + max(0.0, log2(universe / k)))


class EliasFanoBitVector:
    """Adapter exposing the BitVector read interface over an EF-coded set.

    For very sparse bit arrays (``B^sig`` over a ``2^s`` universe with few
    nodes) this beats RRR, whose class stream is linear in the array
    *length*; EF is linear in the number of ones.
    """

    __slots__ = ("_ef", "_n")

    def __init__(self, length: int, one_positions: Iterable[int]) -> None:
        self._n = length
        self._ef = EliasFano.from_bit_positions(length, one_positions)

    @classmethod
    def from_positions(cls, length: int, one_positions: Iterable[int]):
        return cls(length, one_positions)

    def __len__(self) -> int:
        return self._n

    @property
    def ones(self) -> int:
        return len(self._ef)

    def __getitem__(self, i: int) -> int:
        if not 0 <= i < self._n:
            raise IndexError(i)
        return int(i in self._ef)

    def rank1(self, i: int) -> int:
        if not 0 <= i <= self._n:
            raise IndexError(i)
        return self._ef.rank(i)

    def rank0(self, i: int) -> int:
        return i - self.rank1(i)

    def select1(self, j: int) -> int:
        return self._ef.select1(j)

    def size_bits(self) -> int:
        return self._ef.size_bits()


def _binary_search_guard(values: Sequence[int], target: int) -> int:
    """Reference rank via bisect, used by tests."""
    return bisect_left(list(values), target)
