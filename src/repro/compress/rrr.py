"""RRR-style compressed bit vector: ``nH0(B) + o(n)`` bits with rank/select.

Section VI builds its lookup on "compressed binary sequences ... studied in
the context of compressed full-text indexes" [Navarro & Mäkinen] whose
space is ``nH0(B) + o(k) + O(log log n)``.  This module implements the
classical RRR construction [Raman, Raman, Rao]:

* the bit string is split into blocks of ``BLOCK_BITS`` bits;
* each block is stored as a *class* (its popcount, ``ceil(log2(b+1))``
  bits) plus an *offset* (the block's index in the enumeration of all
  blocks of that class, ``ceil(log2 C(b, c))`` bits — 0 bits for the
  all-zero and all-one classes);
* superblocks store cumulative rank and the cumulative bit position of
  their first block's offset, giving O(superblock) rank and
  binary-search select.

For the sparse bit arrays of the compressed hash (``B^sig``, ``B^off``)
the measured size tracks the ``H0`` entropy closely — the property the
paper's 9:1 example relies on.
"""

from __future__ import annotations

from bisect import bisect_right
from collections.abc import Iterable
from math import comb

BLOCK_BITS = 15
SUPERBLOCK_BLOCKS = 32

_CLASS_BITS = (BLOCK_BITS + 1).bit_length()  # bits to store a popcount 0..15

#: offset widths per class: ceil(log2 C(15, c)) bits.
_OFFSET_BITS = [
    max(0, (comb(BLOCK_BITS, c) - 1).bit_length()) for c in range(BLOCK_BITS + 1)
]


def _block_offset(block: int, cls: int) -> int:
    """Enumerative (combinatorial) index of ``block`` among all
    ``BLOCK_BITS``-bit values with popcount ``cls``."""
    offset = 0
    remaining = cls
    for bit in range(BLOCK_BITS - 1, -1, -1):
        if remaining == 0:
            break
        if block & (1 << bit):
            # All values with a 0 at this bit and `remaining` ones in the
            # lower bits come first.
            offset += comb(bit, remaining)
            remaining -= 1
    return offset


def _block_from_offset(offset: int, cls: int) -> int:
    """Inverse of :func:`_block_offset`."""
    block = 0
    remaining = cls
    for bit in range(BLOCK_BITS - 1, -1, -1):
        if remaining == 0:
            break
        zero_count = comb(bit, remaining)
        if offset >= zero_count:
            offset -= zero_count
            block |= 1 << bit
            remaining -= 1
    return block


class _BitWriter:
    def __init__(self) -> None:
        self._value = 0
        self._bits = 0

    def write(self, value: int, width: int) -> None:
        if width:
            self._value |= value << self._bits
            self._bits += width

    def read(self, position: int, width: int) -> int:
        if not width:
            return 0
        return (self._value >> position) & ((1 << width) - 1)

    @property
    def bit_length(self) -> int:
        return self._bits


class RRRBitVector:
    """Compressed bit vector with rank/select; immutable after build."""

    def __init__(self, bits: Iterable[bool | int]) -> None:
        blocks: list[int] = []
        current = 0
        offset = 0
        n = 0
        for bit in bits:
            if bit:
                current |= 1 << offset
            offset += 1
            n += 1
            if offset == BLOCK_BITS:
                blocks.append(current)
                current = 0
                offset = 0
        if offset:
            blocks.append(current)
        self._n = n
        self._num_blocks = len(blocks)
        self._classes: list[int] = []
        self._offsets = _BitWriter()
        #: per-superblock: (cumulative rank, cumulative offset-bit position)
        self._super: list[tuple[int, int]] = []
        rank = 0
        for i, block in enumerate(blocks):
            if i % SUPERBLOCK_BLOCKS == 0:
                self._super.append((rank, self._offsets.bit_length))
            cls = block.bit_count()
            self._classes.append(cls)
            self._offsets.write(_block_offset(block, cls), _OFFSET_BITS[cls])
            rank += cls
        self._ones = rank
        # Select samples: superblock index of every SUPERBLOCK_BLOCKS-th one.
        self._super_ranks = [s[0] for s in self._super]

    @classmethod
    def from_positions(cls, length: int, one_positions: Iterable[int]) -> RRRBitVector:
        """Build from sparse 1-bit positions without touching every bit.

        Equivalent to the bit-iterable constructor but O(blocks + ones):
        essential for the compressed hash's ``B^sig`` (length ``2^s``).
        """
        positions = sorted(set(one_positions))
        if positions and (positions[0] < 0 or positions[-1] >= length):
            raise ValueError("position out of range")
        num_blocks = (length + BLOCK_BITS - 1) // BLOCK_BITS
        blocks: dict[int, int] = {}
        for pos in positions:
            blocks[pos // BLOCK_BITS] = blocks.get(pos // BLOCK_BITS, 0) | (
                1 << (pos % BLOCK_BITS)
            )
        vec = cls.__new__(cls)
        vec._n = length
        vec._num_blocks = num_blocks
        vec._classes = []
        vec._offsets = _BitWriter()
        vec._super = []
        rank = 0
        for i in range(num_blocks):
            if i % SUPERBLOCK_BLOCKS == 0:
                vec._super.append((rank, vec._offsets.bit_length))
            block = blocks.get(i, 0)
            block_cls = block.bit_count()
            vec._classes.append(block_cls)
            vec._offsets.write(
                _block_offset(block, block_cls), _OFFSET_BITS[block_cls]
            )
            rank += block_cls
        vec._ones = rank
        vec._super_ranks = [s[0] for s in vec._super]
        return vec

    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return self._n

    @property
    def ones(self) -> int:
        return self._ones

    def _decode_block(self, index: int) -> int:
        sb = index // SUPERBLOCK_BLOCKS
        _, bitpos = self._super[sb]
        for i in range(sb * SUPERBLOCK_BLOCKS, index):
            bitpos += _OFFSET_BITS[self._classes[i]]
        cls = self._classes[index]
        offset = self._offsets.read(bitpos, _OFFSET_BITS[cls])
        return _block_from_offset(offset, cls)

    def __getitem__(self, i: int) -> int:
        if not 0 <= i < self._n:
            raise IndexError(i)
        block = self._decode_block(i // BLOCK_BITS)
        return (block >> (i % BLOCK_BITS)) & 1

    def rank1(self, i: int) -> int:
        """Number of 1-bits in ``B[0:i]``."""
        if not 0 <= i <= self._n:
            raise IndexError(i)
        block_index, bit_index = divmod(i, BLOCK_BITS)
        sb = block_index // SUPERBLOCK_BLOCKS
        rank, bitpos = self._super[sb] if self._super else (0, 0)
        for b in range(sb * SUPERBLOCK_BLOCKS, block_index):
            rank += self._classes[b]
            bitpos += _OFFSET_BITS[self._classes[b]]
        if bit_index and block_index < self._num_blocks:
            cls = self._classes[block_index]
            offset = self._offsets.read(bitpos, _OFFSET_BITS[cls])
            block = _block_from_offset(offset, cls)
            rank += (block & ((1 << bit_index) - 1)).bit_count()
        return rank

    def rank0(self, i: int) -> int:
        return i - self.rank1(i)

    def select1(self, j: int) -> int:
        """Position of the ``j``-th (1-based) 1-bit."""
        if not 1 <= j <= self._ones:
            raise ValueError(f"select1({j}) out of range")
        # Binary search superblocks on cumulative rank, then scan blocks.
        sb = bisect_right(self._super_ranks, j - 1) - 1
        rank, bitpos = self._super[sb]
        for b in range(sb * SUPERBLOCK_BLOCKS, self._num_blocks):
            cls = self._classes[b]
            if rank + cls >= j:
                offset = self._offsets.read(bitpos, _OFFSET_BITS[cls])
                block = _block_from_offset(offset, cls)
                need = j - rank
                for bit in range(BLOCK_BITS):
                    if (block >> bit) & 1:
                        need -= 1
                        if need == 0:
                            return b * BLOCK_BITS + bit
            rank += cls
            bitpos += _OFFSET_BITS[cls]
        raise AssertionError("unreachable: select beyond counted ones")

    def size_bits(self) -> int:
        """Actual storage: class stream + offset stream + directories."""
        class_bits = self._num_blocks * _CLASS_BITS
        offset_bits = self._offsets.bit_length
        # One (rank, offset-position) pair per superblock, 32 bits each.
        directory_bits = len(self._super) * 64
        return class_bits + offset_bits + directory_bits
