"""Front-coding of phrases within a data node (Section VI).

Re-mapping co-locates phrases sharing words and data nodes are always read
sequentially, so each phrase can be stored relative to its predecessor: a
count of shared leading tokens plus the remaining suffix tokens.  Because
broad match is order-insensitive, we are free to store each phrase's tokens
in sorted order for coding purposes while keeping the original order
separately when phrase/exact match support is needed; this module codes a
given token sequence as-is and leaves ordering policy to the caller.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class FrontCodedPhrase:
    """One phrase coded relative to its predecessor."""

    shared_tokens: int
    suffix: tuple[str, ...]

    def encoded_bytes(self) -> int:
        """1 byte for the shared count + suffix text with separators."""
        return 1 + sum(len(t.encode("utf-8")) + 1 for t in self.suffix)


def _shared_prefix_len(a: Sequence[str], b: Sequence[str]) -> int:
    n = 0
    for x, y in zip(a, b):
        if x != y:
            break
        n += 1
    return n


def front_encode(phrases: Sequence[tuple[str, ...]]) -> list[FrontCodedPhrase]:
    """Code each phrase against its predecessor (first phrase verbatim)."""
    coded: list[FrontCodedPhrase] = []
    previous: tuple[str, ...] = ()
    for phrase in phrases:
        shared = _shared_prefix_len(previous, phrase)
        coded.append(
            FrontCodedPhrase(shared_tokens=shared, suffix=tuple(phrase[shared:]))
        )
        previous = phrase
    return coded


def front_decode(coded: Sequence[FrontCodedPhrase]) -> list[tuple[str, ...]]:
    """Inverse of :func:`front_encode`."""
    phrases: list[tuple[str, ...]] = []
    previous: tuple[str, ...] = ()
    for item in coded:
        if item.shared_tokens > len(previous):
            raise ValueError("corrupt front coding: prefix longer than previous")
        phrase = previous[: item.shared_tokens] + item.suffix
        phrases.append(phrase)
        previous = phrase
    return phrases


def plain_size_bytes(phrases: Sequence[tuple[str, ...]]) -> int:
    """Uncoded size: every token spelled out with a separator."""
    return sum(
        sum(len(t.encode("utf-8")) + 1 for t in phrase) for phrase in phrases
    )


def encoded_size_bytes(phrases: Sequence[tuple[str, ...]]) -> int:
    """Size after front-coding."""
    return sum(item.encoded_bytes() for item in front_encode(phrases))


def node_phrase_order(phrases: Sequence[tuple[str, ...]]) -> list[tuple[str, ...]]:
    """Order phrases for maximal prefix sharing without breaking the data
    node's word-count ordering: sort lexicographically *within* each word
    count (early termination needs the count order across groups only)."""
    return sorted(phrases, key=lambda p: (len(set(p)), tuple(sorted(p)), p))


def compression_ratio(phrases: Sequence[tuple[str, ...]]) -> float:
    """plain / coded size for the node-optimal ordering (>= 1.0 when the
    coding helps; 1.0 for empty input)."""
    ordered = node_phrase_order(phrases)
    plain = plain_size_bytes(ordered)
    coded = encoded_size_bytes(ordered)
    if coded == 0:
        return 1.0
    return plain / coded
