"""Bit vectors with O(1) rank and sampled select.

Section VI of the paper encodes the hash table as two compressed binary
sequences supporting ``B[i]``, ``rank_b(B, i)`` and ``select_b(B, j)``.
This module implements the plain (uncompressed) broadword variant the paper
points to as the practical choice [Vigna'08]: 64-bit words, a two-level
rank directory (superblock cumulative counts + in-word popcount), and
position-sampled select with local scan.

Space beyond the raw bits is the directory: one 64-bit cumulative count per
512-bit superblock plus one sampled position per ``SELECT_SAMPLE`` ones —
a few percent overhead, reported by :meth:`BitVector.size_bits`.
"""

from __future__ import annotations

from collections.abc import Iterable

WORD_BITS = 64
SUPERBLOCK_WORDS = 8  # 512-bit superblocks
SELECT_SAMPLE = 512  # sample every 512th one-bit


class BitVector:
    """Immutable bit array with rank/select support."""

    __slots__ = ("_n", "_words", "_super_ranks", "_select1_samples", "_ones")

    def __init__(self, bits: Iterable[bool | int]) -> None:
        words: list[int] = []
        current = 0
        offset = 0
        n = 0
        for bit in bits:
            if bit:
                current |= 1 << offset
            offset += 1
            n += 1
            if offset == WORD_BITS:
                words.append(current)
                current = 0
                offset = 0
        if offset:
            words.append(current)
        self._n = n
        self._words = words
        self._build_directories()

    @classmethod
    def from_positions(cls, length: int, one_positions: Iterable[int]) -> BitVector:
        """Build a length-``length`` vector with ones at given positions."""
        positions = sorted(set(one_positions))
        if positions and (positions[0] < 0 or positions[-1] >= length):
            raise ValueError("position out of range")
        vec = cls.__new__(cls)
        words = [0] * ((length + WORD_BITS - 1) // WORD_BITS)
        for pos in positions:
            words[pos // WORD_BITS] |= 1 << (pos % WORD_BITS)
        vec._n = length
        vec._words = words
        vec._build_directories()
        return vec

    def _build_directories(self) -> None:
        super_ranks = [0]
        running = 0
        for i, word in enumerate(self._words):
            running += word.bit_count()
            if (i + 1) % SUPERBLOCK_WORDS == 0:
                super_ranks.append(running)
        self._super_ranks = super_ranks
        self._ones = running
        samples = []
        seen = 0
        for i, word in enumerate(self._words):
            count = word.bit_count()
            if seen // SELECT_SAMPLE != (seen + count) // SELECT_SAMPLE or not samples:
                samples.append((seen, i))
            seen += count
        self._select1_samples = samples

    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return self._n

    def __getitem__(self, i: int) -> int:
        if not 0 <= i < self._n:
            raise IndexError(i)
        return (self._words[i // WORD_BITS] >> (i % WORD_BITS)) & 1

    @property
    def ones(self) -> int:
        """Total number of 1-bits."""
        return self._ones

    def rank1(self, i: int) -> int:
        """Number of 1-bits in the prefix ``B[0:i]`` (exclusive of ``i``)."""
        if not 0 <= i <= self._n:
            raise IndexError(i)
        word_index, bit_index = divmod(i, WORD_BITS)
        rank = self._super_ranks[word_index // SUPERBLOCK_WORDS]
        for w in range(
            (word_index // SUPERBLOCK_WORDS) * SUPERBLOCK_WORDS, word_index
        ):
            rank += self._words[w].bit_count()
        if bit_index:
            mask = (1 << bit_index) - 1
            rank += (self._words[word_index] & mask).bit_count()
        return rank

    def rank0(self, i: int) -> int:
        """Number of 0-bits in the prefix ``B[0:i]``."""
        return i - self.rank1(i)

    def select1(self, j: int) -> int:
        """Position of the ``j``-th (1-based) 1-bit."""
        if not 1 <= j <= self._ones:
            raise ValueError(f"select1({j}) out of range (ones={self._ones})")
        # Locate the starting word via the samples, then scan.
        start_word = 0
        for seen, word_index in self._select1_samples:
            if seen < j:
                start_word = word_index
            else:
                break
        seen = self._rank_at_word(start_word)
        for w in range(start_word, len(self._words)):
            count = self._words[w].bit_count()
            if seen + count >= j:
                # Clear-lowest-bit walk: touch only the set bits instead
                # of probing all 64 positions (the in-word scan dominates
                # select cost on sparse occupancy vectors).
                word = self._words[w]
                for _ in range(j - seen - 1):
                    word &= word - 1
                return w * WORD_BITS + (word & -word).bit_length() - 1
            seen += count
        raise AssertionError("unreachable: select beyond counted ones")

    def select0(self, j: int) -> int:
        """Position of the ``j``-th (1-based) 0-bit.  Linear scan per word."""
        zeros = self._n - self._ones
        if not 1 <= j <= zeros:
            raise ValueError(f"select0({j}) out of range (zeros={zeros})")
        seen = 0
        for w, word in enumerate(self._words):
            width = min(WORD_BITS, self._n - w * WORD_BITS)
            count = width - (word & ((1 << width) - 1)).bit_count()
            if seen + count >= j:
                # Same clear-lowest-bit walk over the complemented word.
                inverted = ~word & ((1 << width) - 1)
                for _ in range(j - seen - 1):
                    inverted &= inverted - 1
                return w * WORD_BITS + (inverted & -inverted).bit_length() - 1
            seen += count
        raise AssertionError("unreachable: select0 beyond counted zeros")

    def _rank_at_word(self, word_index: int) -> int:
        rank = self._super_ranks[word_index // SUPERBLOCK_WORDS]
        for w in range(
            (word_index // SUPERBLOCK_WORDS) * SUPERBLOCK_WORDS, word_index
        ):
            rank += self._words[w].bit_count()
        return rank

    def size_bits(self) -> int:
        """Raw bits plus directory overhead (what this structure costs)."""
        raw = len(self._words) * WORD_BITS
        directory = len(self._super_ranks) * 64 + len(self._select1_samples) * 128
        return raw + directory
