"""``PackedSegmentIndex``: the mmap-backed, zero-copy serving index.

Opens a segment file written by :class:`repro.segment.builder.SegmentBuilder`
and answers queries directly off the mapping: no node objects are
materialized at load, and a probe decodes only the node records it
actually scans (early-terminating on the word-count order, so a short
query never touches long phrases).

The query path is the Fig 6 lookup with the PR 1 probe plan in front:

1. :func:`repro.perf.prefilter.plan_for_query` prunes subset enumeration
   using the locator vocabulary and size histogram persisted in the
   segment header — the packed path plans probes *identically* to the
   ``WordSetIndex`` it was built from;
2. each probe key's ``s``-bit suffix tests one bit of ``B^sig`` (inlined
   word access, no function call on the miss path);
3. a hit ranks ``B^sig`` into the node-offset directory — ``B^off``
   materialized as a flat ``array('Q')`` at load time, the classic fully
   sampled select dictionary, so locating a node is one list index
   instead of a bit scan — and decodes the node record, front-decoding
   phrases and delta-decoding bids incrementally.

Serving reality check: a Python-level entry decode can never race a
pointer chase through live objects, so the index keeps a **bounded
decoded-node cache** (the block-cache every packed serving tier runs,
cf. the Baidu system the issue cites).  Nodes are admitted fully decoded
until ``cache_bytes`` is spent, after which admission stops — no
eviction churn, strictly bounded, and the cache is charged to
:meth:`resident_bytes` so the space accounting stays honest.  Hot nodes
then serve at materialized-object speed while the corpus stays packed.

Implements the :class:`repro.core.protocols.RetrievalIndex` protocol.
The structure is immutable; for inserts/deletes compose it with a
mutable overlay via :class:`repro.segment.overlay.SegmentedIndex`.
"""

from __future__ import annotations

import hashlib
import mmap
from array import array
from collections import OrderedDict
from collections.abc import Iterable, Iterator
from pathlib import Path
from time import perf_counter
from typing import Any

from repro.core.ads import AdInfo, Advertisement
from repro.core.matching import MatchType, apply_match_type
from repro.core.queries import Query
from repro.core.subset_enum import sized_subsets
from repro.core.wordhash import hash_suffix, wordhash
from repro.cost.accounting import AccessTracker
from repro.kernels import active_backend, numpy_available
from repro.kernels.flat import flat_probe_keys
from repro.obs.registry import MetricsRegistry, active_or_none
from repro.perf.memohash import hashed_index_subsets, word_contrib
from repro.perf.prefilter import ProbePlan, plan_for_query
from repro.resilience.deadline import Deadline, DegradedReason
from repro.segment.bits import PackedBits
from repro.segment.format import (
    SegmentFormatError,
    read_header,
    read_varint,
    section_bounds,
)
from repro.segment.sizing import deep_sizeof

#: Import-time binding of the canonical hash — same collision-test guard
#: as :mod:`repro.core.wordset_index`.
_CANONICAL_WORDHASH = wordhash

#: Default decoded-node cache budget. Sized for a hot working set (the
#: nodes a real workload actually probes), not the corpus — the whole
#: point of the packed tier is that resident state is O(traffic), while
#: the dict index is O(corpus).
DEFAULT_CACHE_BYTES = 8 << 20

_NEW_AD = object.__new__
_SET = object.__setattr__


class PackedSegmentIndex:
    """Read-only broad-match index served from a mapped segment file."""

    #: Capability marker: ``query`` accepts a ``deadline`` budget.
    supports_deadline = True

    def __init__(
        self,
        path: str | Path,
        tracker: AccessTracker | None = None,
        obs: MetricsRegistry | None = None,
        cache_bytes: int = DEFAULT_CACHE_BYTES,
    ) -> None:
        self.path = Path(path)
        self.tracker = tracker
        self._obs: MetricsRegistry | None = None
        self._closed = False
        self._views: list[memoryview] = []
        self._cache_budget = max(0, cache_bytes)
        self._cache_used = 0
        self._cache_open = self._cache_budget > 0
        self._node_cache: dict[int, list[Advertisement]] = {}
        # Phrase intern table: duplicate bids colocate in a node
        # (condition IV places all ads of one word-set together), so ads
        # sharing a phrase share one tuple and one words frozenset.
        self._phrase_cache: dict[
            tuple[str, ...], tuple[tuple[str, ...], frozenset[str]]
        ] = {}
        # Ad intern table: re-decoding a node outside the bounded cache
        # returns the *same* Advertisement objects, so steady-state
        # queries retain no new per-node lists/strings (the kernels
        # zero-allocation decode guarantee).  Charged to
        # :meth:`resident_bytes` like every other Python-side table.
        self._ad_intern: dict[tuple[object, ...], Advertisement] = {}
        #: Bounded word-set -> ProbePlan memo for deadline-free kernel
        #: batches (the segment is immutable, so plans never go stale).
        self._plan_cache: OrderedDict[frozenset[str], ProbePlan] = (
            OrderedDict()
        )
        #: ``B^sig`` words as a zero-copy numpy view (numpy backend only).
        self._sig_np: Any = None
        try:
            with self.path.open("rb") as handle:
                try:
                    self._mmap = mmap.mmap(
                        handle.fileno(), 0, access=mmap.ACCESS_READ
                    )
                except ValueError as exc:
                    raise SegmentFormatError(
                        f"cannot map segment {self.path}: {exc}"
                    ) from exc
        except OSError as exc:
            raise SegmentFormatError(
                f"cannot open segment {self.path}: {exc}"
            ) from exc
        try:
            self._load()
        except BaseException:
            self.close()
            raise
        self.bind_obs(obs)

    def _load(self) -> None:
        view = memoryview(self._mmap)
        self._views.append(view)
        header, payload_start = read_header(view)
        payload = view[payload_start:]
        self._views.append(payload)

        bsig_off, bsig_bits = section_bounds(header, "bsig")
        boff_off, boff_bits = section_bounds(header, "boff")
        nodes_off, nodes_len = section_bounds(header, "nodes")
        if len(payload) != nodes_off + nodes_len:
            raise SegmentFormatError(
                "segment payload truncated or oversized"
            )
        digest = hashlib.sha256(payload).hexdigest()
        if digest != header.get("payload_sha256"):
            raise SegmentFormatError(
                "segment checksum mismatch: file corrupt"
            )

        bsig_view = payload[bsig_off:boff_off]
        boff_view = payload[boff_off:nodes_off]
        nodes_view = payload[nodes_off:]
        self._views.extend((bsig_view, boff_view, nodes_view))
        self.bsig = PackedBits.from_buffer(bsig_view, bsig_bits)
        self.boff = PackedBits.from_buffer(boff_view, boff_bits)
        if numpy_available():
            from repro.kernels.probe import sig_words_array

            # Zero-copy u64 view for the vectorized bulk bit-test; must
            # be dropped before the mmap views are released on close.
            self._sig_np = sig_words_array(bsig_view)
        self._nodes_buf = nodes_view
        self._nodes_len = nodes_len

        # Fully materialized select directory over B^off: the j-th set
        # bit's position (the j-th node's byte offset), extracted in one
        # linear pass.  Node lookup becomes rank1(B^sig) + one index.
        offsets = array("Q")
        boff_words = self.boff.words
        for word_index in range(len(boff_view) // 8):
            word = boff_words[word_index]
            base = word_index * 64
            while word:
                low = word & -word
                offsets.append(base + low.bit_length() - 1)
                word ^= low
        self._node_offsets = offsets

        try:
            self.suffix_bits = int(header["suffix_bits"])
            raw_max_words = header["max_words"]
            self.max_words = (
                None if raw_max_words is None else int(raw_max_words)
            )
            self.max_query_words = int(header["max_query_words"])
            self.fast_path = bool(header.get("fast_path", True))
            self.generation = int(header.get("generation", 0))
            self._num_ads = int(header["num_ads"])
            self._num_nodes = int(header["num_nodes"])
            self._vocab = {
                str(word): int(count)
                for word, count in dict(header["vocab"]).items()
            }
            self._size_histogram = {
                int(size): int(count)
                for size, count in dict(header["size_histogram"]).items()
            }
            self._placements = {
                frozenset(str(w) for w in words): frozenset(
                    str(w) for w in locator
                )
                for words, locator in list(header["placements"])
            }
        except (KeyError, TypeError, ValueError) as exc:
            raise SegmentFormatError(
                f"segment header missing or malformed field: {exc}"
            ) from exc
        if not 1 <= self.suffix_bits <= 48:
            raise SegmentFormatError("suffix_bits out of range in header")
        if self.bsig.ones != self._num_nodes or len(offsets) != self._num_nodes:
            raise SegmentFormatError(
                "bit-array population disagrees with header node count"
            )
        # Token intern table, seeded with the vocabulary strings already
        # resident in the header state: decoded phrases share one string
        # object per distinct token instead of one per occurrence.
        self._token_intern = {word: word for word in self._vocab}

    # ------------------------------------------------------------------ #
    # Lifecycle

    def close(self) -> None:
        """Release every exported view and unmap the file."""
        if self._closed:
            return
        self._closed = True
        self._node_cache.clear()
        self._phrase_cache.clear()
        self._ad_intern.clear()
        self._plan_cache.clear()
        self._sig_np = None  # drop the buffer export before releasing views
        for packed in (getattr(self, "bsig", None), getattr(self, "boff", None)):
            if packed is not None:
                packed.release()
        for view in self._views:
            view.release()
        self._views.clear()
        self._mmap.close()

    def __enter__(self) -> PackedSegmentIndex:
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def bind_obs(self, obs: MetricsRegistry | None) -> None:
        """Attach (or detach, with ``None``) a metrics registry."""
        obs = active_or_none(obs)
        self._obs = obs
        if obs is not None:
            obs.counter("segment.queries", help="Queries served off segments")
            obs.counter("segment.probes", help="B^sig probes issued")
            obs.counter("segment.node_scans", help="Packed nodes scanned")
            obs.counter(
                "segment.entries_scanned",
                help="Entries examined during node scans",
            )
            obs.counter("segment.results", help="Matching ads returned")
            obs.counter(
                "segment.cache_hits", help="Node scans served decoded"
            )
            obs.counter(
                "segment.cache_misses", help="Node scans that paid a decode"
            )
            obs.gauge(
                "segment.bytes", help="Mapped segment file size"
            ).set(float(len(self._mmap)))
            obs.gauge(
                "segment.cache_bytes", help="Decoded-node cache residency"
            ).set(float(self._cache_used))

    # ------------------------------------------------------------------ #
    # Query processing

    def probe_plan(
        self, words: frozenset[str], deadline: Deadline | None = None
    ) -> ProbePlan:
        """The shared :func:`plan_for_query` pipeline over the header's
        persisted prefilter state — probe-for-probe identical to the
        source ``WordSetIndex``.  A ``deadline`` carrying degradation
        constraints tightens the cutoff and caps the plan exactly as the
        mutable index does, so both serving paths degrade identically.
        """
        max_query_words = self.max_query_words
        if deadline is not None and deadline.max_query_words is not None:
            max_query_words = min(max_query_words, deadline.max_query_words)
        plan = plan_for_query(
            words,
            fast_path=self.fast_path,
            vocabulary=self._vocab,
            size_histogram=self._size_histogram,
            max_words=self.max_words,
            max_query_words=max_query_words,
        )
        if deadline is not None:
            if min(len(words), self.max_query_words) > max_query_words:
                deadline.mark_partial(DegradedReason.TRUNCATED)
            if deadline.max_probes is not None:
                capped = plan.capped(deadline.max_probes)
                if capped is not plan:
                    deadline.mark_partial(DegradedReason.PROBES_CAPPED)
                    plan = capped
        return plan

    def _probe_keys(self, plan: ProbePlan) -> Iterable[int]:
        if wordhash is _CANONICAL_WORDHASH:
            contribs = [word_contrib(word) for word in plan.candidates]
            return (key for key, _ in hashed_index_subsets(contribs, plan.sizes))
        return (
            wordhash(subset)
            for subset in sized_subsets(plan.candidates, plan.sizes)
        )

    def query(
        self,
        query: Query,
        match_type: MatchType = MatchType.BROAD,
        deadline: Deadline | None = None,
    ) -> list[Advertisement]:
        """Broad match off the mapped file; phrase/exact verify on top.

        An expired ``deadline`` stops the probe loop between hash
        probes; the partial result is flagged on the budget object, not
        returned silently.
        """
        obs = self._obs
        started = perf_counter() if obs is not None else 0.0
        plan = self.probe_plan(query.words, deadline)
        words = plan.words
        query_len = len(words)
        tracker = self.tracker
        suffix_mask = (1 << self.suffix_bits) - 1
        sig_words = self.bsig.words
        rank1 = self.bsig.rank1
        cache = self._node_cache
        results: list[Advertisement] = []
        append = results.append
        visited: set[int] = set()
        probes = 0
        node_scans = 0
        entries_scanned = 0
        cache_hits = 0
        for key in self._probe_keys(plan):
            if deadline is not None and deadline.expired():
                deadline.mark_partial(DegradedReason.DEADLINE)
                if obs is not None:
                    obs.counter("resilience.deadline_partials").inc()
                break
            probes += 1
            suffix = key & suffix_mask
            if suffix in visited:
                continue
            visited.add(suffix)
            # Inlined B^sig bit test: the overwhelmingly common miss costs
            # one word load, no call.
            if not (sig_words[suffix >> 6] >> (suffix & 63)) & 1:
                continue
            node_index = rank1(suffix + 1) - 1
            node_scans += 1
            ads = cache.get(node_index)
            if ads is not None:
                cache_hits += 1
                scanned = 0
                for ad in ads:
                    ad_words = ad.words
                    if len(ad_words) > query_len:
                        break
                    scanned += 1
                    if ad_words <= words:
                        append(ad)
                entries_scanned += scanned
                if tracker is not None:
                    tracker.hash_probe(8)
                    tracker.candidate(scanned)
            else:
                ads = self._admit(node_index)
                if ads is None:
                    chunk = self._node_chunk(node_index)
                    ads, consumed = self._decode_entries(chunk, query_len)
                    if tracker is not None:
                        tracker.random_access(consumed)
                entries_scanned += len(ads)
                for ad in ads:
                    ad_words = ad.words
                    if len(ad_words) > query_len:
                        break
                    if ad_words <= words:
                        append(ad)
                if tracker is not None:
                    tracker.hash_probe(8)
                    tracker.candidate(len(ads))
        if tracker is not None:
            tracker.query_done()
        if obs is not None:
            obs.counter("segment.queries").inc()
            obs.counter("segment.probes").inc(probes)
            obs.counter("segment.node_scans").inc(node_scans)
            obs.counter("segment.entries_scanned").inc(entries_scanned)
            obs.counter("segment.results").inc(len(results))
            obs.counter("segment.cache_hits").inc(cache_hits)
            obs.counter("segment.cache_misses").inc(node_scans - cache_hits)
            obs.gauge("segment.cache_bytes").set(float(self._cache_used))
            obs.histogram("span.segment_query").observe(
                (perf_counter() - started) * 1e3
            )
        return apply_match_type(results, query, match_type)

    # ------------------------------------------------------------------ #
    # Kernel (array-at-a-time) batch path — see :mod:`repro.kernels`.

    def query_kernel_batch(
        self,
        queries: Iterable[Query],
        match_type: MatchType = MatchType.BROAD,
        deadline: Deadline | None = None,
    ) -> list[list[Advertisement]]:
        """Batch entry point for the :mod:`repro.kernels` fast path.

        Probes every query's flat key array against ``B^sig`` in bulk —
        one vectorized gather-shift-mask pass under the numpy backend,
        one tight local-variable loop under the python backend — instead
        of a per-probe interpreted loop.  Results and observability
        counters are bit-identical to calling :meth:`query` per query;
        bound trackers, *timed* deadlines, and swapped-in hash functions
        fall back to the scalar path.
        """
        batch = list(queries)
        backend = active_backend()
        if (
            backend == "off"
            or wordhash is not _CANONICAL_WORDHASH
            or self.tracker is not None
            or (deadline is not None and deadline.timed)
        ):
            return [self.query(q, match_type, deadline) for q in batch]
        plans = self._kernel_plans(batch, deadline)
        if backend == "numpy" and self._sig_np is not None:
            return self._kernel_batch_numpy(batch, plans, match_type)
        return self._kernel_batch_python(batch, plans, match_type)

    #: Bound on the plan memo (one power-law head).
    _MAX_CACHED_PLANS = 4096

    def _kernel_plans(
        self, queries: list[Query], deadline: Deadline | None
    ) -> list[ProbePlan]:
        """Probe plans for a kernel batch, memoized across batches.

        Deadlines carry request-specific degradation constraints (and
        record partiality), so only deadline-free queries hit the memo.
        """
        if deadline is not None:
            return [self.probe_plan(q.words, deadline) for q in queries]
        cache = self._plan_cache
        plans = []
        for query in queries:
            plan = cache.get(query.words)
            if plan is None:
                plan = self.probe_plan(query.words)
                cache[query.words] = plan
                if len(cache) > self._MAX_CACHED_PLANS:
                    cache.popitem(last=False)
            else:
                cache.move_to_end(query.words)
            plans.append(plan)
        return plans

    def _kernel_batch_numpy(
        self,
        queries: list[Query],
        plans: list[ProbePlan],
        match_type: MatchType,
    ) -> list[list[Advertisement]]:
        import numpy as np

        from repro.kernels.probe import sig_hit_positions, split_by_query

        keys_per = [
            flat_probe_keys(plan.candidates, plan.sizes, "numpy")
            for plan in plans
        ]
        boundaries: list[int] = []
        total = 0
        for keys in keys_per:
            total += len(keys)
            boundaries.append(total)
        if total:
            all_keys = (
                np.concatenate(keys_per) if len(keys_per) > 1 else keys_per[0]
            )
            suffixes = all_keys & np.uint64((1 << self.suffix_bits) - 1)
            hits = sig_hit_positions(suffixes, self._sig_np)
            # One C-speed conversion for the whole batch's (few) hits.
            hit_suffixes: list[int] = suffixes[hits].tolist()
            ends: list[int] = split_by_query(hits, boundaries).tolist()
        else:
            hit_suffixes = []
            ends = [0] * len(queries)
        out: list[list[Advertisement]] = []
        start = 0
        for i, query in enumerate(queries):
            end = ends[i]
            out.append(
                self._kernel_scan_one(
                    query,
                    plans[i],
                    len(keys_per[i]),
                    hit_suffixes[start:end],
                    match_type,
                )
            )
            start = end
        return out

    def _kernel_batch_python(
        self,
        queries: list[Query],
        plans: list[ProbePlan],
        match_type: MatchType,
    ) -> list[list[Advertisement]]:
        mask = (1 << self.suffix_bits) - 1
        test_positions = self.bsig.test_positions
        out: list[list[Advertisement]] = []
        for query, plan in zip(queries, plans):
            keys = flat_probe_keys(plan.candidates, plan.sizes, "python")
            suffixes = [key & mask for key in keys]
            hit_indexes = test_positions(suffixes)
            out.append(
                self._kernel_scan_one(
                    query,
                    plan,
                    len(keys),
                    (suffixes[h] for h in hit_indexes),
                    match_type,
                )
            )
        return out

    def _kernel_scan_one(
        self,
        query: Query,
        plan: ProbePlan,
        num_probes: int,
        hit_suffixes: Iterable[int],
        match_type: MatchType,
    ) -> list[Advertisement]:
        """Scan one query's hit nodes in probe order, mirroring the
        scalar :meth:`query` loop's cache/decode branches and recording
        the same per-query metrics.  ``hit_suffixes`` yields only the
        suffixes whose ``B^sig`` bit is set (misses were eliminated in
        bulk); duplicates are deduplicated exactly as the scalar
        ``visited`` set does."""
        obs = self._obs
        started = perf_counter() if obs is not None else 0.0
        words = plan.words
        query_len = len(words)
        rank1 = self.bsig.rank1
        cache = self._node_cache
        results: list[Advertisement] = []
        append = results.append
        visited: set[int] = set()
        node_scans = 0
        entries_scanned = 0
        cache_hits = 0
        for suffix in hit_suffixes:
            if suffix in visited:
                continue
            visited.add(suffix)
            node_index = rank1(suffix + 1) - 1
            node_scans += 1
            ads = cache.get(node_index)
            if ads is not None:
                cache_hits += 1
                scanned = 0
                for ad in ads:
                    ad_words = ad.words
                    if len(ad_words) > query_len:
                        break
                    scanned += 1
                    if ad_words <= words:
                        append(ad)
                entries_scanned += scanned
            else:
                ads = self._admit(node_index)
                if ads is None:
                    chunk = self._node_chunk(node_index)
                    ads, _consumed = self._decode_entries(chunk, query_len)
                entries_scanned += len(ads)
                for ad in ads:
                    ad_words = ad.words
                    if len(ad_words) > query_len:
                        break
                    if ad_words <= words:
                        append(ad)
        if obs is not None:
            obs.counter("segment.queries").inc()
            obs.counter("segment.probes").inc(num_probes)
            obs.counter("segment.node_scans").inc(node_scans)
            obs.counter("segment.entries_scanned").inc(entries_scanned)
            obs.counter("segment.results").inc(len(results))
            obs.counter("segment.cache_hits").inc(cache_hits)
            obs.counter("segment.cache_misses").inc(node_scans - cache_hits)
            obs.gauge("segment.cache_bytes").set(float(self._cache_used))
            obs.histogram("span.segment_query").observe(
                (perf_counter() - started) * 1e3
            )
        return apply_match_type(results, query, match_type)

    # ------------------------------------------------------------------ #
    # Node decoding

    def _node_chunk(self, node_index: int) -> bytes:
        """The node's exact byte range, copied out of the mapping (a few
        hundred bytes; ``bytes`` indexing is what makes the varint loop
        fast)."""
        offsets = self._node_offsets
        start = offsets[node_index]
        end = (
            offsets[node_index + 1]
            if node_index + 1 < len(offsets)
            else self._nodes_len
        )
        return bytes(self._nodes_buf[start:end])

    def _decode_entries(
        self, chunk: bytes, max_word_count: int | None
    ) -> tuple[list[Advertisement], int]:
        """Decode one node record into materialized ads (entry order).

        ``max_word_count`` stops the scan at the first entry longer than
        the query (entries are stored word-count-ordered); ``None``
        decodes every entry (cache admission, :meth:`iter_ads`,
        compaction).  Returns the ads and the bytes consumed.

        The hot loop inlines the one-byte varint case — the overwhelming
        majority — and falls back to :func:`read_varint` for multi-byte
        values.  Ads are built by direct slot assignment (what the frozen
        dataclass ``__init__`` does anyway) and **interned**: tokens,
        phrase tuples, and whole Advertisement objects are shared across
        decodes, so re-decoding a node the bounded cache did not admit
        allocates no new persistent objects — the zero-allocation
        steady state the kernel hot path relies on.  One token scratch
        list is reused across the node's entries.
        """
        intern = self._token_intern
        phrase_cache = self._phrase_cache
        ad_intern = self._ad_intern
        tokens: list[str] = []
        pos = 0
        num_entries = chunk[pos]
        pos += 1
        if num_entries >= 128:
            num_entries, pos = read_varint(chunk, pos - 1)
        prices_len = chunk[pos]
        pos += 1
        if prices_len >= 128:
            prices_len, pos = read_varint(chunk, pos - 1)
        price_pos = pos
        pos += prices_len
        price = 0
        ads: list[Advertisement] = []
        for index in range(num_entries):
            word_count = chunk[pos]
            pos += 1
            if word_count >= 128:
                word_count, pos = read_varint(chunk, pos - 1)
            if max_word_count is not None and word_count > max_word_count:
                break
            raw = chunk[price_pos]
            price_pos += 1
            if raw >= 128:
                raw, price_pos = read_varint(chunk, price_pos - 1)
            delta = (raw >> 1) ^ -(raw & 1)
            price = delta if index == 0 else price + delta
            shared = chunk[pos]
            pos += 1
            if shared >= 128:
                shared, pos = read_varint(chunk, pos - 1)
            num_suffix = chunk[pos]
            pos += 1
            if num_suffix >= 128:
                num_suffix, pos = read_varint(chunk, pos - 1)
            del tokens[shared:]
            for _ in range(num_suffix):
                token_len = chunk[pos]
                pos += 1
                if token_len >= 128:
                    token_len, pos = read_varint(chunk, pos - 1)
                end = pos + token_len
                token = chunk[pos:end].decode("utf-8")
                pos = end
                tokens.append(intern.setdefault(token, token))
            phrase = tuple(tokens)
            shared_phrase = phrase_cache.get(phrase)
            if shared_phrase is None:
                shared_phrase = (phrase, frozenset(phrase))
                phrase_cache[phrase] = shared_phrase
            phrase, word_set = shared_phrase
            raw_listing = chunk[pos]
            pos += 1
            if raw_listing >= 128:
                raw_listing, pos = read_varint(chunk, pos - 1)
            raw_campaign = chunk[pos]
            pos += 1
            if raw_campaign >= 128:
                raw_campaign, pos = read_varint(chunk, pos - 1)
            num_exclusions = chunk[pos]
            pos += 1
            if num_exclusions >= 128:
                num_exclusions, pos = read_varint(chunk, pos - 1)
            exclusions: tuple[str, ...] = ()
            if num_exclusions:
                decoded: list[str] = []
                for _ in range(num_exclusions):
                    text_len = chunk[pos]
                    pos += 1
                    if text_len >= 128:
                        text_len, pos = read_varint(chunk, pos - 1)
                    end = pos + text_len
                    decoded.append(chunk[pos:end].decode("utf-8"))
                    pos = end
                exclusions = tuple(decoded)
            listing_id = (raw_listing >> 1) ^ -(raw_listing & 1)
            campaign_id = (raw_campaign >> 1) ^ -(raw_campaign & 1)
            # Intern the finished ad: the key's phrase tuple is already
            # the interned instance, so identical entries re-decoded
            # later hash straight to the shared object.
            ident = (phrase, listing_id, campaign_id, price, exclusions)
            ad = ad_intern.get(ident)
            if ad is None:
                ad = _NEW_AD(Advertisement)
                _SET(ad, "phrase", phrase)
                _SET(
                    ad,
                    "info",
                    AdInfo(
                        listing_id=listing_id,
                        campaign_id=campaign_id,
                        bid_price_micros=price,
                        exclusion_phrases=exclusions,
                    ),
                )
                _SET(ad, "words", word_set)
                ad_intern[ident] = ad
            ads.append(ad)
        return ads, pos

    def _admit(self, node_index: int) -> list[Advertisement] | None:
        """Decode a node fully and cache it if the budget allows.

        Admission is first-come until ``cache_bytes`` is spent, then
        stops for good — no eviction churn, a strict bound, and (unlike
        LRU) no pathological thrash under cyclic workloads.  Returns the
        decoded ads either way, or ``None`` when admission has stopped so
        the caller uses the early-terminating direct scan instead.
        """
        if not self._cache_open:
            return None
        ads, _ = self._decode_entries(self._node_chunk(node_index), None)
        # Conservative charge: a per-node deep walk double-counts objects
        # shared across nodes, so the bound errs toward over-charging.
        charge = deep_sizeof(ads)
        if self._cache_used + charge <= self._cache_budget:
            self._node_cache[node_index] = ads
            self._cache_used += charge
        else:
            self._cache_open = False
        return ads

    # ------------------------------------------------------------------ #
    # Point access

    def _node_index_for(self, locator: frozenset[str]) -> int | None:
        """Index of the node a locator addresses, or ``None``."""
        suffix = hash_suffix(wordhash(locator), self.suffix_bits)
        if not self.bsig[suffix]:
            return None
        return self.bsig.rank1(suffix + 1) - 1

    def lookup_count(self, ad: Advertisement) -> int:
        """Occurrences of exactly ``ad`` stored in the segment.

        A point lookup, not a query: the header's persisted placements
        route the ad's word-set to the one node that could hold it.
        """
        locator = self._placements.get(ad.words, ad.words)
        node_index = self._node_index_for(locator)
        if node_index is None:
            return 0
        candidates = self._node_cache.get(node_index)
        if candidates is None:
            candidates, _ = self._decode_entries(
                self._node_chunk(node_index), len(ad.words)
            )
        return sum(1 for candidate in candidates if candidate == ad)

    def iter_ads(self) -> Iterator[Advertisement]:
        """Every stored ad, in node order (full sequential decode)."""
        for node_index in range(self._num_nodes):
            ads = self._node_cache.get(node_index)
            if ads is None:
                ads, _ = self._decode_entries(
                    self._node_chunk(node_index), None
                )
            yield from ads

    def placements(self) -> dict[frozenset[str], frozenset[str]]:
        """The persisted non-identity word-set -> locator placements."""
        return dict(self._placements)

    # ------------------------------------------------------------------ #
    # Introspection

    def __len__(self) -> int:
        return self._num_ads

    def num_nodes(self) -> int:
        return self._num_nodes

    def segment_bytes(self) -> int:
        """Size of the mapped file."""
        return len(self._mmap)

    def cache_bytes_used(self) -> int:
        """Charged residency of the decoded-node cache."""
        return self._cache_used

    def resident_bytes(self) -> int:
        """Honest resident footprint: the mapped file plus every
        Python-side auxiliary object — header dicts, rank directories,
        the node-offset array, the intern table, and the decoded-node
        cache — deep-counted with identity dedup."""
        return len(self._mmap) + deep_sizeof(
            self._vocab,
            self._size_histogram,
            self._placements,
            self._token_intern,
            self._phrase_cache,
            self._ad_intern,
            self._plan_cache,
            self._node_cache,
            self._node_offsets,
            self.bsig,
            self.boff,
            exclude=(self._mmap, *self._views),
        )

    def stats(self) -> dict[str, Any]:
        """Structural statistics (the :class:`RetrievalIndex` surface)."""
        return {
            "num_ads": self._num_ads,
            "num_nodes": self._num_nodes,
            "segment_bytes": len(self._mmap),
            "resident_bytes": self.resident_bytes(),
            "suffix_bits": self.suffix_bits,
            "generation": self.generation,
            "bsig_bits": len(self.bsig),
            "boff_bits": len(self.boff),
            "node_bytes": self._nodes_len,
            "cached_nodes": len(self._node_cache),
            "cache_bytes_used": self._cache_used,
            "interned_ads": len(self._ad_intern),
        }
