"""``SegmentBuilder``: serialize a ``WordSetIndex`` into a packed segment.

The builder folds the live hash table into the paper's Fig 6 shape, but
as one contiguous artifact a serving process can mmap:

* data nodes are merged by the ``s``-bit suffix of their hash key (the
  same collision-tolerant merge :class:`CompressedWordSetIndex` does),
  entries re-sorted to keep the global word-count order early termination
  depends on while grouping similar phrases for prefix sharing;
* phrases are front-coded and bid prices delta-coded per node (reusing
  :mod:`repro.compress.frontcoding` / :mod:`repro.compress.deltas` — the
  Section VI codings, now on the serving path);
* ``B^sig`` (suffix occupancy) and ``B^off`` (node start offsets) address
  the nodes via rank/select, serialized as little-endian u64 words;
* the header persists the probe-prefilter state (locator vocabulary
  refcounts, locator-size histogram) and the non-identity placements, so
  the packed reader plans probes exactly like the source index and
  compaction preserves re-mapping.

``write`` is atomic and durable in the PR 3 sense: unique temp file,
fsync before rename, best-effort directory sync, with crashpoints
``segment.tmp_written`` / ``segment.tmp_synced`` / ``segment.renamed``
registered with :mod:`repro.faults`.
"""

from __future__ import annotations

import hashlib
import itertools
import os
from collections.abc import Sequence
from pathlib import Path
from typing import Any

from repro.compress.deltas import delta_encode_prices, varint_encode, zigzag_encode
from repro.compress.frontcoding import front_encode
from repro.core.data_node import NodeEntry
from repro.core.wordhash import hash_suffix
from repro.core.wordset_index import WordSetIndex
from repro.faults.injector import FaultInjector, InjectedCrash, active_injector
from repro.segment.bits import pack_bits
from repro.segment.format import (
    CRASH_RENAMED,
    CRASH_TMP_SYNCED,
    CRASH_TMP_WRITTEN,
    encode_file,
)

#: Distinguishes temp files of concurrent builders within one process.
_TEMP_COUNTER = itertools.count()


def stale_temp_files(path: str | Path) -> list[Path]:
    """Orphaned ``write`` temp files for segment ``path``.

    A crash between ``segment.tmp_written`` and the rename leaves the
    unique temp file (``.{name}.{pid}.{n}.tmp``) behind, exactly as a
    power loss would; nothing ever renames or reopens it, so without
    cleanup they accumulate forever.  Matches only this segment's own
    prefix — temp files of sibling segments in the same directory are
    someone else's to clean.
    """
    path = Path(path)
    if not path.parent.is_dir():
        return []
    return sorted(path.parent.glob(f".{path.name}.*.tmp"))


def cleanup_stale_temps(path: str | Path) -> int:
    """Unlink every orphaned temp file for ``path``; returns the count.

    Safe whenever no concurrent writer targets ``path`` — the two call
    sites (:class:`~repro.segment.overlay.SegmentedIndex` open and the
    top of ``compact``) both hold that property: open happens before any
    compaction can run, and compaction is single-threaded per index.
    """
    removed = 0
    for orphan in stale_temp_files(path):
        try:
            orphan.unlink()
        except OSError:
            continue
        removed += 1
    return removed


def default_suffix_bits(num_nodes: int) -> int:
    """Suffix width giving ~1-2% B^sig occupancy for ``num_nodes``.

    Short suffixes shrink ``B^sig`` but make *every* probe of an absent
    subset hit a merged node and pay a decode; sizing the table ~64x the
    node count keeps spurious scans off the hot path for a few KiB of
    bits.  Clamped to [12, 26] — the paper's own sizing experiments
    (:mod:`repro.compress.suffix_opt`) explore the space/speed curve
    below this point.
    """
    return min(26, max(12, max(num_nodes, 1).bit_length() + 6))


def _encode_str(text: str) -> bytes:
    blob = text.encode("utf-8")
    return varint_encode(len(blob)) + blob


def encode_node(entries: Sequence[NodeEntry]) -> bytes:
    """One node record: entry count, delta-coded prices, front-coded entries.

    Layout (all ints LEB128 varints)::

        num_entries
        prices_len  prices_blob          # delta+zigzag bids, entry order
        per entry:
          word_count                     # |words(A)| — the scan-order key
          shared_tokens                  # front-coding vs previous phrase
          num_suffix_tokens  (len token)*
          zigzag(listing_id)  zigzag(campaign_id)
          num_exclusions  (len phrase)*

    The prices blob leads so a scan can decode one price per entry it
    touches, in step with the entry walk, and early termination never
    decodes prices (or anything else) past the cut.
    """
    prices = delta_encode_prices([e.ad.info.bid_price_micros for e in entries])
    out = bytearray(varint_encode(len(entries)))
    out += varint_encode(len(prices))
    out += prices
    coded = front_encode([e.ad.phrase for e in entries])
    for entry, phrase in zip(entries, coded):
        info = entry.ad.info
        out += varint_encode(entry.word_count)
        out += varint_encode(phrase.shared_tokens)
        out += varint_encode(len(phrase.suffix))
        for token in phrase.suffix:
            out += _encode_str(token)
        out += varint_encode(zigzag_encode(info.listing_id))
        out += varint_encode(zigzag_encode(info.campaign_id))
        out += varint_encode(len(info.exclusion_phrases))
        for exclusion in info.exclusion_phrases:
            out += _encode_str(exclusion)
    return bytes(out)


def _entry_order(entry: NodeEntry) -> tuple[int, tuple[str, ...], tuple[str, ...]]:
    """Word-count-major sort preserving early termination, with phrases of
    equal count sorted for maximal front-coding prefix sharing (the
    :func:`repro.compress.frontcoding.node_phrase_order` policy)."""
    return (entry.word_count, tuple(sorted(entry.ad.phrase)), entry.ad.phrase)


class SegmentBuilder:
    """Serializes one :class:`WordSetIndex` into a packed segment."""

    def __init__(
        self, index: WordSetIndex, suffix_bits: int | None = None
    ) -> None:
        if suffix_bits is not None and not 1 <= suffix_bits <= 48:
            raise ValueError("suffix_bits must be in [1, 48]")
        self.index = index
        self.suffix_bits = (
            suffix_bits
            if suffix_bits is not None
            else default_suffix_bits(len(index.nodes))
        )

    def build(self, generation: int = 0) -> bytes:
        """Produce the complete segment file as bytes."""
        s = self.suffix_bits
        merged: dict[int, list[NodeEntry]] = {}
        for key, node in self.index.nodes.items():
            merged.setdefault(hash_suffix(key, s), []).extend(node.entries)
        suffixes = sorted(merged)
        chunks: list[bytes] = []
        offsets: list[int] = []
        position = 0
        num_ads = 0
        for suffix in suffixes:
            entries = sorted(merged[suffix], key=_entry_order)
            chunk = encode_node(entries)
            offsets.append(position)
            position += len(chunk)
            num_ads += len(entries)
            chunks.append(chunk)
        nodes_blob = b"".join(chunks)

        bsig_bits = 1 << s
        bsig = pack_bits(bsig_bits, suffixes)
        boff_bits = max(position, 1)
        boff = pack_bits(boff_bits, offsets)
        payload = bsig + boff + nodes_blob

        placements = [
            [sorted(words), sorted(locator)]
            for words, locator in sorted(
                self.index.placement().items(), key=lambda kv: sorted(kv[0])
            )
            if words != locator
        ]
        header: dict[str, Any] = {
            "format": "repro-segment",
            "suffix_bits": s,
            "generation": generation,
            "num_ads": num_ads,
            "num_nodes": len(suffixes),
            "max_words": self.index.max_words,
            "max_query_words": self.index.max_query_words,
            "fast_path": self.index.fast_path,
            "vocab": self.index.locator_vocabulary_refcounts(),
            "size_histogram": {
                str(size): count
                for size, count in sorted(
                    self.index.locator_size_histogram().items()
                )
            },
            "placements": placements,
            "sections": {
                "bsig": [0, bsig_bits],
                "boff": [len(bsig), boff_bits],
                "nodes": [len(bsig) + len(boff), len(nodes_blob)],
            },
            "payload_sha256": hashlib.sha256(payload).hexdigest(),
        }
        return encode_file(header, payload)

    def write(
        self,
        path: str | Path,
        generation: int = 0,
        faults: FaultInjector | None = None,
    ) -> None:
        """Write the segment to ``path`` atomically and durably.

        Same contract as :func:`repro.persist.save_index`: a power loss at
        any instant leaves either the old complete file or the new
        complete file, never a torn one.  Crashpoints:
        ``segment.tmp_written``, ``segment.tmp_synced``,
        ``segment.renamed``.
        """
        path = Path(path)
        faults = active_injector(faults)
        data = self.build(generation)
        temp = path.with_name(
            f".{path.name}.{os.getpid()}.{next(_TEMP_COUNTER)}.tmp"
        )
        try:
            with temp.open("wb") as handle:
                handle.write(data)
                faults.crashpoint(CRASH_TMP_WRITTEN)
                handle.flush()
                os.fsync(handle.fileno())
            faults.crashpoint(CRASH_TMP_SYNCED)
            temp.replace(path)
        except BaseException as exc:
            # An injected crash mimics power loss: the temp file must stay
            # behind exactly as a real crash would leave it.
            if not isinstance(exc, InjectedCrash):
                temp.unlink(missing_ok=True)
            raise
        faults.crashpoint(CRASH_RENAMED)
        _fsync_directory(path.parent)


def _fsync_directory(directory: Path) -> None:
    """Best-effort directory fsync so the rename itself is durable."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)
