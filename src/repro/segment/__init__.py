"""Packed serving segments: the compressed index as the live query path.

PR 2 built :class:`~repro.compress.compressed_hash.CompressedWordSetIndex`
as an offline size study; this package makes the compressed form
*servable*: :class:`SegmentBuilder` freezes a
:class:`~repro.core.wordset_index.WordSetIndex` into one contiguous,
checksummed, mmap-able file (front-coded phrases, delta-coded bids,
``B^sig``/``B^off`` rank-select addressing — the paper's Fig 6 layout),
:class:`PackedSegmentIndex` serves queries straight off the mapping, and
:class:`SegmentedIndex` layers a mutable overlay with tombstones and
crash-safe :meth:`~SegmentedIndex.compact` on top so the packed path
supports the full insert/delete/query surface.

:mod:`repro.segment.tiered` generalizes the single segment+overlay pair
to an LSM-shaped tier stack: :class:`TieredSegmentedIndex` seals the
overlay into small L0 segments, background-merges tiers upward under a
checksummed manifest (crash-safe via atomic tmp+fsync+rename), and
re-optimizes placements from observed co-access during merges;
:mod:`repro.segment.churn` is its continuous-ingest correctness drill.
"""

from repro.segment.bits import PackedBits, pack_bits
from repro.segment.builder import (
    SegmentBuilder,
    cleanup_stale_temps,
    default_suffix_bits,
    stale_temp_files,
)
from repro.segment.format import (
    SegmentFormatError,
    TIERED_CRASHPOINTS,
)
from repro.segment.overlay import (
    SegmentedIndex,
    SegmentShard,
    ShardedSegmentedIndex,
    filter_tombstones,
)
from repro.segment.packed import PackedSegmentIndex
from repro.segment.sizing import deep_sizeof
from repro.segment.tiered import (
    BackgroundMerger,
    Manifest,
    ManifestFormatError,
    SegmentRecord,
    TieredConfig,
    TieredSegmentedIndex,
    manifest_fingerprint,
    pack_corpus_tiered,
    read_manifest,
)

__all__ = [
    "BackgroundMerger",
    "Manifest",
    "ManifestFormatError",
    "PackedBits",
    "PackedSegmentIndex",
    "SegmentBuilder",
    "SegmentFormatError",
    "SegmentRecord",
    "SegmentShard",
    "SegmentedIndex",
    "ShardedSegmentedIndex",
    "TIERED_CRASHPOINTS",
    "TieredConfig",
    "TieredSegmentedIndex",
    "cleanup_stale_temps",
    "deep_sizeof",
    "default_suffix_bits",
    "filter_tombstones",
    "manifest_fingerprint",
    "pack_bits",
    "pack_corpus_tiered",
    "read_manifest",
    "stale_temp_files",
]
