"""Packed serving segments: the compressed index as the live query path.

PR 2 built :class:`~repro.compress.compressed_hash.CompressedWordSetIndex`
as an offline size study; this package makes the compressed form
*servable*: :class:`SegmentBuilder` freezes a
:class:`~repro.core.wordset_index.WordSetIndex` into one contiguous,
checksummed, mmap-able file (front-coded phrases, delta-coded bids,
``B^sig``/``B^off`` rank-select addressing — the paper's Fig 6 layout),
:class:`PackedSegmentIndex` serves queries straight off the mapping, and
:class:`SegmentedIndex` layers a mutable overlay with tombstones and
crash-safe :meth:`~SegmentedIndex.compact` on top so the packed path
supports the full insert/delete/query surface.
"""

from repro.segment.bits import PackedBits, pack_bits
from repro.segment.builder import SegmentBuilder, default_suffix_bits
from repro.segment.format import SegmentFormatError
from repro.segment.overlay import SegmentedIndex, ShardedSegmentedIndex
from repro.segment.packed import PackedSegmentIndex
from repro.segment.sizing import deep_sizeof

__all__ = [
    "PackedBits",
    "PackedSegmentIndex",
    "SegmentBuilder",
    "SegmentFormatError",
    "SegmentedIndex",
    "ShardedSegmentedIndex",
    "deep_sizeof",
    "default_suffix_bits",
    "pack_bits",
]
