"""The packed segment file format: layout constants and header codec.

A segment file is one contiguous, immutable artifact::

    MAGIC (8 bytes)  "REPROSEG"
    u32 LE           format version
    u32 LE           header length in bytes
    header           JSON (UTF-8, sorted keys)
    payload          B^sig words || B^off words || node records

The JSON header carries everything the reader needs before touching the
payload: the suffix width, section offsets/lengths, the probe-prefilter
state (locator vocabulary refcounts + locator-size histogram, see
:mod:`repro.perf.prefilter`), the non-identity placements (so compaction
preserves re-mapping and point lookups can find an ad's node), and a
SHA-256 over the payload so torn or bit-rotted files fail loudly at load
instead of surfacing as silently wrong auctions.

``B^sig`` and ``B^off`` are stored as little-endian 64-bit words (the
layout :class:`repro.segment.bits.PackedBits` ranks/selects over without
copying).  Node records are the front-coded/delta-coded encoding produced
by :mod:`repro.segment.builder` and decoded lazily by
:mod:`repro.segment.packed`.
"""

from __future__ import annotations

import json
import struct
from typing import Any

MAGIC = b"REPROSEG"
FORMAT_VERSION = 1

#: Fixed-size fields following the magic: format version, header length.
_FIXED = struct.Struct("<II")

#: Byte offset where the JSON header starts.
HEADER_START = len(MAGIC) + _FIXED.size

#: Crashpoint names visited by the atomic segment write (the PR 3
#: ``save.*`` convention; see ``docs/durability.md`` and
#: ``docs/segments.md``).
CRASH_TMP_WRITTEN = "segment.tmp_written"
CRASH_TMP_SYNCED = "segment.tmp_synced"
CRASH_RENAMED = "segment.renamed"

#: Crashpoints around overlay compaction (:meth:`SegmentedIndex.compact`).
CRASH_COMPACT_START = "segment.compact.start"
CRASH_COMPACT_WRITTEN = "segment.compact.written"
CRASH_COMPACT_SWAPPED = "segment.compact.swapped"

#: Crashpoints in the tiered lifecycle (:mod:`repro.segment.tiered`).
#: Seal and merge both write their segment file first (visiting the
#: ``segment.*`` write crashpoints above), then commit the new segment
#: set through the manifest; ``tiered.manifest.swapped`` fires after
#: both the manifest rename *and* the in-memory swap, so a crash there
#: leaves disk and process agreeing on the new generation.
CRASH_SEAL_START = "tiered.seal.start"
CRASH_SEAL_WRITTEN = "tiered.seal.written"
CRASH_MERGE_START = "tiered.merge.start"
CRASH_MERGE_WRITTEN = "tiered.merge.written"
CRASH_MANIFEST_TMP_WRITTEN = "tiered.manifest.tmp_written"
CRASH_MANIFEST_TMP_SYNCED = "tiered.manifest.tmp_synced"
CRASH_MANIFEST_SWAPPED = "tiered.manifest.swapped"

#: Every tiered crashpoint, in lifecycle order (drills iterate this).
TIERED_CRASHPOINTS = (
    CRASH_SEAL_START,
    CRASH_SEAL_WRITTEN,
    CRASH_MERGE_START,
    CRASH_MERGE_WRITTEN,
    CRASH_MANIFEST_TMP_WRITTEN,
    CRASH_MANIFEST_TMP_SYNCED,
    CRASH_MANIFEST_SWAPPED,
)


class SegmentFormatError(ValueError):
    """Raised when a segment file is invalid, corrupt, or truncated."""


def encode_file(header: dict[str, Any], payload: bytes) -> bytes:
    """Assemble a complete segment file from its header and payload."""
    blob = json.dumps(header, sort_keys=True).encode("utf-8")
    return MAGIC + _FIXED.pack(FORMAT_VERSION, len(blob)) + blob + payload


def read_header(buf: bytes | memoryview) -> tuple[dict[str, Any], int]:
    """Parse and validate the preamble; returns (header, payload offset)."""
    if len(buf) < HEADER_START:
        raise SegmentFormatError("segment file truncated: missing preamble")
    if bytes(buf[: len(MAGIC)]) != MAGIC:
        raise SegmentFormatError("not a repro segment file (bad magic)")
    version, header_len = _FIXED.unpack(bytes(buf[len(MAGIC) : HEADER_START]))
    if version != FORMAT_VERSION:
        raise SegmentFormatError(
            f"unsupported segment format version {version}"
        )
    end = HEADER_START + header_len
    if len(buf) < end:
        raise SegmentFormatError("segment file truncated: incomplete header")
    try:
        header = json.loads(bytes(buf[HEADER_START:end]).decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SegmentFormatError(f"corrupt segment header: {exc}") from exc
    if not isinstance(header, dict):
        raise SegmentFormatError("corrupt segment header: not an object")
    return header, end


def read_varint(data: bytes | memoryview, offset: int) -> tuple[int, int]:
    """Decode one LEB128 varint from a buffer; returns (value, next offset).

    The zero-copy twin of :func:`repro.compress.deltas.varint_decode` —
    same wire format, but typed for ``memoryview`` so node records decode
    straight off the mapped file.
    """
    value = 0
    shift = 0
    end = len(data)
    while True:
        if offset >= end:
            raise SegmentFormatError("truncated varint in segment payload")
        byte = data[offset]
        offset += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, offset
        shift += 7


def section_bounds(
    header: dict[str, Any], name: str
) -> tuple[int, int]:
    """A section's ``(byte offset, length)`` entry, validated.

    For the bit-array sections the length is in *bits*; for ``nodes`` it
    is in bytes.  Offsets are relative to the payload start.
    """
    sections = header.get("sections")
    if not isinstance(sections, dict) or name not in sections:
        raise SegmentFormatError(f"segment header missing section {name!r}")
    entry = sections[name]
    if (
        not isinstance(entry, list)
        or len(entry) != 2
        or not all(isinstance(v, int) and v >= 0 for v in entry)
    ):
        raise SegmentFormatError(f"malformed section entry for {name!r}")
    return entry[0], entry[1]
