"""Resident-size accounting for the packed-vs-dict comparison.

The benchmark gate ("packed serving uses >= 4x less resident memory than
the dict-backed index") needs an honest measurement of what a live Python
structure actually occupies: every reachable object, counted once.
``sys.getsizeof`` alone sees only the top object; this module walks the
full reference graph via ``gc.get_referents`` with identity
deduplication, so shared strings and interned ints are never
double-charged.

Classes, modules, and functions reachable from instances (every object
references its type) are excluded — they are code, not data, and exist
regardless of which index structure is resident.
"""

from __future__ import annotations

import gc
import sys
from collections.abc import Iterable
from types import BuiltinFunctionType, FunctionType, MethodType, ModuleType

#: Reachable objects that are code/infrastructure, not resident data.
_EXCLUDED_TYPES = (
    type,
    ModuleType,
    FunctionType,
    BuiltinFunctionType,
    MethodType,
)


def deep_sizeof(*roots: object, exclude: Iterable[object] = ()) -> int:
    """Total bytes of every distinct object reachable from ``roots``.

    ``exclude`` objects (and anything only reachable through them) are
    skipped — used to keep an mmap's mapped region out of the Python-side
    accounting, since the file bytes are charged separately.
    """
    seen: set[int] = {id(obj) for obj in exclude}
    total = 0
    stack = list(roots)
    while stack:
        obj = stack.pop()
        if id(obj) in seen:
            continue
        seen.add(id(obj))
        if isinstance(obj, _EXCLUDED_TYPES):
            continue
        total += sys.getsizeof(obj)
        stack.extend(gc.get_referents(obj))
    return total
