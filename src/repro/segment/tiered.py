"""Tiered segments: continuous ingest with a crash-safe manifest.

:class:`~repro.segment.overlay.SegmentedIndex` holds exactly one packed
segment plus one overlay, and folding the overlay in is a stop-the-world
``compact()``.  This module generalizes it to the LSM shape the paper's
maintenance story implies (fast local placement now, workload-driven
re-mapping later):

* **ingest** lands in the mutable :class:`WordSetIndex` overlay;
* **seal** freezes the overlay into a small immutable L0 segment file
  once it crosses ``seal_threshold`` ads;
* **merge** folds ``fan_in`` same-level segments into one segment a
  level up (size-ratio policy), re-running the Section V greedy
  set-cover over live co-access counts harvested from the
  :mod:`repro.obs` registry (:class:`~repro.obs.workload
  .WorkloadRecorder`), so placements track the observed workload;
* **queries** fan over the tiers newest-first, filter cross-tier
  tombstones (the :func:`~repro.segment.overlay.filter_tombstones`
  generalization), and finish with the overlay.  Read amplification is
  bounded by ``fan_in`` segments per level plus the overlay.

The single source of truth for the live segment set is a checksummed
JSON **manifest** (``MANIFEST.json``).  Every seal and merge commits by
writing the new manifest to a unique temp file, fsyncing, and renaming
over the old one — the same atomic discipline as
:meth:`SegmentBuilder.write` — and only then swapping the in-memory
state.  Crashpoints (``tiered.seal.*``, ``tiered.merge.*``,
``tiered.manifest.*``) are threaded through :mod:`repro.faults`; a
crash at *any* of them leaves a directory that reopens as exactly one
committed generation (segment files not referenced by the manifest,
and orphaned ``*.tmp`` files, are swept on the next writable open).

Threading contract: one writer thread (``insert``/``delete``/``seal``),
at most one background merge thread (:class:`BackgroundMerger`), and
queries from the writer thread or — with ``concurrent readers``
enabled — other threads.  Commits replace shared state copy-on-write
under the internal lock, so an in-flight query always sees one
consistent (segments, tombstones) pair.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from collections import Counter
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any

from repro.core.ads import AdCorpus, AdInfo, Advertisement
from repro.core.matching import MatchType
from repro.core.queries import Query, Workload
from repro.core.wordhash import wordhash
from repro.core.wordset_index import WordSetIndex
from repro.cost.model import CostModel
from repro.faults.injector import FaultInjector, active_injector
from repro.obs.registry import MetricsRegistry, active_or_none
from repro.obs.workload import WorkloadRecorder
from repro.optimize import Mapping, OptimizerConfig, optimize_mapping
from repro.resilience.deadline import Deadline, DegradedReason
from repro.resilience.fanout import FanoutGuard
from repro.segment.builder import SegmentBuilder, cleanup_stale_temps
from repro.segment.format import (
    CRASH_MANIFEST_SWAPPED,
    CRASH_MANIFEST_TMP_SYNCED,
    CRASH_MANIFEST_TMP_WRITTEN,
    CRASH_MERGE_START,
    CRASH_MERGE_WRITTEN,
    CRASH_SEAL_START,
    CRASH_SEAL_WRITTEN,
    SegmentFormatError,
)
from repro.segment.overlay import ShardedSegmentedIndex, filter_tombstones
from repro.segment.packed import DEFAULT_CACHE_BYTES, PackedSegmentIndex

__all__ = [
    "BackgroundMerger",
    "MANIFEST_NAME",
    "Manifest",
    "ManifestFormatError",
    "SegmentRecord",
    "TieredConfig",
    "TieredSegmentedIndex",
    "manifest_fingerprint",
    "pack_corpus_tiered",
    "read_manifest",
    "write_manifest",
]

MANIFEST_NAME = "MANIFEST.json"
MANIFEST_FORMAT = "repro-tiered-manifest"
MANIFEST_VERSION = 1

#: Unique temp names for manifest writes (same scheme as the builder's).
_MANIFEST_TEMP = iter(range(1 << 62))


class ManifestFormatError(SegmentFormatError):
    """Raised when a tiered manifest is missing, corrupt, or torn."""


# --------------------------------------------------------------------- #
# Manifest model + codec


@dataclass(frozen=True, slots=True)
class SegmentRecord:
    """One live segment in the manifest, oldest-first list order."""

    name: str
    level: int
    seq: int
    num_ads: int

    def to_json(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "level": self.level,
            "seq": self.seq,
            "num_ads": self.num_ads,
        }

    @classmethod
    def from_json(cls, payload: dict[str, Any]) -> SegmentRecord:
        try:
            return cls(
                name=str(payload["name"]),
                level=int(payload["level"]),
                seq=int(payload["seq"]),
                num_ads=int(payload["num_ads"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ManifestFormatError(
                f"bad segment record: {exc}"
            ) from exc


def _ad_to_json(ad: Advertisement) -> dict[str, Any]:
    info = ad.info
    encoded: dict[str, Any] = {
        "phrase": list(ad.phrase),
        "listing_id": info.listing_id,
        "campaign_id": info.campaign_id,
        "bid_price_micros": info.bid_price_micros,
    }
    if info.exclusion_phrases:
        encoded["exclusion_phrases"] = list(info.exclusion_phrases)
    return encoded


def _ad_from_json(payload: dict[str, Any]) -> Advertisement:
    try:
        return Advertisement(
            phrase=tuple(payload["phrase"]),
            info=AdInfo(
                listing_id=int(payload["listing_id"]),
                campaign_id=int(payload.get("campaign_id", 0)),
                bid_price_micros=int(payload.get("bid_price_micros", 0)),
                exclusion_phrases=tuple(
                    payload.get("exclusion_phrases", ())
                ),
            ),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ManifestFormatError(f"bad tombstone ad: {exc}") from exc


@dataclass(frozen=True, slots=True)
class Manifest:
    """The committed truth: generation, live segments, pending deletes.

    Tombstones are persisted with every commit so a reopened index
    filters exactly what the committed generation had pending — a
    delete is durable once any subsequent seal/merge commits.
    """

    generation: int = 0
    next_seq: int = 0
    segments: tuple[SegmentRecord, ...] = ()
    tombstones: tuple[tuple[Advertisement, int], ...] = ()
    max_words: int | None = None
    max_query_words: int = 16
    fast_path: bool = True

    def body(self) -> dict[str, Any]:
        return {
            "format": MANIFEST_FORMAT,
            "version": MANIFEST_VERSION,
            "generation": self.generation,
            "next_seq": self.next_seq,
            "index": {
                "max_words": self.max_words,
                "max_query_words": self.max_query_words,
                "fast_path": self.fast_path,
            },
            "segments": [record.to_json() for record in self.segments],
            "tombstones": [
                [_ad_to_json(ad), count] for ad, count in self.tombstones
            ],
        }

    def encode(self) -> bytes:
        body = self.body()
        blob = json.dumps(body, sort_keys=True).encode("utf-8")
        body["checksum"] = hashlib.sha256(blob).hexdigest()
        return json.dumps(body, sort_keys=True, indent=1).encode("utf-8")

    @classmethod
    def decode(cls, data: bytes) -> Manifest:
        try:
            payload = json.loads(data.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ManifestFormatError(f"corrupt manifest: {exc}") from exc
        if (
            not isinstance(payload, dict)
            or payload.get("format") != MANIFEST_FORMAT
        ):
            raise ManifestFormatError("not a tiered manifest")
        if payload.get("version") != MANIFEST_VERSION:
            raise ManifestFormatError(
                f"unsupported manifest version {payload.get('version')!r}"
            )
        checksum = payload.pop("checksum", None)
        blob = json.dumps(payload, sort_keys=True).encode("utf-8")
        if checksum != hashlib.sha256(blob).hexdigest():
            raise ManifestFormatError("manifest checksum mismatch")
        index = payload.get("index") or {}
        try:
            max_words = index.get("max_words")
            manifest = cls(
                generation=int(payload["generation"]),
                next_seq=int(payload["next_seq"]),
                segments=tuple(
                    SegmentRecord.from_json(record)
                    for record in payload.get("segments", ())
                ),
                tombstones=tuple(
                    (_ad_from_json(entry[0]), int(entry[1]))
                    for entry in payload.get("tombstones", ())
                ),
                max_words=None if max_words is None else int(max_words),
                max_query_words=int(index.get("max_query_words", 16)),
                fast_path=bool(index.get("fast_path", True)),
            )
        except (KeyError, TypeError, ValueError, IndexError) as exc:
            raise ManifestFormatError(f"malformed manifest: {exc}") from exc
        names = [record.name for record in manifest.segments]
        if len(set(names)) != len(names):
            raise ManifestFormatError("duplicate segment names in manifest")
        return manifest


def read_manifest(path: str | Path) -> Manifest:
    """Load and validate the manifest at ``path``."""
    path = Path(path)
    try:
        data = path.read_bytes()
    except FileNotFoundError as exc:
        raise ManifestFormatError(f"no manifest at {path}") from exc
    except OSError as exc:
        raise ManifestFormatError(f"cannot read manifest: {exc}") from exc
    return Manifest.decode(data)


def write_manifest(
    path: str | Path,
    manifest: Manifest,
    faults: FaultInjector | None = None,
) -> None:
    """Commit ``manifest`` atomically: unique temp, fsync, rename.

    Crashpoints ``tiered.manifest.tmp_written`` / ``tmp_synced`` fire
    before the rename — a crash there leaves the old manifest in force
    plus a temp orphan the next writable open sweeps.  The post-rename
    ``tiered.manifest.swapped`` point is the *caller's* to fire (after
    it has also swapped its in-memory state), so disk and process never
    disagree across that crashpoint.
    """
    path = Path(path)
    injector = active_injector(faults)
    data = manifest.encode()
    temp = path.with_name(
        f".{path.name}.{os.getpid()}.{next(_MANIFEST_TEMP)}.tmp"
    )
    try:
        with temp.open("wb") as handle:
            handle.write(data)
            injector.crashpoint(CRASH_MANIFEST_TMP_WRITTEN)
            handle.flush()
            os.fsync(handle.fileno())
        injector.crashpoint(CRASH_MANIFEST_TMP_SYNCED)
        temp.replace(path)
    except BaseException:
        # Injected crashes mimic power loss and deliberately leave the
        # temp file behind; real failures shouldn't either — recovery
        # cleanup handles both, and unlinking here could mask a torn
        # write the drills want to observe.
        raise
    _fsync_directory(path.parent)


def _fsync_directory(directory: Path) -> None:
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def manifest_fingerprint(
    directory: str | Path,
) -> tuple[int, int, int] | None:
    """Cheap change detector for the manifest (inode, mtime, size).

    The atomic rename commit gives every generation a fresh inode, so a
    serving worker can poll this between requests and reload only when
    it moves.  ``None`` while no manifest exists.
    """
    try:
        stat = os.stat(Path(directory) / MANIFEST_NAME)
    except OSError:
        return None
    return (stat.st_ino, stat.st_mtime_ns, stat.st_size)


# --------------------------------------------------------------------- #
# Configuration


@dataclass(frozen=True, slots=True)
class TieredConfig:
    """Shape and policy of one tiered index.

    Parameters
    ----------
    seal_threshold:
        Overlay ads that trigger an automatic seal (when ``auto_seal``).
    fan_in:
        Segments accumulated at one level before they merge into one
        segment a level up.  Also the per-level read-amplification
        bound.
    auto_seal / auto_merge:
        Seal on threshold inside ``insert``; run ratio-triggered merges
        inline right after an auto-seal.  Inline merging is disabled
        automatically while a :class:`BackgroundMerger` owns merging.
    optimize_merges:
        Re-run the Section V greedy set cover during merges, over
        co-access counts harvested from the attached
        :class:`~repro.obs.workload.WorkloadRecorder` (no-op when no
        recorder or no counts yet).
    optimize_top_queries:
        Head of the harvested workload fed to the optimizer.
    optimize_max_ads:
        Survivor-count ceiling for in-merge re-optimization.  The
        greedy set cover is superlinear in corpus size, so top-tier
        merges of a large live set would stall the merger for seconds;
        above this bound the merge keeps the victims' existing
        placements (workload-driven re-homing concentrates at the low
        tiers, where freshly churned ads live — a full-corpus remap is
        an offline ``compact()``-scale job, not a background-merge
        one).
    suffix_bits / max_words / max_query_words / fast_path / cache_bytes:
        Passed through to the per-tier builder, overlay, and packed
        reader.  The index-shape fields are persisted in the manifest
        and adopted from it on reopen.
    """

    seal_threshold: int = 512
    fan_in: int = 4
    auto_seal: bool = True
    auto_merge: bool = True
    optimize_merges: bool = True
    optimize_top_queries: int = 128
    optimize_max_ads: int = 8192
    suffix_bits: int | None = None
    max_words: int | None = None
    max_query_words: int = 16
    fast_path: bool = True
    cache_bytes: int = DEFAULT_CACHE_BYTES

    def __post_init__(self) -> None:
        if self.seal_threshold < 1:
            raise ValueError("seal_threshold must be >= 1")
        if self.fan_in < 2:
            raise ValueError("fan_in must be >= 2")


@dataclass(slots=True)
class _OpenSegment:
    """A manifest record plus its opened reader."""

    record: SegmentRecord
    index: PackedSegmentIndex


# --------------------------------------------------------------------- #
# The tiered index


class TieredSegmentedIndex:
    """Continuous-ingest serving index over manifest-managed tiers."""

    #: Capability marker: ``query`` accepts a ``deadline`` budget.
    supports_deadline = True

    def __init__(
        self,
        directory: str | Path,
        config: TieredConfig | None = None,
        obs: MetricsRegistry | None = None,
        faults: FaultInjector | None = None,
        recorder: WorkloadRecorder | None = None,
        read_only: bool = False,
    ) -> None:
        self.directory = Path(directory)
        self.config = config if config is not None else TieredConfig()
        self._faults = active_injector(faults)
        self._obs = active_or_none(obs)
        self._recorder = recorder
        self._read_only = read_only
        self._lock = threading.RLock()
        self._merge_inflight = False
        self._concurrent_readers = False
        self._active_queries = 0
        self._retired: list[PackedSegmentIndex] = []
        self._closed = False

        manifest_path = self.directory / MANIFEST_NAME
        if manifest_path.exists():
            manifest = read_manifest(manifest_path)
        elif read_only:
            raise ManifestFormatError(
                f"no tiered manifest in {self.directory}"
            )
        else:
            self.directory.mkdir(parents=True, exist_ok=True)
            manifest = Manifest(
                max_words=self.config.max_words,
                max_query_words=self.config.max_query_words,
                fast_path=self.config.fast_path,
            )
            write_manifest(manifest_path, manifest, self._faults)
        # The manifest owns the index shape across generations.
        self._max_words = manifest.max_words
        self._max_query_words = manifest.max_query_words
        self._fast_path = manifest.fast_path
        if not read_only:
            self._sweep_unreferenced(manifest)
        self._segments: list[_OpenSegment] = []
        try:
            for record in manifest.segments:
                self._segments.append(
                    _OpenSegment(
                        record=record,
                        index=PackedSegmentIndex(
                            self.directory / record.name,
                            obs=self._obs,
                            cache_bytes=self.config.cache_bytes,
                        ),
                    )
                )
        except BaseException:
            for open_segment in self._segments:
                open_segment.index.close()
            raise
        self._tombstones: Counter[Advertisement] = Counter()
        for ad, count in manifest.tombstones:
            if count > 0:
                self._tombstones[ad] += count
        self._overlay = self._fresh_overlay()
        self._manifest = manifest
        self._next_seq = manifest.next_seq
        self._register_obs()

    # ------------------------------------------------------------------ #
    # Construction helpers

    def _fresh_overlay(self) -> WordSetIndex:
        return WordSetIndex(
            max_words=self._max_words,
            max_query_words=self._max_query_words,
            fast_path=self._fast_path,
        )

    def _sweep_unreferenced(self, manifest: Manifest) -> None:
        """Remove crash debris: ``*.tmp`` orphans (torn segment or
        manifest writes) and segment files the manifest doesn't
        reference (written but never committed).  Writable opens only —
        a read-only observer must not race a writer's pre-commit
        files."""
        referenced = {record.name for record in manifest.segments}
        try:
            children = list(self.directory.iterdir())
        except OSError:
            return
        for child in children:
            name = child.name
            if name == MANIFEST_NAME or name in referenced:
                continue
            if name.endswith(".tmp") or (
                name.startswith("seg-") and name.endswith(".seg")
            ):
                try:
                    child.unlink()
                except OSError:
                    continue

    def _register_obs(self) -> None:
        obs = self._obs
        if obs is not None:
            obs.counter("tiered.seals", help="Overlay seals committed")
            obs.counter("tiered.merges", help="Tier merges committed")
            obs.counter(
                "tiered.optimized_merges",
                help="Merges that re-ran the set-cover optimizer",
            )
            self._update_gauges()

    def _update_gauges(self) -> None:
        obs = self._obs
        if obs is not None:
            obs.gauge(
                "tiered.segments", help="Live sealed segments"
            ).set(float(len(self._segments)))
            obs.gauge(
                "tiered.overlay_ads", help="Ads in the mutable overlay"
            ).set(float(len(self._overlay)))
            obs.gauge(
                "tiered.tombstones", help="Pending cross-tier deletions"
            ).set(float(sum(self._tombstones.values())))

    def _assert_writable(self) -> None:
        if self._read_only:
            raise RuntimeError("index opened read-only")

    # ------------------------------------------------------------------ #
    # Mutation

    def insert(
        self, ad: Advertisement, locator: frozenset[str] | None = None
    ) -> None:
        """Add ``ad``.  Re-inserting a tombstoned segment ad resurrects
        the sealed copy (indistinguishable by full-field equality)
        instead of duplicating it — unless an explicit ``locator`` asks
        for a specific placement, or a merge is in flight (the merge
        snapshot already accounted for the tombstone; a fresh overlay
        copy plus the still-pending tombstone nets out identically)."""
        self._assert_writable()
        with self._lock:
            if (
                locator is None
                and not self._merge_inflight
                and self._tombstones.get(ad, 0) > 0
            ):
                self._tombstones[ad] -= 1
                if not self._tombstones[ad]:
                    del self._tombstones[ad]
            else:
                self._overlay.insert(ad, locator)
            overlay_ads = len(self._overlay)
        self._update_gauges()
        if self.config.auto_seal and overlay_ads >= self.config.seal_threshold:
            self.seal()
            if self.config.auto_merge and not self._concurrent_readers:
                self.maybe_merge()

    def delete(self, ad: Advertisement) -> bool:
        """Remove one occurrence of ``ad``; False if not live."""
        self._assert_writable()
        with self._lock:
            if self._overlay.delete(ad):
                self._update_gauges()
                return True
            sealed = sum(
                open_segment.index.lookup_count(ad)
                for open_segment in self._segments
            )
            if sealed - self._tombstones.get(ad, 0) > 0:
                self._tombstones[ad] += 1
                self._update_gauges()
                return True
            return False

    def contains(self, ad: Advertisement) -> bool:
        with self._lock:
            if self._overlay.contains(ad):
                return True
            sealed = sum(
                open_segment.index.lookup_count(ad)
                for open_segment in self._segments
            )
            return sealed > self._tombstones.get(ad, 0)

    # ------------------------------------------------------------------ #
    # Query processing

    def query(
        self,
        query: Query,
        match_type: MatchType = MatchType.BROAD,
        deadline: Deadline | None = None,
    ) -> list[Advertisement]:
        """Fan over tiers newest-first, filter cross-tier tombstones,
        finish with the overlay.  One lock acquisition snapshots a
        consistent (segments, tombstones, overlay) triple; commits swap
        those references copy-on-write, so a concurrent merge never
        tears an in-flight query."""
        with self._lock:
            self._active_queries += 1
            segments = tuple(self._segments)
            tombstones = self._tombstones
            overlay = self._overlay
        try:
            if self._recorder is not None and match_type is MatchType.BROAD:
                self._recorder.record(query.words)
            results: list[Advertisement] = []
            for open_segment in reversed(segments):
                if deadline is not None and deadline.expired():
                    deadline.mark_partial(DegradedReason.DEADLINE)
                    break
                results.extend(
                    open_segment.index.query(query, match_type, deadline)
                )
            if tombstones:
                results = filter_tombstones(results, tombstones)
            results.extend(overlay.query(query, match_type, deadline))
            return results
        finally:
            drained: list[PackedSegmentIndex] = []
            with self._lock:
                self._active_queries -= 1
                if not self._active_queries and self._retired:
                    drained, self._retired = self._retired, []
            for retired in drained:
                retired.close()

    # ------------------------------------------------------------------ #
    # Seal

    def seal(self) -> Path | None:
        """Freeze the overlay into a new L0 segment and commit it.

        Returns the new segment path, or ``None`` for an empty overlay.
        Crash-safe: the segment file is written first (atomic in its own
        right), then the manifest commit makes it live; a crash anywhere
        before the manifest rename leaves the previous generation in
        force (the orphan file is swept on the next writable open) and
        the in-process overlay untouched, so a retry just runs again.

        With an empty overlay but tombstones that changed since the
        last commit, a manifest-only generation is written — ``seal()``
        is the durability point for deletes too.
        """
        self._assert_writable()
        if not len(self._overlay):
            with self._lock:
                tombstones = self._encode_tombstones()
                if tombstones == self._manifest.tombstones:
                    return None
                self._faults.crashpoint(CRASH_SEAL_START)
                manifest = replace(
                    self._manifest,
                    generation=self._manifest.generation + 1,
                    next_seq=self._next_seq,
                    tombstones=tombstones,
                )
                self._commit_locked(manifest, segments=self._segments)
            self._faults.crashpoint(CRASH_MANIFEST_SWAPPED)
            return None
        self._faults.crashpoint(CRASH_SEAL_START)
        with self._lock:
            seq = self._next_seq
            self._next_seq += 1
        name = f"seg-{seq:06d}-L0.seg"
        path = self.directory / name
        builder = SegmentBuilder(
            self._overlay, suffix_bits=self.config.suffix_bits
        )
        builder.write(
            path,
            generation=self._manifest.generation + 1,
            faults=self._faults,
        )
        self._faults.crashpoint(CRASH_SEAL_WRITTEN)
        segment = PackedSegmentIndex(
            path, obs=self._obs, cache_bytes=self.config.cache_bytes
        )
        record = SegmentRecord(
            name=name, level=0, seq=seq, num_ads=len(segment)
        )
        try:
            with self._lock:
                manifest = replace(
                    self._manifest,
                    generation=self._manifest.generation + 1,
                    next_seq=self._next_seq,
                    segments=self._manifest.segments + (record,),
                    tombstones=self._encode_tombstones(),
                )
                self._commit_locked(
                    manifest,
                    segments=self._segments
                    + [_OpenSegment(record=record, index=segment)],
                    fresh_overlay=True,
                )
        except BaseException:
            segment.close()
            raise
        obs = self._obs
        if obs is not None:
            obs.counter("tiered.seals").inc()
        self._faults.crashpoint(CRASH_MANIFEST_SWAPPED)
        return path

    def _encode_tombstones(self) -> tuple[tuple[Advertisement, int], ...]:
        return tuple(
            (ad, count)
            for ad, count in sorted(
                self._tombstones.items(),
                key=lambda item: (item[0].phrase, item[0].info.listing_id),
            )
            if count > 0
        )

    def _commit_locked(
        self,
        manifest: Manifest,
        segments: list[_OpenSegment],
        fresh_overlay: bool = False,
        tombstones: Counter[Advertisement] | None = None,
    ) -> None:
        """Write the manifest, then swap in-memory state — caller holds
        the lock.  No crashpoint separates the rename from the swap;
        the combined ``tiered.manifest.swapped`` point fires after both,
        so an injected crash there leaves disk and process agreeing."""
        write_manifest(
            self.directory / MANIFEST_NAME, manifest, self._faults
        )
        self._manifest = manifest
        self._segments = segments
        if tombstones is not None:
            self._tombstones = tombstones
        if fresh_overlay:
            self._overlay = self._fresh_overlay()
        self._update_gauges()

    # ------------------------------------------------------------------ #
    # Merge

    def _merge_candidate_level(self) -> int | None:
        """Lowest level holding ``fan_in``-or-more segments."""
        counts: Counter[int] = Counter(
            open_segment.record.level for open_segment in self._segments
        )
        eligible = [
            level
            for level, count in counts.items()
            if count >= self.config.fan_in
        ]
        return min(eligible) if eligible else None

    def maybe_merge(self, max_merges: int | None = None) -> int:
        """Run ratio-triggered merges (cascading upward) until quiet or
        ``max_merges``; returns the number of merges committed."""
        merged = 0
        while max_merges is None or merged < max_merges:
            with self._lock:
                level = self._merge_candidate_level()
            if level is None:
                break
            if self.merge_level(level) is None:
                break
            merged += 1
        return merged

    def merge_level(self, level: int) -> Path | None:
        """Fold the oldest ``fan_in`` segments at ``level`` into one
        segment at ``level + 1``; returns its path (``None`` if the
        level no longer qualifies)."""
        self._assert_writable()
        with self._lock:
            victims = [
                open_segment
                for open_segment in self._segments
                if open_segment.record.level == level
            ][: self.config.fan_in]
            if len(victims) < self.config.fan_in:
                return None
        return self._merge(victims, out_level=level + 1)

    def compact(self) -> Path:
        """Full compaction: seal the overlay, then fold *every* segment
        into a single one.  The :class:`SegmentShard` surface."""
        self._assert_writable()
        self.seal()
        with self._lock:
            victims = list(self._segments)
        if len(victims) > 1:
            top = max(
                open_segment.record.level for open_segment in victims
            )
            self._merge(victims, out_level=top + 1)
        return self.directory

    def _merge(
        self, victims: list[_OpenSegment], out_level: int
    ) -> Path | None:
        """Fold ``victims`` (oldest-first) into one new segment.

        Applicable tombstones are consumed from a snapshot taken up
        front; deletes and inserts that land *during* the fold stay
        pending (``insert`` routes around the resurrect shortcut while
        a merge is in flight) and reconcile at commit, so a background
        merge never loses a concurrent write.
        """
        with self._lock:
            tomb_snapshot = dict(self._tombstones)
            self._merge_inflight = True
        try:
            self._faults.crashpoint(CRASH_MERGE_START)
            with self._lock:
                seq = self._next_seq
                self._next_seq += 1
            consumed: Counter[Advertisement] = Counter()
            placements: dict[frozenset[str], frozenset[str]] = {}
            survivors: list[Advertisement] = []
            for open_segment in victims:
                placements.update(open_segment.index.placements())
                for ad in open_segment.index.iter_ads():
                    if tomb_snapshot.get(ad, 0) - consumed[ad] > 0:
                        consumed[ad] += 1
                        continue
                    survivors.append(ad)
            mapping = self._merge_mapping(survivors)
            fresh = self._fresh_overlay()
            for ad in survivors:
                if mapping is not None:
                    fresh.insert(ad, mapping.locator_for(ad.words))
                else:
                    fresh.insert(ad, placements.get(ad.words))
            name = f"seg-{seq:06d}-L{out_level}.seg"
            path = self.directory / name
            SegmentBuilder(
                fresh, suffix_bits=self.config.suffix_bits
            ).write(
                path,
                generation=self._manifest.generation + 1,
                faults=self._faults,
            )
            self._faults.crashpoint(CRASH_MERGE_WRITTEN)
            segment = PackedSegmentIndex(
                path, obs=self._obs, cache_bytes=self.config.cache_bytes
            )
            record = SegmentRecord(
                name=name, level=out_level, seq=seq, num_ads=len(segment)
            )
            victim_set = {id(open_segment) for open_segment in victims}
            try:
                with self._lock:
                    # Copy-on-write tombstone reconciliation: in-flight
                    # query snapshots keep the counter matching their
                    # segment list.
                    new_tombstones = Counter(self._tombstones)
                    for ad, count in consumed.items():
                        left = new_tombstones[ad] - count
                        if left > 0:
                            new_tombstones[ad] = left
                        else:
                            del new_tombstones[ad]
                    kept = [
                        open_segment
                        for open_segment in self._segments
                        if id(open_segment) not in victim_set
                    ]
                    # The merged segment takes the oldest victim's
                    # position so list order stays oldest-first.
                    insert_at = min(
                        (
                            i
                            for i, open_segment in enumerate(self._segments)
                            if id(open_segment) in victim_set
                        ),
                        default=len(kept),
                    )
                    new_segments = (
                        kept[:insert_at]
                        + [_OpenSegment(record=record, index=segment)]
                        + kept[insert_at:]
                    )
                    records = tuple(
                        open_segment.record for open_segment in new_segments
                    )
                    manifest = replace(
                        self._manifest,
                        generation=self._manifest.generation + 1,
                        next_seq=self._next_seq,
                        segments=records,
                        tombstones=tuple(
                            (ad, count)
                            for ad, count in sorted(
                                new_tombstones.items(),
                                key=lambda item: (
                                    item[0].phrase,
                                    item[0].info.listing_id,
                                ),
                            )
                        ),
                    )
                    self._commit_locked(
                        manifest,
                        segments=new_segments,
                        tombstones=new_tombstones,
                    )
            except BaseException:
                segment.close()
                raise
            self._retire(victims)
            obs = self._obs
            if obs is not None:
                obs.counter("tiered.merges").inc()
                if mapping is not None:
                    obs.counter("tiered.optimized_merges").inc()
            self._faults.crashpoint(CRASH_MANIFEST_SWAPPED)
            return path
        finally:
            with self._lock:
                self._merge_inflight = False

    def _retire(self, victims: list[_OpenSegment]) -> None:
        """Close merged-away segments and unlink their files.

        A query that snapshotted *before* the commit may still be
        reading a victim's buffers, so closing is epoch-gated: with any
        query in flight the reader is parked on ``_retired`` and the
        last in-flight query drains the list; with none, it closes
        right here.  Snapshots after the commit never see victims.  The
        manifest no longer references these files, so a crash before
        the unlink just leaves debris for the next open's sweep.
        """
        to_close: list[PackedSegmentIndex] = []
        with self._lock:
            for open_segment in victims:
                if self._active_queries:
                    self._retired.append(open_segment.index)
                else:
                    to_close.append(open_segment.index)
        for index in to_close:
            index.close()
        for open_segment in victims:
            try:
                (self.directory / open_segment.record.name).unlink()
            except OSError:
                pass

    def _merge_mapping(
        self, ads: list[Advertisement]
    ) -> Mapping | None:
        """Section V re-optimization over the live co-access harvest."""
        if (
            not self.config.optimize_merges
            or self._recorder is None
            or not ads
            or len(ads) > self.config.optimize_max_ads
        ):
            return None
        pairs = self._recorder.harvest()[: self.config.optimize_top_queries]
        if not pairs:
            return None
        workload = Workload(
            (Query(tokens=tuple(sorted(words))), frequency)
            for words, frequency in pairs
        )
        max_words = self._max_words if self._max_words is not None else 10
        try:
            return optimize_mapping(
                AdCorpus(ads),
                workload,
                CostModel(),
                OptimizerConfig(max_words=max_words),
            )
        except ValueError:
            return None

    # ------------------------------------------------------------------ #
    # Concurrency plumbing

    def enable_concurrent_readers(self) -> None:
        """Mark queries as possibly concurrent with merges.  Disables
        the inline auto-merge in ``insert`` (the caller's
        :class:`BackgroundMerger` owns merging); retired-segment
        lifetime is always epoch-gated (see :meth:`_retire`), so this
        is a policy switch, not a safety one."""
        with self._lock:
            self._concurrent_readers = True

    # ------------------------------------------------------------------ #
    # Introspection / lifecycle

    @property
    def generation(self) -> int:
        return self._manifest.generation

    @property
    def manifest(self) -> Manifest:
        return self._manifest

    @property
    def overlay(self) -> WordSetIndex:
        return self._overlay

    @property
    def segments(self) -> list[PackedSegmentIndex]:
        """Open per-tier readers, oldest-first."""
        return [open_segment.index for open_segment in self._segments]

    def tombstone_count(self) -> int:
        with self._lock:
            return sum(self._tombstones.values())

    def __len__(self) -> int:
        with self._lock:
            sealed = sum(
                len(open_segment.index) for open_segment in self._segments
            )
            return (
                sealed
                - sum(self._tombstones.values())
                + len(self._overlay)
            )

    def live_ads(self) -> Iterator[Advertisement]:
        """Every live ad: tiers oldest-first minus tombstones, then the
        overlay."""
        with self._lock:
            segments = tuple(self._segments)
            remaining = dict(self._tombstones)
            overlay = self._overlay
        for open_segment in segments:
            for ad in open_segment.index.iter_ads():
                pending = remaining.get(ad, 0)
                if pending > 0:
                    remaining[ad] = pending - 1
                else:
                    yield ad
        for node in overlay.nodes.values():
            for entry in node.entries:
                yield entry.ad

    def read_amplification(self) -> int:
        """Structures probed per query: every tier plus the overlay."""
        with self._lock:
            return len(self._segments) + 1

    def read_amp_bound(self) -> int:
        """The configured bound: ``fan_in`` segments per level (the
        ratio policy merges a level the moment it reaches ``fan_in``)
        across the levels currently in use, plus the overlay."""
        with self._lock:
            levels = {
                open_segment.record.level
                for open_segment in self._segments
            }
        top = max(levels) if levels else 0
        return self.config.fan_in * (top + 1) + 1

    def segment_bytes(self) -> int:
        with self._lock:
            return sum(
                open_segment.index.segment_bytes()
                for open_segment in self._segments
            )

    def stats(self) -> dict[str, Any]:
        with self._lock:
            per_level: Counter[int] = Counter(
                open_segment.record.level
                for open_segment in self._segments
            )
            return {
                "num_ads": len(self),
                "generation": self._manifest.generation,
                "segments": [
                    {
                        "name": open_segment.record.name,
                        "level": open_segment.record.level,
                        "num_ads": len(open_segment.index),
                        "bytes": open_segment.index.segment_bytes(),
                    }
                    for open_segment in self._segments
                ],
                "levels": {
                    str(level): count
                    for level, count in sorted(per_level.items())
                },
                "overlay_ads": len(self._overlay),
                "tombstones": sum(self._tombstones.values()),
                "read_amplification": len(self._segments) + 1,
                "read_amp_bound": self.read_amp_bound(),
                "segment_bytes": sum(
                    open_segment.index.segment_bytes()
                    for open_segment in self._segments
                ),
                "directory": str(self.directory),
            }

    def bulk_load(
        self,
        ads: Iterable[Advertisement],
        mapping: dict[frozenset[str], frozenset[str]] | None = None,
    ) -> None:
        """Initial fill: straight into the overlay (no auto-seal churn),
        then one seal — the packed baseline starts as a single L0."""
        self._assert_writable()
        with self._lock:
            for ad in ads:
                locator = mapping.get(ad.words) if mapping else None
                self._overlay.insert(ad, locator)
        self.seal()

    @classmethod
    def pack_corpus(
        cls,
        corpus: AdCorpus | Iterable[Advertisement],
        directory: str | Path,
        config: TieredConfig | None = None,
        mapping: dict[frozenset[str], frozenset[str]] | None = None,
        obs: MetricsRegistry | None = None,
        faults: FaultInjector | None = None,
        recorder: WorkloadRecorder | None = None,
    ) -> TieredSegmentedIndex:
        """Create a tiered directory seeded with ``corpus`` as one L0."""
        index = cls(
            directory, config=config, obs=obs, faults=faults,
            recorder=recorder,
        )
        try:
            index.bulk_load(corpus, mapping)
        except BaseException:
            index.close()
            raise
        return index

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            for open_segment in self._segments:
                open_segment.index.close()
            for retired in self._retired:
                retired.close()
            self._retired.clear()

    def __enter__(self) -> TieredSegmentedIndex:
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


# --------------------------------------------------------------------- #
# Background merging


class BackgroundMerger:
    """Owns ratio-triggered merges on a daemon thread.

    Serving (queries on any thread) continues while merges run: the
    index snapshots state per query and commits swap copy-on-write.
    Injected crashes from armed ``tiered.*``/``segment.*`` crashpoints
    are caught and counted — a crashed merge is retried on the next
    tick, exactly like a restarted compaction daemon.
    """

    def __init__(
        self, index: TieredSegmentedIndex, interval_s: float = 0.01
    ) -> None:
        self.index = index
        self.interval_s = interval_s
        self.merges = 0
        self.crashes = 0
        self.errors: list[str] = []
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def start(self) -> None:
        if self._thread is not None:
            return
        self.index.enable_concurrent_readers()
        self._thread = threading.Thread(
            target=self._run, name="tiered-merger", daemon=True
        )
        self._thread.start()

    def _run(self) -> None:
        from repro.faults.injector import InjectedCrash

        while not self._stop.is_set():
            try:
                merged = self.index.maybe_merge(max_merges=1)
            except InjectedCrash:
                self.crashes += 1
                merged = 0
            except Exception as exc:  # noqa: BLE001 — drill gates on this
                self.errors.append(f"{type(exc).__name__}: {exc}")
                merged = 0
            if not merged:
                self._stop.wait(self.interval_s)

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=30.0)
            self._thread = None

    def drain(self) -> None:
        """Stop the thread, then run any remaining merges inline."""
        self.stop()
        self.merges += self.index.maybe_merge()

    def __enter__(self) -> BackgroundMerger:
        self.start()
        return self

    def __exit__(self, *exc: object) -> None:
        self.stop()


# --------------------------------------------------------------------- #
# Sharded wiring


def pack_corpus_tiered(
    corpus: AdCorpus | Iterable[Advertisement],
    directory: str | Path,
    num_shards: int,
    config: TieredConfig | None = None,
    mapping: dict[frozenset[str], frozenset[str]] | None = None,
    obs: MetricsRegistry | None = None,
    faults: FaultInjector | None = None,
    guard: FanoutGuard | None = None,
) -> ShardedSegmentedIndex:
    """Partition ``corpus`` into per-shard tiered directories
    (``shard-NNN/``) under ``directory`` and open them behind a
    :class:`~repro.segment.overlay.ShardedSegmentedIndex` — same
    ``wordhash % num_shards`` rule, tiered lifecycle per shard."""
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    partitions: list[list[Advertisement]] = [[] for _ in range(num_shards)]
    for ad in corpus:
        partitions[wordhash(ad.words) % num_shards].append(ad)
    shards: list[TieredSegmentedIndex] = []
    try:
        for i, partition in enumerate(partitions):
            shards.append(
                TieredSegmentedIndex.pack_corpus(
                    partition,
                    directory / f"shard-{i:03d}",
                    config=config,
                    mapping=mapping,
                    obs=obs,
                    faults=faults,
                )
            )
    except BaseException:
        for shard in shards:
            shard.close()
        raise
    return ShardedSegmentedIndex(shards, guard=guard)


# Re-exported for drills that want wall-clock pacing without importing
# ``time`` themselves.
_ = time
