"""``SegmentedIndex``: a packed segment plus a mutable overlay.

The packed segment is immutable; serving still needs inserts and
deletes.  The classic LSM-style answer:

* **inserts** land in a small in-memory :class:`WordSetIndex` overlay;
* **deletes** of overlay ads are plain deletes; deletes of segment ads
  record a *tombstone* (a count per exact ad, since the corpus permits
  duplicate ads) that query results are filtered against;
* **queries** union the segment's results (minus tombstones) with the
  overlay's;
* :meth:`compact` folds overlay + tombstones into a fresh segment file
  written atomically beside the old one, then swaps the mapping — the
  crash-consistency story mirrors :mod:`repro.oplog`, with crashpoints
  at every decision point so the fault harness can prove that a crash
  mid-compaction leaves a servable index (the old mapped file remains
  valid even after the rename replaces its directory entry).

:class:`ShardedSegmentedIndex` runs one ``SegmentedIndex`` per shard,
partitioned by the same ``wordhash(words) % num_shards`` rule as
:class:`~repro.core.sharded.ShardedWordSetIndex`, and exposes
``.shards`` so :class:`~repro.perf.batch.BatchQueryEngine` scatters
batches across shards automatically.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterator, Mapping, Sequence
from pathlib import Path
from typing import Any, Protocol

from repro.core.ads import AdCorpus, Advertisement
from repro.core.matching import MatchType
from repro.core.queries import Query
from repro.core.wordhash import wordhash
from repro.core.wordset_index import WordSetIndex
from repro.faults.injector import FaultInjector, active_injector
from repro.obs.registry import MetricsRegistry, active_or_none
from repro.resilience.deadline import Deadline, DegradedReason
from repro.resilience.fanout import FanoutGuard
from repro.segment.builder import SegmentBuilder, cleanup_stale_temps
from repro.segment.format import (
    CRASH_COMPACT_START,
    CRASH_COMPACT_SWAPPED,
    CRASH_COMPACT_WRITTEN,
)
from repro.segment.packed import PackedSegmentIndex


def filter_tombstones(
    results: list[Advertisement],
    tombstones: Mapping[Advertisement, int],
) -> list[Advertisement]:
    """Drop up to ``tombstones[ad]`` occurrences of each dead ad.

    Allocation-aware: the common serving case is "tombstones exist but
    none of *these* results are dead", so the mutable scratch copy of
    the tombstone map (and the kept-list rebuild) is deferred until the
    first actual hit.  When nothing is filtered the input list is
    returned as-is — zero allocations on the hot path.
    """
    remaining: dict[Advertisement, int] | None = None
    kept: list[Advertisement] | None = None
    for index, ad in enumerate(results):
        source = tombstones if remaining is None else remaining
        pending = source.get(ad, 0)
        if pending > 0:
            if remaining is None or kept is None:
                remaining = dict(tombstones)
                kept = results[:index]
            remaining[ad] = pending - 1
        elif kept is not None:
            kept.append(ad)
    return results if kept is None else kept


class SegmentedIndex:
    """Mutable serving index over an immutable packed segment."""

    #: Capability marker: ``query`` accepts a ``deadline`` budget.
    supports_deadline = True

    def __init__(
        self,
        segment: PackedSegmentIndex | str | Path,
        obs: MetricsRegistry | None = None,
        faults: FaultInjector | None = None,
    ) -> None:
        if not isinstance(segment, PackedSegmentIndex):
            # Opening is the natural sweep point for temp files orphaned
            # by a crash mid-write: no compaction can be running yet.
            cleanup_stale_temps(Path(segment))
            segment = PackedSegmentIndex(Path(segment))
        self._segment = segment
        self._faults = active_injector(faults)
        self._obs: MetricsRegistry | None = None
        self._overlay = self._fresh_overlay()
        self._tombstones: Counter[Advertisement] = Counter()
        self.bind_obs(obs)

    def _fresh_overlay(self) -> WordSetIndex:
        return WordSetIndex(
            max_words=self._segment.max_words,
            max_query_words=self._segment.max_query_words,
            fast_path=self._segment.fast_path,
        )

    # ------------------------------------------------------------------ #
    # Observability

    def bind_obs(self, obs: MetricsRegistry | None) -> None:
        obs = active_or_none(obs)
        self._obs = obs
        self._segment.bind_obs(obs)
        if obs is not None:
            obs.counter(
                "segment.compactions", help="Completed segment compactions"
            )
            self._update_gauges()

    def _update_gauges(self) -> None:
        obs = self._obs
        if obs is not None:
            obs.gauge(
                "segment.overlay_ads", help="Ads in the mutable overlay"
            ).set(float(len(self._overlay)))
            obs.gauge(
                "segment.tombstones", help="Pending segment-ad deletions"
            ).set(float(sum(self._tombstones.values())))

    # ------------------------------------------------------------------ #
    # Mutation

    def insert(
        self, ad: Advertisement, locator: frozenset[str] | None = None
    ) -> None:
        """Add ``ad``. Re-inserting a tombstoned segment ad resurrects the
        segment copy instead of duplicating it in the overlay
        (``Advertisement`` equality covers every field, so the copies are
        indistinguishable)."""
        if self._tombstones.get(ad, 0) > 0 and locator is None:
            self._tombstones[ad] -= 1
            if not self._tombstones[ad]:
                del self._tombstones[ad]
        else:
            self._overlay.insert(ad, locator)
        self._update_gauges()

    def delete(self, ad: Advertisement) -> bool:
        """Remove one occurrence of ``ad``; False if not indexed."""
        if self._overlay.delete(ad):
            self._update_gauges()
            return True
        live_in_segment = self._segment.lookup_count(ad) - self._tombstones.get(
            ad, 0
        )
        if live_in_segment > 0:
            self._tombstones[ad] += 1
            self._update_gauges()
            return True
        return False

    def contains(self, ad: Advertisement) -> bool:
        if self._overlay.contains(ad):
            return True
        return self._segment.lookup_count(ad) > self._tombstones.get(ad, 0)

    # ------------------------------------------------------------------ #
    # Query processing

    def query(
        self,
        query: Query,
        match_type: MatchType = MatchType.BROAD,
        deadline: Deadline | None = None,
    ) -> list[Advertisement]:
        """Segment results (tombstones filtered) + overlay results.

        The ``deadline`` budget threads through both halves — the mapped
        segment's probe loop and the overlay's — so a mid-query expiry
        stops whichever loop is running and flags the result partial.
        """
        results = self._segment.query(query, match_type, deadline)
        if self._tombstones:
            results = self._filter_tombstones(results)
        results.extend(self._overlay.query(query, match_type, deadline))
        return results

    def _filter_tombstones(
        self, results: list[Advertisement]
    ) -> list[Advertisement]:
        """Drop up to ``tombstones[ad]`` occurrences of each dead ad."""
        return filter_tombstones(results, self._tombstones)

    # ------------------------------------------------------------------ #
    # Compaction

    def live_ads(self) -> Iterator[Advertisement]:
        """Every live ad: segment minus tombstones, then the overlay."""
        remaining = dict(self._tombstones)
        for ad in self._segment.iter_ads():
            pending = remaining.get(ad, 0)
            if pending > 0:
                remaining[ad] = pending - 1
            else:
                yield ad
        for node in self._overlay.nodes.values():
            for entry in node.entries:
                yield entry.ad

    def _live_placements(self) -> dict[frozenset[str], frozenset[str]]:
        placements = self._segment.placements()
        placements.update(self._overlay.placement())
        return placements

    def compact(
        self,
        path: str | Path | None = None,
        suffix_bits: int | None = None,
    ) -> Path:
        """Fold overlay and tombstones into a fresh segment and swap to it.

        Crash-safe end to end: the new file is written atomically (old
        segment untouched until the rename), and a crash *anywhere* —
        including after the rename but before the in-memory swap — leaves
        a process whose mapped old segment is still fully servable, and a
        disk whose segment file is one complete generation or the other.
        Crashpoints: ``segment.compact.start`` / ``.written`` /
        ``.swapped``.
        """
        target = Path(path) if path is not None else self._segment.path
        cleanup_stale_temps(target)
        self._faults.crashpoint(CRASH_COMPACT_START)
        fresh = self._fresh_overlay()
        placements = self._live_placements()
        for ad in self.live_ads():
            fresh.insert(ad, placements.get(ad.words))
        builder = SegmentBuilder(fresh, suffix_bits=suffix_bits)
        builder.write(
            target,
            generation=self._segment.generation + 1,
            faults=self._faults,
        )
        self._faults.crashpoint(CRASH_COMPACT_WRITTEN)
        replacement = PackedSegmentIndex(
            target, tracker=self._segment.tracker
        )
        old = self._segment
        self._segment = replacement
        self._overlay = self._fresh_overlay()
        self._tombstones.clear()
        old.close()
        obs = self._obs
        if obs is not None:
            obs.counter("segment.compactions").inc()
            self._segment.bind_obs(obs)
            self._update_gauges()
        self._faults.crashpoint(CRASH_COMPACT_SWAPPED)
        return target

    # ------------------------------------------------------------------ #
    # Introspection / lifecycle

    @property
    def segment(self) -> PackedSegmentIndex:
        """The current immutable segment."""
        return self._segment

    @property
    def overlay(self) -> WordSetIndex:
        """The mutable overlay index."""
        return self._overlay

    def tombstone_count(self) -> int:
        return sum(self._tombstones.values())

    def __len__(self) -> int:
        return len(self._segment) - self.tombstone_count() + len(self._overlay)

    def stats(self) -> dict[str, Any]:
        return {
            "num_ads": len(self),
            "segment": self._segment.stats(),
            "overlay_ads": len(self._overlay),
            "tombstones": self.tombstone_count(),
        }

    def close(self) -> None:
        self._segment.close()

    def __enter__(self) -> SegmentedIndex:
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class SegmentShard(Protocol):
    """What a :class:`ShardedSegmentedIndex` shard must provide.

    Both :class:`SegmentedIndex` (one segment + overlay) and
    :class:`~repro.segment.tiered.TieredSegmentedIndex` (a manifest-run
    of tiers + overlay) satisfy this structurally, so the sharded
    wrapper — and through it :class:`~repro.perf.batch.BatchQueryEngine`
    and :class:`~repro.serving.server.AdServer` — works over either.
    """

    supports_deadline: bool

    def insert(
        self, ad: Advertisement, locator: frozenset[str] | None = None
    ) -> None: ...

    def delete(self, ad: Advertisement) -> bool: ...

    def contains(self, ad: Advertisement) -> bool: ...

    def query(
        self,
        query: Query,
        match_type: MatchType = MatchType.BROAD,
        deadline: Deadline | None = None,
    ) -> list[Advertisement]: ...

    def compact(self) -> Path: ...

    def stats(self) -> dict[str, Any]: ...

    def close(self) -> None: ...

    def __len__(self) -> int: ...


class ShardedSegmentedIndex:
    """Segmented serving sharded by ``wordhash(words) % num_shards``.

    The partitioning rule matches
    :class:`~repro.core.sharded.ShardedWordSetIndex`, so a packed
    deployment shards identically to the in-memory distributed
    simulation.  Exposes ``.shards`` — the batch engine's scatter
    heuristic picks it up without any adapter.  Shards are anything
    satisfying :class:`SegmentShard`; see
    :func:`repro.segment.tiered.pack_corpus_tiered` for the tiered
    variant.
    """

    #: Capability marker: ``query`` accepts a ``deadline`` budget.
    supports_deadline = True

    def __init__(
        self,
        shards: Sequence[SegmentShard],
        guard: FanoutGuard | None = None,
    ) -> None:
        if not shards:
            raise ValueError("need at least one shard")
        self.shards: list[SegmentShard] = list(shards)
        if guard is not None and len(guard.breakers) != len(self.shards):
            raise ValueError(
                "guard shard count does not match index shard count"
            )
        #: Optional breaker-guarded fan-out policy (see
        #: :class:`~repro.resilience.fanout.FanoutGuard`).  ``None``
        #: keeps the original fail-on-first-error gather.
        self.guard = guard

    @classmethod
    def pack_corpus(
        cls,
        corpus: AdCorpus,
        directory: str | Path,
        num_shards: int,
        mapping: dict[frozenset[str], frozenset[str]] | None = None,
        max_words: int | None = None,
        max_query_words: int = 16,
        suffix_bits: int | None = None,
        obs: MetricsRegistry | None = None,
        faults: FaultInjector | None = None,
    ) -> ShardedSegmentedIndex:
        """Partition ``corpus``, pack one segment file per shard into
        ``directory`` (``shard-NNN.seg``), and open them all."""
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        partitions: list[WordSetIndex] = [
            WordSetIndex(max_words=max_words, max_query_words=max_query_words)
            for _ in range(num_shards)
        ]
        for ad in corpus:
            locator = mapping.get(ad.words) if mapping else None
            partitions[wordhash(ad.words) % num_shards].insert(ad, locator)
        shards: list[SegmentedIndex] = []
        try:
            for i, partition in enumerate(partitions):
                path = directory / f"shard-{i:03d}.seg"
                SegmentBuilder(partition, suffix_bits=suffix_bits).write(
                    path, faults=faults
                )
                shards.append(
                    SegmentedIndex(path, obs=obs, faults=faults)
                )
        except BaseException:
            for shard in shards:
                shard.close()
            raise
        return cls(shards)

    def shard_of(self, words: frozenset[str]) -> int:
        return wordhash(words) % len(self.shards)

    def insert(
        self, ad: Advertisement, locator: frozenset[str] | None = None
    ) -> None:
        self.shards[self.shard_of(ad.words)].insert(ad, locator)

    def delete(self, ad: Advertisement) -> bool:
        return self.shards[self.shard_of(ad.words)].delete(ad)

    def contains(self, ad: Advertisement) -> bool:
        return self.shards[self.shard_of(ad.words)].contains(ad)

    def query(
        self,
        query: Query,
        match_type: MatchType = MatchType.BROAD,
        deadline: Deadline | None = None,
    ) -> list[Advertisement]:
        if self.guard is not None:
            return self.guard.gather(
                self.shards,
                lambda shard: shard.query(query, match_type, deadline),
                deadline,
            )
        results: list[Advertisement] = []
        for shard in self.shards:
            if deadline is not None and deadline.expired():
                # Out of budget: the shards already gathered are the
                # answer, flagged partial on the budget object.
                deadline.mark_partial(DegradedReason.DEADLINE)
                break
            results.extend(shard.query(query, match_type, deadline))
        return results

    def compact_all(self) -> list[Path]:
        """Compact every shard in place."""
        return [shard.compact() for shard in self.shards]

    def __len__(self) -> int:
        return sum(len(shard) for shard in self.shards)

    def stats(self) -> list[dict[str, Any]]:
        return [shard.stats() for shard in self.shards]

    def close(self) -> None:
        for shard in self.shards:
            shard.close()

    def __enter__(self) -> ShardedSegmentedIndex:
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
